"""``python -m qmclint`` — delegate to the CLI."""

import sys

from .cli import main

sys.exit(main())
