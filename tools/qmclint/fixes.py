"""Autofixes for the mechanical subset of findings (``--fix``).

Only transformations with exactly one correct spelling are automated;
anything needing judgement (locks, seed plumbing, fsync placement)
stays a human edit. Current fixers:

* **QL003** — ``astype(int)`` → ``astype(np.int64)`` and
  ``astype(float)`` → ``astype(np.float64)``, applied only when the file
  already imports numpy as ``np`` (the fix must not introduce imports);
* **QL902** — delete an unused suppression pragma (the comment only; a
  line left empty is removed entirely).

Fixes are computed per file from the violation list, applied
line-locally, and re-verified by the caller (the CLI re-lints after
fixing so the exit status reflects the post-fix tree).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Tuple

from .engine import FileContext, Violation

__all__ = ["apply_fixes", "FIXABLE_CODES"]

FIXABLE_CODES = ("QL003", "QL902")

_ASTYPE_FIX = {
    re.compile(r"\.astype\(\s*int\s*\)"): ".astype(np.int64)",
    re.compile(r"\.astype\(\s*float\s*\)"): ".astype(np.float64)",
}

_PRAGMA_COMMENT = re.compile(
    r"\s*#\s*qmclint:\s*disable(?:-file)?=[A-Z0-9,\s]+.*$"
)


def _imports_np(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" and (alias.asname or "numpy") == "np":
                    return True
    return False


def _fix_astype(line: str) -> Tuple[str, bool]:
    changed = False
    for pattern, repl in _ASTYPE_FIX.items():
        new = pattern.sub(repl, line)
        if new != line:
            line, changed = new, True
    return line, changed


def _fix_pragma(line: str) -> Tuple[str, bool]:
    new = _PRAGMA_COMMENT.sub("", line)
    return new, new != line


def apply_fixes(
    violations: Iterable[Violation], contexts: Dict[str, FileContext]
) -> Tuple[Dict[str, str], int]:
    """Compute fixed sources. Returns ``(rel → new_source, fix_count)``.

    Only files with at least one applied fix appear in the mapping.
    """
    by_file: Dict[str, List[Violation]] = {}
    for v in violations:
        if v.code in FIXABLE_CODES:
            by_file.setdefault(v.path, []).append(v)

    out: Dict[str, str] = {}
    applied = 0
    for rel, found in by_file.items():
        ctx = contexts.get(rel)
        if ctx is None:
            continue
        lines = list(ctx.lines)
        allow_astype = _imports_np(ctx.tree)
        drop: List[int] = []
        changed_file = False
        for v in found:
            idx = v.line - 1
            if not (0 <= idx < len(lines)):
                continue
            if v.code == "QL003" and allow_astype:
                lines[idx], changed = _fix_astype(lines[idx])
            elif v.code == "QL902":
                lines[idx], changed = _fix_pragma(lines[idx])
                if changed and not lines[idx].strip():
                    drop.append(idx)
            else:
                changed = False
            if changed:
                applied += 1
                changed_file = True
        if not changed_file:
            continue
        for idx in sorted(set(drop), reverse=True):
            del lines[idx]
        trailing_nl = "\n" if ctx.source.endswith("\n") else ""
        out[rel] = "\n".join(lines) + trailing_nl
    return out, applied
