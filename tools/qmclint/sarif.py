"""SARIF 2.1.0 serialization for qmclint findings.

One run, one tool driver, one result per violation. The output targets
the GitHub code-scanning ingestion path (rule metadata on the driver,
``partialFingerprints`` carrying the baseline fingerprint so findings
track across line drift) but is plain spec-conformant SARIF any viewer
can load.

``validate_sarif`` is a structural self-check used by the test suite —
it asserts the invariants the 2.1.0 schema requires of the subset we
emit (no network, no external schema file).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .engine import Violation

__all__ = ["to_sarif", "sarif_json", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: qmclint severity → SARIF result level (identical by design)
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_metadata(rules: Sequence) -> List[Dict]:
    out = []
    for rule in rules:
        out.append(
            {
                "id": rule.code,
                "name": getattr(rule, "name", rule.code),
                "shortDescription": {
                    "text": getattr(rule, "description", "") or rule.code
                },
                "defaultConfiguration": {
                    "level": _LEVELS.get(
                        getattr(rule, "severity", "error"), "warning"
                    )
                },
                "helpUri": (
                    "https://example.invalid/qmclint/rules#"
                    + rule.code.lower()
                ),
            }
        )
    return out


def to_sarif(
    violations: Iterable[Violation],
    rules: Sequence,
    version: str,
    fingerprints: Optional[Dict[int, str]] = None,
) -> Dict:
    """Build the SARIF log object (a plain dict, json.dump-ready).

    ``fingerprints`` optionally maps ``id(violation)`` to the baseline
    fingerprint, recorded under ``partialFingerprints`` so code-scanning
    backends can track a finding across commits.
    """
    rule_meta = _rule_metadata(rules)
    rule_index = {r["id"]: i for i, r in enumerate(rule_meta)}
    results = []
    for v in violations:
        result: Dict = {
            "ruleId": v.code,
            "level": _LEVELS.get(v.severity, "warning"),
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": max(v.col, 1),
                        },
                    }
                }
            ],
        }
        if v.code in rule_index:
            result["ruleIndex"] = rule_index[v.code]
        if fingerprints and id(v) in fingerprints:
            result["partialFingerprints"] = {
                "qmclintFingerprint/v1": fingerprints[id(v)]
            }
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "qmclint",
                        "version": version,
                        "informationUri": "https://example.invalid/qmclint",
                        "rules": rule_meta,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def sarif_json(
    violations: Iterable[Violation],
    rules: Sequence,
    version: str,
    fingerprints: Optional[Dict[int, str]] = None,
) -> str:
    return json.dumps(
        to_sarif(violations, rules, version, fingerprints), indent=2
    )


def validate_sarif(doc: Dict) -> List[str]:
    """Structural 2.1.0 conformance check; returns problems (empty = ok)."""
    problems: List[str] = []
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems
    for i, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            problems.append(f"runs[{i}].tool.driver.name missing")
        rule_ids = set()
        for j, rule in enumerate(driver.get("rules", [])):
            if not rule.get("id"):
                problems.append(f"runs[{i}] rules[{j}] missing id")
            rule_ids.add(rule.get("id"))
        for j, result in enumerate(run.get("results", [])):
            where = f"runs[{i}].results[{j}]"
            if "message" not in result or "text" not in result["message"]:
                problems.append(f"{where}.message.text missing")
            if result.get("level") not in ("error", "warning", "note", None):
                problems.append(f"{where}.level invalid")
            if result.get("ruleId") not in rule_ids:
                problems.append(f"{where}.ruleId not in driver rules")
            ri = result.get("ruleIndex")
            if ri is not None and not (
                isinstance(ri, int) and 0 <= ri < len(rule_ids)
            ):
                problems.append(f"{where}.ruleIndex out of range")
            for loc in result.get("locations", []):
                phys = loc.get("physicalLocation", {})
                art = phys.get("artifactLocation", {})
                if not art.get("uri"):
                    problems.append(f"{where} location missing uri")
                region = phys.get("region", {})
                line = region.get("startLine")
                if line is not None and (
                    not isinstance(line, int) or line < 1
                ):
                    problems.append(f"{where} startLine must be >= 1")
    return problems
