"""Whole-program module index: imports, symbol tables, name resolution.

The per-file rules (QL001–QL007) see one AST at a time; the QL1xx
concurrency/process-safety family needs to answer questions that span
module boundaries ("is this function reachable from a thread-pool entry
point?", "does the seed argument at this call site derive from
``SimulationConfig.seed``?"). This module builds the substrate those
questions stand on:

* a :class:`ModuleInfo` per parsed file — dotted module name derived
  from the path, the import alias table, every function/method with its
  qualified name, every class with its methods, and the module-level
  assignments (the globals QL101 watches);
* a :class:`Project` that resolves dotted names *across* modules,
  following import aliases and one level of package re-exports (the
  ``repro.telemetry.Telemetry`` → ``repro.telemetry.core.Telemetry``
  indirection every ``__init__`` in this repo uses).

Everything is stdlib ``ast``; resolution is best-effort and returns
``None`` rather than guessing when a name cannot be pinned to a project
symbol — the rules built on top treat unresolved as "outside the
program" and stay silent, trading recall for zero false positives from
misresolution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .engine import FileContext

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "Project"]

#: path roots stripped when deriving dotted module names
_SOURCE_ROOTS = ("src", "tools")


def module_name_for(rel: str) -> str:
    """``src/repro/core/greens.py`` → ``repro.core.greens``.

    Any path prefix up to the last ``src``/``tools`` component is
    dropped, so the dotted name is stable whether the linter was invoked
    from the repo root, a parent directory, or a tmp tree in tests.
    """
    parts = list(rel.split("/"))
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] in _SOURCE_ROOTS:
            parts = parts[i + 1 :]
            break
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str  #: e.g. ``MetricsRegistry.observe`` or ``run_ensemble``
    node: ast.AST  #: FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def fid(self) -> str:
        """Project-unique id, ``module.qualname``."""
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition with its method table."""

    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)

    @property
    def cid(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """Symbol table and import aliases of one parsed module."""

    name: str
    ctx: FileContext
    #: local alias → fully dotted target ("np" → "numpy",
    #: "Telemetry" → "repro.telemetry.Telemetry")
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``NAME = <expr>`` assignments (last one wins)
    assigns: Dict[str, ast.expr] = field(default_factory=dict)


def _walk_functions(
    body: Sequence[ast.stmt], prefix: str, class_name: Optional[str]
) -> Iterator[Tuple[str, ast.AST, Optional[str]]]:
    """Yield (qualname, node, class_name) for defs, including nested."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{node.name}"
            yield qual, node, class_name
            yield from _walk_functions(
                node.body, f"{qual}.<locals>.", class_name
            )
        elif isinstance(node, ast.ClassDef):
            # handled separately for the method table; still index the
            # methods here so every def has a FunctionInfo
            continue


class Project:
    """Cross-module index over a set of parsed files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: fid → FunctionInfo over every module
        self.functions: Dict[str, FunctionInfo] = {}
        #: cid → ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: method name → [FunctionInfo] (the duck-typed fallback)
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "Project":
        project = cls()
        for ctx in contexts:
            project._index_module(ctx)
        return project

    def _index_module(self, ctx: FileContext) -> None:
        name = module_name_for(ctx.rel)
        if not name:
            return
        mod = ModuleInfo(name=name, ctx=ctx)
        self.modules[name] = mod
        self._index_imports(mod)
        self._index_defs(mod)
        for fn in mod.functions.values():
            self.functions[fn.fid] = fn
            if fn.class_name is not None:
                self.methods_by_name.setdefault(fn.name, []).append(fn)
        for klass in mod.classes.values():
            self.classes[klass.cid] = klass

    def _index_imports(self, mod: ModuleInfo) -> None:
        pkg_parts = mod.name.split(".")
        # the package a relative import is resolved against: the module's
        # parent for plain modules, the module itself for __init__ files
        is_pkg = mod.ctx.rel.endswith("__init__.py")
        base_pkg = pkg_parts if is_pkg else pkg_parts[:-1]
        for node in ast.walk(mod.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    up = node.level - 1
                    anchor = base_pkg[: len(base_pkg) - up] if up else base_pkg
                    head = ".".join(anchor + ([node.module] if node.module else []))
                else:
                    head = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{head}.{alias.name}" if head else alias.name

    def _index_defs(self, mod: ModuleInfo) -> None:
        def add_fn(qual: str, node: ast.AST, class_name: Optional[str]):
            mod.functions[qual] = FunctionInfo(
                module=mod.name, qualname=qual, node=node, class_name=class_name
            )

        for stmt in mod.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_fn(stmt.name, stmt, None)
                for q, n, c in _walk_functions(
                    stmt.body, f"{stmt.name}.<locals>.", None
                ):
                    add_fn(q, n, c)
            elif isinstance(stmt, ast.ClassDef):
                klass = ClassInfo(
                    module=mod.name,
                    name=stmt.name,
                    node=stmt,
                    bases=[_dotted(b) for b in stmt.bases],
                )
                mod.classes[stmt.name] = klass
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{stmt.name}.{sub.name}"
                        add_fn(qual, sub, stmt.name)
                        klass.methods[sub.name] = mod.functions[qual]
                        for q, n, c in _walk_functions(
                            sub.body, f"{qual}.<locals>.", stmt.name
                        ):
                            add_fn(q, n, c)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        mod.assigns[tgt.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    mod.assigns[stmt.target.id] = stmt.value

    # -- name resolution -----------------------------------------------------

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted use in ``module`` to a project symbol id.

        Returns the fully qualified target ("repro.telemetry.core.
        Telemetry") when it lands on a project module/class/function,
        else ``None``. Follows import aliases and package re-exports
        (bounded, cycle-safe).
        """
        mod = self.modules.get(module)
        if mod is None or not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in mod.imports:
            target = mod.imports[head] + (f".{rest}" if rest else "")
        elif head in mod.functions or head in mod.classes or head in mod.assigns:
            target = f"{module}.{dotted}"
        else:
            return None
        return self._canonical(target)

    def _canonical(self, target: str, depth: int = 0) -> Optional[str]:
        """Chase package re-exports until the name lands on a symbol."""
        if depth > 8:
            return None
        if target in self.functions or target in self.classes:
            return target
        if target in self.modules:
            return target
        # Longest module prefix owning the remainder?
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            remainder = parts[cut:]
            name = remainder[0]
            if name in mod.functions or name in mod.classes:
                return f"{prefix}.{'.'.join(remainder)}"
            if name in mod.imports:
                rewritten = mod.imports[name] + (
                    "." + ".".join(remainder[1:]) if remainder[1:] else ""
                )
                return self._canonical(rewritten, depth + 1)
            return None
        return None

    # -- convenience ---------------------------------------------------------

    def function(self, fid: str) -> Optional[FunctionInfo]:
        fn = self.functions.get(fid)
        if fn is not None:
            return fn
        # a resolved class id + method ("mod.Class.meth")
        canon = self._canonical(fid)
        return self.functions.get(canon) if canon else None

    def class_of(self, cid: str) -> Optional[ClassInfo]:
        klass = self.classes.get(cid)
        if klass is not None:
            return klass
        canon = self._canonical(cid)
        return self.classes.get(canon) if canon else None

    def functions_in(self, module_prefix: str) -> List[FunctionInfo]:
        return [
            fn
            for fn in self.functions.values()
            if fn.module == module_prefix
            or fn.module.startswith(module_prefix + ".")
        ]


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
