"""qmclint — numerics-correctness static analysis for the DQMC repro.

A repo-specific lint pass (stdlib ``ast`` only, no third-party
dependencies) enforcing the numerical-stability discipline the paper's
results depend on: no naive matrix inversion outside the stable-solve
module, no unseeded randomness, dtype hygiene, an honest FLOP ledger,
declared in-place mutation, and no silent exception swallowing.

Usage::

    qmclint src/                    # console script
    python -m qmclint src/          # module form

Suppress a finding on one line with ``# qmclint: disable=QL001`` (comma
separated for several codes), or for a whole file with
``# qmclint: disable-file=QL001``. Pre-existing findings can be frozen
into a baseline file (``--update-baseline``) so only new violations fail
the build; the shipped tree keeps an *empty* baseline.
"""

from .engine import FileContext, LintRunner, Violation
from .rules import ALL_RULES, Rule

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "FileContext",
    "LintRunner",
    "Rule",
    "Violation",
    "__version__",
]
