"""qmclint — numerics-correctness static analysis for the DQMC repro.

A repo-specific lint pass (stdlib ``ast`` only, no third-party
dependencies) enforcing the numerical-stability discipline the paper's
results depend on: no naive matrix inversion outside the stable-solve
module, no unseeded randomness, dtype hygiene, an honest FLOP ledger,
declared in-place mutation, and no silent exception swallowing.

v2 adds a *whole-program* layer — a module index (``project``), a call
graph with reachability queries (``callgraph``), and targeted dataflow
(``dataflow``) — powering the QL1xx concurrency/process-safety family:
thread-shared mutable state (QL101), pickle-boundary picklability
(QL102), durable-write discipline (QL103), seed provenance along the
call graph (QL104), and flop-ledger reachability from the sweep
(QL105). Findings carry severities, serialize to SARIF 2.1.0
(``--format sarif``), and the mechanical subset autofixes (``--fix``).

Usage::

    qmclint src/ tools/ benchmarks/   # console script
    python -m qmclint src/            # module form

Suppress a finding on one line with ``# qmclint: disable=QL001 -- why``
(comma separated for several codes), or for a whole file with
``# qmclint: disable-file=QL001 -- why``. Every pragma needs a reason —
inline after ``--``, or implicitly via the docstring when the pragma
sits on a ``def``/``class`` line (QL901 enforces this); pragmas that no
longer mask anything are reported as QL902. Pre-existing findings can be
frozen into a baseline file (``--update-baseline``) so only new
violations fail the build; stale entries are reported when their finding
disappears. The shipped tree keeps an *empty* baseline.
"""

from .engine import FileContext, LintRunner, Pragma, Violation
from .rules import ALL_RULES, Rule

__version__ = "2.0.0"

__all__ = [
    "ALL_RULES",
    "FileContext",
    "LintRunner",
    "Pragma",
    "Rule",
    "Violation",
    "__version__",
]
