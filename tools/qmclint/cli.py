"""The ``qmclint`` command-line entry point.

Exit status: 0 when the tree is clean (after pragmas and baseline),
1 when violations remain, 2 on usage/parse errors.

v2 surface: ``--format sarif`` (with ``--output``) for CI upload,
``--fix`` for the mechanical autofix subset, stale-baseline warnings on
stderr, and the whole-program QL1xx rules running by default.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .baseline import (
    DEFAULT_BASELINE,
    fingerprint,
    load_baseline,
    partition_baseline,
    save_baseline,
)
from .engine import LintRunner, Violation
from .rules import ALL_RULES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qmclint",
        description="numerics-correctness static analysis for the DQMC repro",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=[Path("src")],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file (default: ./{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="freeze current violations into the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every violation, ignoring any baseline file",
    )
    parser.add_argument(
        "--format", choices=("text", "sarif"), default="text",
        help="report format (sarif emits a SARIF 2.1.0 log)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical autofixes (QL003 dtype spellings, QL902 "
        "unused pragmas), then re-lint",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--version", action="store_true", help="print version and rule count"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress per-violation output (exit status only)",
    )
    return parser


def _codes(blob: Optional[str]) -> Optional[set]:
    if blob is None:
        return None
    return {c.strip().upper() for c in blob.split(",") if c.strip()}


def _lint(
    paths: List[Path], select: Optional[set], ignore: Optional[set]
) -> Tuple[LintRunner, List[Tuple[Violation, str]]]:
    """Run the whole-program pipeline; tag each violation with its
    baseline fingerprint using the already-parsed sources."""
    runner = LintRunner(ALL_RULES, select=select, ignore=ignore or set())
    violations = runner.run(paths)
    tagged: List[Tuple[Violation, str]] = []
    for v in violations:
        ctx = runner.contexts.get(v.path)
        text = ""
        if ctx is not None and 1 <= v.line <= len(ctx.lines):
            text = ctx.lines[v.line - 1]
        tagged.append((v, fingerprint(v, text)))
    return runner, tagged


def _emit(report: str, output: Optional[Path]) -> None:
    if output is None:
        print(report, end="" if report.endswith("\n") else "\n")
    else:
        output.write_text(report if report.endswith("\n") else report + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.version:
        from . import __version__

        print(f"qmclint {__version__} ({len(ALL_RULES)} rules)")
        return 0

    if args.list_rules:
        for rule in ALL_RULES:
            kind = (
                "project"
                if getattr(rule, "project_rule", False)
                else "meta"
                if getattr(rule, "meta_rule", False)
                else "file"
            )
            print(
                f"{rule.code}  {rule.name:<20} [{rule.severity:<7}|{kind:<7}] "
                f"{rule.description}"
            )
        return 0

    paths = args.paths or [Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"qmclint: no such path: {p}", file=sys.stderr)
        return 2

    select = _codes(args.select)
    ignore = _codes(args.ignore)
    # A typo'd code must not silently select nothing (and report "clean").
    known = {rule.code for rule in ALL_RULES}
    for flag, codes in (("--select", select), ("--ignore", ignore)):
        unknown = sorted((codes or set()) - known)
        if unknown:
            print(
                f"qmclint: unknown rule code(s) in {flag}: "
                f"{', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    runner, tagged = _lint(paths, select, ignore)

    if args.fix:
        from .fixes import apply_fixes

        fixed_sources, n_fixes = apply_fixes(
            [v for v, _ in tagged], runner.contexts
        )
        for rel, source in fixed_sources.items():
            runner.contexts[rel].path.write_text(source)
        if not args.quiet:
            print(
                f"qmclint: applied {n_fixes} fix(es) in "
                f"{len(fixed_sources)} file(s)",
                file=sys.stderr,
            )
        if fixed_sources:  # re-lint the post-fix tree
            runner, tagged = _lint(paths, select, ignore)

    baseline_path = args.baseline or Path(DEFAULT_BASELINE)
    if args.update_baseline:
        save_baseline(baseline_path, (fp for _, fp in tagged))
        if not args.quiet:
            print(
                f"qmclint: froze {len(tagged)} violation(s) into "
                f"{baseline_path}"
            )
        return 0

    stale: List[str] = []
    if args.no_baseline:
        fresh = [v for v, _ in tagged]
    else:
        fresh, stale = partition_baseline(tagged, load_baseline(baseline_path))

    for err in runner.errors:
        print(f"qmclint: {err}", file=sys.stderr)
    for fp in stale:
        print(
            f"qmclint: stale baseline entry (finding fixed — regenerate "
            f"with --update-baseline): {fp}",
            file=sys.stderr,
        )

    if args.format == "sarif":
        from . import __version__
        from .sarif import sarif_json

        fp_by_id = {id(v): fp for v, fp in tagged if v in fresh}
        _emit(sarif_json(fresh, ALL_RULES, __version__, fp_by_id), args.output)
    elif not args.quiet:
        lines = [v.format() for v in fresh]
        n_files = len(runner.contexts)
        status = "clean" if not fresh else f"{len(fresh)} violation(s)"
        lines.append(f"qmclint: {n_files} file(s) checked: {status}")
        _emit("\n".join(lines), args.output)

    if runner.errors:
        return 2
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
