"""The ``qmclint`` command-line entry point.

Exit status: 0 when the tree is clean (after pragmas and baseline),
1 when violations remain, 2 on usage/parse errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    fingerprint,
    load_baseline,
    save_baseline,
)
from .engine import FileContext, LintRunner, Violation, iter_python_files
from .rules import ALL_RULES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qmclint",
        description="numerics-correctness static analysis for the DQMC repro",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=[Path("src")],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file (default: ./{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="freeze current violations into the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every violation, ignoring any baseline file",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress per-violation output (exit status only)",
    )
    return parser


def _codes(blob: Optional[str]) -> Optional[set]:
    if blob is None:
        return None
    return {c.strip().upper() for c in blob.split(",") if c.strip()}


def _line_text(path: Path, line: int, cache: dict) -> str:
    if path not in cache:
        try:
            cache[path] = path.read_text().splitlines()
        except OSError:
            cache[path] = []
    lines = cache[path]
    return lines[line - 1] if 1 <= line <= len(lines) else ""


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:<16} {rule.description}")
        return 0

    paths = args.paths or [Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"qmclint: no such path: {p}", file=sys.stderr)
        return 2

    select = _codes(args.select)
    ignore = _codes(args.ignore)
    # A typo'd code must not silently select nothing (and report "clean").
    known = {rule.code for rule in ALL_RULES}
    for flag, codes in (("--select", select), ("--ignore", ignore)):
        unknown = sorted((codes or set()) - known)
        if unknown:
            print(
                f"qmclint: unknown rule code(s) in {flag}: "
                f"{', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    runner = LintRunner(ALL_RULES, select=select, ignore=ignore or set())

    # Collect per-file so fingerprints can reuse the parsed source.
    tagged: List[Tuple[Violation, str]] = []
    for f in iter_python_files(paths):
        for v in runner.run_file(f):
            # run_file normalizes the reported path; recover the on-disk
            # file for fingerprint line lookup.
            tagged.append((v, f))
    cache: dict = {}
    tagged_fp = [
        (v, fingerprint(v, _line_text(f, v.line, cache))) for v, f in tagged
    ]

    baseline_path = args.baseline or Path(DEFAULT_BASELINE)
    if args.update_baseline:
        save_baseline(baseline_path, (fp for _, fp in tagged_fp))
        if not args.quiet:
            print(
                f"qmclint: froze {len(tagged_fp)} violation(s) into "
                f"{baseline_path}"
            )
        return 0

    if args.no_baseline:
        fresh = [v for v, _ in tagged_fp]
    else:
        fresh = apply_baseline(tagged_fp, load_baseline(baseline_path))

    for err in runner.errors:
        print(f"qmclint: {err}", file=sys.stderr)
    if not args.quiet:
        for v in fresh:
            print(v.format())
        n_files = len(list(iter_python_files(paths)))
        status = "clean" if not fresh else f"{len(fresh)} violation(s)"
        print(f"qmclint: {n_files} file(s) checked: {status}")
    if runner.errors:
        return 2
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
