"""Baseline files: freeze pre-existing violations, fail only on new ones.

A baseline entry is a *fingerprint* — path, code, and a short hash of the
stripped source line — deliberately independent of the line number so
unrelated edits above a frozen violation do not unfreeze it. The shipped
tree keeps the baseline empty: every rule violation in ``src/`` was fixed
rather than frozen.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .engine import Violation

__all__ = [
    "fingerprint",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "partition_baseline",
]

DEFAULT_BASELINE = ".qmclint-baseline"


def fingerprint(v: Violation, line_text: str) -> str:
    digest = hashlib.sha1(line_text.strip().encode()).hexdigest()[:12]
    return f"{v.path}::{v.code}::{digest}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> allowed count (duplicates on one line accumulate)."""
    entries: Dict[str, int] = {}
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries[line] = entries.get(line, 0) + 1
    return entries


def save_baseline(path: Path, fingerprints: Iterable[str]) -> None:
    lines = [
        "# qmclint baseline — frozen pre-existing violations.",
        "# Regenerate with: qmclint --update-baseline <paths>",
    ]
    lines.extend(sorted(fingerprints))
    path.write_text("\n".join(lines) + "\n")


def apply_baseline(
    violations: List[Tuple[Violation, str]], baseline: Dict[str, int]
) -> List[Violation]:
    """Drop violations whose fingerprint has remaining baseline budget."""
    fresh, _ = partition_baseline(violations, baseline)
    return fresh


def partition_baseline(
    violations: List[Tuple[Violation, str]], baseline: Dict[str, int]
) -> Tuple[List[Violation], List[str]]:
    """Split into (fresh violations, stale baseline fingerprints).

    A *stale* entry still has budget after every current violation was
    matched — the finding it froze has been fixed (or the line changed),
    so the entry no longer earns its keep and should be dropped on the
    next ``--update-baseline``.
    """
    budget = dict(baseline)
    fresh: List[Violation] = []
    for v, fp in violations:
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
        else:
            fresh.append(v)
    stale = sorted(fp for fp, left in budget.items() if left > 0)
    return fresh, stale
