"""The rule catalogue: QL001–QL008.

Each rule is a small AST pass grounded in a failure mode this codebase
actually has to defend against (see ``docs/static_analysis.md`` for the
physics rationale per rule). Rules yield :class:`~qmclint.engine.Violation`
objects; pragma and baseline filtering happen in the engine.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from .engine import FileContext, Violation

__all__ = ["Rule", "ALL_RULES"]


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str:
    """``np.linalg.inv`` -> "np.linalg.inv"; empty string if not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(call: ast.Call) -> str:
    """Trailing name of the called object ("inv" for ``np.linalg.inv``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _iter_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes in a function body, *excluding* nested function scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class Rule:
    """Base class; subclasses set ``code``/``name`` and implement check()."""

    code = "QL000"
    name = "base"
    description = ""
    #: SARIF result level: "error" | "warning" | "note". Reporting
    #: metadata only — the exit status fails on any non-baselined finding.
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
        )


# ---------------------------------------------------------------------------
# QL001 — no raw matrix inversion outside the stable-solve module
# ---------------------------------------------------------------------------


class RawInverseRule(Rule):
    """Flag ``*.inv(...)`` and ``solve(I + product, ...)``.

    Forming ``(I + B_L...B_1)^{-1}`` without the graded D_b/D_s split is
    exactly the instability the paper's Algorithms 2/3 exist to avoid;
    the only module allowed to spell an unstabilized solve is
    ``repro/linalg/stable.py`` (where the strawman lives, clearly
    labelled).
    """

    code = "QL001"
    name = "raw-inverse"
    description = "raw matrix inversion outside linalg/stable.py"

    ALLOWED_SUFFIXES = ("repro/linalg/stable.py",)
    _LINALG_HOLDERS = {"np.linalg", "numpy.linalg", "scipy.linalg", "sla", "la"}

    def _is_eye_call(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and call_name(node) in (
            "eye",
            "identity",
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.rel.endswith(self.ALLOWED_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "inv" and isinstance(node.func, ast.Attribute):
                holder = dotted_name(node.func.value)
                if holder in self._LINALG_HOLDERS or holder.endswith(".linalg"):
                    yield self.violation(
                        ctx,
                        node,
                        f"raw matrix inversion `{dotted_name(node.func)}`: "
                        "use the graded stable solve "
                        "(repro.linalg.stable) instead",
                    )
            elif name == "solve" and node.args:
                lhs = node.args[0]
                if isinstance(lhs, ast.BinOp) and isinstance(lhs.op, ast.Add):
                    if self._is_eye_call(lhs.left) or self._is_eye_call(
                        lhs.right
                    ):
                        yield self.violation(
                            ctx,
                            node,
                            "solve on an `I + product` operand: form the "
                            "Green's function through "
                            "stable_inverse_from_graded, never naively",
                        )


# ---------------------------------------------------------------------------
# QL002 — no unseeded / module-level RNG
# ---------------------------------------------------------------------------


class UnseededRNGRule(Rule):
    """Randomness must be threaded from ``SimulationConfig.seed``.

    An unseeded ``default_rng()`` (or any legacy ``np.random.*`` global
    call) makes runs unreproducible and silently decouples worker streams
    from the configured seed.
    """

    code = "QL002"
    name = "unseeded-rng"
    description = "unseeded or module-level numpy RNG"

    _GLOBAL_FNS = {
        "rand",
        "randn",
        "random",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "seed",
    }

    def _allowed(self, ctx: FileContext) -> bool:
        parts = ctx.rel.split("/")
        return (
            "tests" in parts
            or "benchmarks" in parts
            or "examples" in parts
            or parts[-1] in ("cli.py", "conftest.py")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if self._allowed(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "default_rng" and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "unseeded default_rng(): thread a Generator from "
                    "SimulationConfig.seed (pass `rng=` explicitly)",
                )
            elif name in self._GLOBAL_FNS and isinstance(
                node.func, ast.Attribute
            ):
                holder = dotted_name(node.func.value)
                if holder in ("np.random", "numpy.random"):
                    yield self.violation(
                        ctx,
                        node,
                        f"module-level `{holder}.{name}` uses the hidden "
                        "global RNG; pass an explicit seeded Generator",
                    )


# ---------------------------------------------------------------------------
# QL003 — dtype hygiene
# ---------------------------------------------------------------------------


class DtypeHygieneRule(Rule):
    """Flag precision downcasts and platform-dependent dtypes.

    All DQMC state is float64 by contract; a stray float32 (or a
    platform-dependent ``astype(int)``, which is 32-bit on Windows)
    silently destroys the graded scales' dynamic range.
    """

    code = "QL003"
    name = "dtype-hygiene"
    description = "implicit downcast or platform-dependent dtype"

    _NARROW = {"float32", "float16", "complex64", "half", "single", "csingle"}
    _BUILTIN = {"int", "float", "bool", "complex"}

    def _narrow_dtype(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute) and node.attr in self._NARROW:
            return dotted_name(node)
        if isinstance(node, ast.Constant) and node.value in self._NARROW:
            return repr(node.value)
        return None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # .astype(...) with a bare builtin dtype
            if call_name(node) == "astype" and isinstance(
                node.func, ast.Attribute
            ):
                for arg in node.args[:1]:
                    if isinstance(arg, ast.Name) and arg.id in self._BUILTIN:
                        yield self.violation(
                            ctx,
                            node,
                            f"astype({arg.id}) is platform-dependent: "
                            f"spell the width (np.int64 / np.float64)",
                        )
                    narrow = self._narrow_dtype(arg)
                    if narrow:
                        yield self.violation(
                            ctx,
                            node,
                            f"astype({narrow}) downcasts below float64 — "
                            "the graded scales need full precision",
                        )
                if not node.args and not node.keywords:
                    yield self.violation(
                        ctx, node, "astype() without an explicit dtype"
                    )
            # dtype=np.float32 keyword anywhere (array constructors etc.)
            for kw in node.keywords:
                if kw.arg == "dtype":
                    narrow = self._narrow_dtype(kw.value)
                    if narrow:
                        yield self.violation(
                            ctx,
                            node,
                            f"dtype={narrow} downcasts below float64 — "
                            "the graded scales need full precision",
                        )


# ---------------------------------------------------------------------------
# QL004 — FLOP-ledger completeness in the kernel directories
# ---------------------------------------------------------------------------


class FlopLedgerRule(Rule):
    """Heavy linear algebra must feed the FLOP tally.

    The Fig. 4 GFLOPS reproduction divides measured wall-clock by the
    *nominal* flop count from ``repro.linalg.flops``; a kernel that does
    a GEMM/QR/solve without ``flops.record(...)`` silently inflates the
    reported rate.
    """

    code = "QL004"
    name = "flop-ledger"
    description = "matmul/qr/solve without flops.record in kernel dirs"

    _SCOPED_DIRS = {"linalg", "core", "gpu", "backends"}
    _HEAVY_CALLS = {"qr", "solve", "lu_factor", "lu_solve", "svd"}

    def _in_scope(self, ctx: FileContext) -> bool:
        parts = ctx.rel.split("/")
        if parts[-1] == "flops.py":  # the ledger itself
            return False
        return bool(self._SCOPED_DIRS.intersection(parts[:-1]))

    def _heavy_op(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            return "matmul (@)"
        if isinstance(node, ast.AugAssign) and isinstance(
            node.op, ast.MatMult
        ):
            return "matmul (@=)"
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in self._HEAVY_CALLS:
                return f"{name}()"
        return None

    def _records(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "record":
                return dotted_name(func.value).endswith("flops")
            # ledger helpers (BaseBackend._record_gemm / _record_scale)
            # that wrap flops.record
            return func.attr.startswith("_record")
        return isinstance(func, ast.Name) and func.id == "record"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_scope(ctx):
            return
        for fn in _functions(ctx.tree):
            heavy: Optional[str] = None
            records = False
            for node in _iter_scope(fn.body):
                if heavy is None:
                    heavy = self._heavy_op(node)
                if not records and self._records(node):
                    records = True
            if heavy is not None and not records:
                yield self.violation(
                    ctx,
                    fn,
                    f"`{fn.name}` performs {heavy} but never calls "
                    "flops.record(...): the GFLOPS ledger goes stale",
                )


# ---------------------------------------------------------------------------
# QL005 — undeclared in-place mutation of ndarray parameters
# ---------------------------------------------------------------------------


class InPlaceParamRule(Rule):
    """Mutating an ``np.ndarray`` argument must be declared.

    Callers share references; a function that writes into a parameter
    without saying so creates aliasing bugs of exactly the kind wrapped
    Green's functions and delayed-update buffers are prone to. Declaring
    it — "in place"/"mutates" in the docstring, or a mutating name —
    silences the rule.
    """

    code = "QL005"
    name = "inplace-param"
    severity = "warning"
    description = "undeclared in-place mutation of an ndarray parameter"

    _DECLARING_WORDS = ("in place", "in-place", "inplace", "mutat", "overwrit")
    _DECLARING_NAMES = ("inplace", "in_place", "update", "flush", "fill")
    _MUTATING_METHODS = {"fill", "sort", "partition", "put", "resize"}
    _OUT_FNS = {"copyto"}

    def _declares(self, fn: ast.FunctionDef) -> bool:
        lowered = fn.name.lower()
        if any(word in lowered for word in self._DECLARING_NAMES):
            return True
        doc = ast.get_docstring(fn) or ""
        lowered = doc.lower()
        return any(word in lowered for word in self._DECLARING_WORDS)

    def _ndarray_params(self, fn: ast.FunctionDef) -> Set[str]:
        out: Set[str] = set()
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        )
        for a in args:
            if a.arg in ("self", "cls"):
                continue
            ann = a.annotation
            if ann is not None and "ndarray" in ast.unparse(ann):
                out.add(a.arg)
        return out

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in _functions(ctx.tree):
            params = self._ndarray_params(fn)
            if not params:
                continue
            # A parameter rebound by a plain assignment no longer aliases
            # the caller's array (the repo idiom `a = asarray(a).copy()`).
            for node in _iter_scope(fn.body):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            params.discard(tgt.id)
            if not params:
                continue
            declared = self._declares(fn)
            for node in _iter_scope(fn.body):
                name = self._mutation(node, params)
                if name and not declared:
                    yield self.violation(
                        ctx,
                        node,
                        f"`{fn.name}` mutates ndarray parameter "
                        f"`{name}` without declaring it (say 'in place' "
                        "in the docstring or rename)",
                    )

    def _mutation(self, node: ast.AST, params: Set[str]) -> Optional[str]:
        def base_param(target: ast.AST) -> Optional[str]:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id in params:
                    return target.value.id
            return None

        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                name = base_param(tgt)
                if name:
                    return name
        elif isinstance(node, ast.AugAssign):
            name = base_param(node.target)
            if name:
                return name
            if (
                isinstance(node.target, ast.Name)
                and node.target.id in params
            ):
                return node.target.id
        elif isinstance(node, ast.Call):
            fname = call_name(node)
            if fname in self._OUT_FNS and node.args:
                if (
                    isinstance(node.args[0], ast.Name)
                    and node.args[0].id in params
                ):
                    return node.args[0].id
            if fname in self._MUTATING_METHODS and isinstance(
                node.func, ast.Attribute
            ):
                holder = node.func.value
                if isinstance(holder, ast.Name) and holder.id in params:
                    return holder.id
            for kw in node.keywords:
                if (
                    kw.arg == "out"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in params
                ):
                    return kw.value.id
        return None


# ---------------------------------------------------------------------------
# QL006 — no silent exception swallowing
# ---------------------------------------------------------------------------


class SilentExceptRule(Rule):
    """Bare ``except:`` and ``except Exception: pass`` hide failures.

    A swallowed LinAlgError in the middle of a sweep turns a detectable
    stratification failure into silently wrong physics.
    """

    code = "QL006"
    name = "silent-except"
    severity = "warning"
    description = "bare except or silently swallowed exception"

    _BROAD = {"Exception", "BaseException"}

    def _is_silent_body(self, body: List[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in body
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; name the exception",
                )
            elif (
                isinstance(node.type, (ast.Name, ast.Attribute))
                and dotted_name(node.type).split(".")[-1] in self._BROAD
                and self._is_silent_body(node.body)
            ):
                yield self.violation(
                    ctx,
                    node,
                    "broad exception silently swallowed; handle, log, or "
                    "re-raise",
                )


# ---------------------------------------------------------------------------
# QL007 — core pipeline must dispatch propagator ops through a backend
# ---------------------------------------------------------------------------


class BackendBypassRule(Rule):
    """Flag direct linalg calls and hand-rolled diagonal scalings in
    ``src/repro/core/``.

    The execution-backend layer (``repro.backends``) exists so one
    pipeline runs unchanged over numpy / threaded / GPU execution — and
    so every backend shares a single canonical operation order (the
    bit-identity contract). A ``np.linalg.*`` call or a broadcast
    diagonal scaling (``a * v[:, None]``) written directly in the core
    pipeline silently pins that operation to serial numpy *and* risks a
    second, differently-rounded spelling of a kernel the backends
    already own. Genuinely backend-independent uses (diagnostics, the
    pinned graded split) carry a line pragma.
    """

    code = "QL007"
    name = "backend-bypass"
    description = "direct linalg call or manual diag scaling in core/"

    _LINALG_HOLDERS = {"np.linalg", "numpy.linalg", "scipy.linalg", "sla", "la"}

    def _in_scope(self, ctx: FileContext) -> bool:
        parts = ctx.rel.split("/")
        return "core" in parts[:-1] and "backends" not in parts

    def _linalg_call(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        name = func.attr
        # Exception classes (np.linalg.LinAlgError) are not operations.
        if name[:1].isupper() or name.endswith("Error"):
            return None
        holder = dotted_name(func.value)
        if holder in self._LINALG_HOLDERS or holder.endswith(".linalg"):
            return dotted_name(func)
        return None

    def _is_broadcast_diag(self, node: ast.AST) -> bool:
        """``v[:, None]`` / ``d[None, :]`` — a diagonal factor reshaped
        for broadcasting against a matrix."""
        if not isinstance(node, ast.Subscript):
            return False
        sl = node.slice
        if not isinstance(sl, ast.Tuple):
            return False
        return any(
            isinstance(e, ast.Constant) and e.value is None for e in sl.elts
        )

    def _manual_scaling(self, node: ast.AST) -> bool:
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Mult, ast.Div)
        ):
            return self._is_broadcast_diag(node.left) or self._is_broadcast_diag(
                node.right
            )
        if isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Mult, ast.Div)
        ):
            return self._is_broadcast_diag(node.value)
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = self._linalg_call(node)
                if name:
                    yield self.violation(
                        ctx,
                        node,
                        f"direct `{name}` in the core pipeline: dispatch "
                        "through the PropagatorBackend (or pragma a "
                        "genuinely backend-independent diagnostic)",
                    )
            elif self._manual_scaling(node):
                yield self.violation(
                    ctx,
                    node,
                    "hand-rolled diagonal scaling (broadcast against "
                    "None-indexed vector): use backend.scale_rows / "
                    "scale_columns / scale_two_sided so every backend "
                    "shares one rounding",
                )


# ---------------------------------------------------------------------------
# QL008 — precision-policy bypass in the policy-governed packages
# ---------------------------------------------------------------------------


class PrecisionBypassRule(Rule):
    """Flag literal float dtype pins inside the policy-governed packages.

    Every width decision in ``repro/{core,linalg,hamiltonian,backends}/``
    is owned by :class:`repro.precision.PrecisionPolicy` — code there
    narrows or widens through ``policy.compute(...)`` /
    ``policy.spine(...)`` (or follows an input array's dtype), never by
    spelling a width. A literal ``dtype=np.float64`` pins the hot path
    wide even under ``mixed``; a literal ``astype(np.float32)`` narrows
    behind the policy's back and the watchdog's drift accounting stops
    meaning anything. The rule also flags ``a @ b`` where one operand
    was locally coerced to a literal float width and the other came
    through the policy — a mixed-width GEMM silently upcasts, costing
    the double-precision rate the policy was trying to avoid. Genuinely
    width-pinned spots (float64 reference diagnostics, the graded-scale
    masters) carry a reasoned pragma.
    """

    code = "QL008"
    name = "precision-bypass"
    description = "literal float dtype pin in policy-governed packages"

    _SCOPED_DIRS = {"core", "linalg", "hamiltonian", "backends"}
    _FLOAT_LITERALS = {"float64", "float32", "double", "single", "float_"}
    #: call chains that mark a value as policy-derived
    _POLICY_METHODS = {"compute", "spine"}

    def _in_scope(self, ctx: FileContext) -> bool:
        parts = ctx.rel.split("/")
        return "repro" in parts and bool(
            self._SCOPED_DIRS.intersection(parts[:-1])
        )

    def _float_literal(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute) and node.attr in self._FLOAT_LITERALS:
            return dotted_name(node)
        if isinstance(node, ast.Constant) and node.value in self._FLOAT_LITERALS:
            return repr(node.value)
        return None

    def _is_policy_coercion(self, node: ast.AST) -> bool:
        """``self.policy.compute(x)`` / ``policy.spine(x)`` and friends."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in self._POLICY_METHODS:
            return False
        holder = dotted_name(func.value)
        return holder == "policy" or holder.endswith(".policy") or holder in (
            "compute",
            "spine",
        )

    def _literal_coercion(self, node: ast.AST) -> bool:
        """``np.asarray(x, dtype=np.float64)`` / ``x.astype(np.float32)``."""
        if not isinstance(node, ast.Call):
            return False
        if call_name(node) == "astype" and node.args:
            return self._float_literal(node.args[0]) is not None
        for kw in node.keywords:
            if kw.arg == "dtype" and self._float_literal(kw.value) is not None:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) == "astype" and isinstance(
                node.func, ast.Attribute
            ):
                for arg in node.args[:1]:
                    lit = self._float_literal(arg)
                    if lit:
                        yield self.violation(
                            ctx,
                            node,
                            f"astype({lit}) pins a float width behind the "
                            "precision policy's back: use policy.compute / "
                            "policy.spine (or pragma a genuinely "
                            "width-pinned diagnostic)",
                        )
            for kw in node.keywords:
                if kw.arg == "dtype":
                    lit = self._float_literal(kw.value)
                    if lit:
                        yield self.violation(
                            ctx,
                            node,
                            f"dtype={lit} pins a float width in a "
                            "policy-governed package: take the width from "
                            "the PrecisionPolicy or follow an input "
                            "array's dtype",
                        )
        yield from self._mixed_gemms(ctx)

    def _mixed_gemms(self, ctx: FileContext) -> Iterator[Violation]:
        """Function-local taint: a @ b with one literal-width operand and
        one policy-derived operand upcasts the GEMM behind the policy."""
        for fn in _functions(ctx.tree):
            literal: Set[str] = set()
            policy: Set[str] = set()
            for node in _iter_scope(fn.body):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    tgt = node.targets[0]
                    if isinstance(tgt, ast.Name):
                        if self._literal_coercion(node.value):
                            literal.add(tgt.id)
                            policy.discard(tgt.id)
                        elif self._is_policy_coercion(node.value):
                            policy.add(tgt.id)
                            literal.discard(tgt.id)
            if not literal or not policy:
                continue
            for node in _iter_scope(fn.body):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, ast.MatMult
                ):
                    sides = (node.left, node.right)
                    names = [
                        s.id for s in sides if isinstance(s, ast.Name)
                    ]
                    if any(n in literal for n in names) and any(
                        n in policy for n in names
                    ):
                        yield self.violation(
                            ctx,
                            node,
                            f"`{fn.name}` multiplies a literal-width "
                            "operand against a policy-derived one: the "
                            "GEMM silently upcasts and the narrowed "
                            "policy buys nothing here",
                        )


# ---------------------------------------------------------------------------
# QL9xx — meta rules (engine-emitted; descriptors only)
# ---------------------------------------------------------------------------


class MetaRule(Rule):
    """Descriptor for a finding the *engine* emits.

    The engine owns the pragma bookkeeping, so these rules never run a
    check themselves — they exist so ``--list-rules``, ``--select``, and
    the SARIF rule metadata can see the codes.
    """

    meta_rule = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


class PragmaReasonMeta(MetaRule):
    """A suppression must say why, or it rots into folklore."""

    code = "QL901"
    name = "pragma-no-reason"
    severity = "warning"
    description = "suppression pragma without a reason"


class PragmaUnusedMeta(MetaRule):
    """A pragma that masks nothing is a trap for the next edit."""

    code = "QL902"
    name = "pragma-unused"
    severity = "warning"
    description = "suppression pragma that no longer masks any finding"


# Imported late: rules_concurrency subclasses Rule from this module.
from .rules_concurrency import CONCURRENCY_RULES  # noqa: E402

ALL_RULES = (
    RawInverseRule(),
    UnseededRNGRule(),
    DtypeHygieneRule(),
    FlopLedgerRule(),
    InPlaceParamRule(),
    SilentExceptRule(),
    BackendBypassRule(),
    PrecisionBypassRule(),
) + CONCURRENCY_RULES + (
    PragmaReasonMeta(),
    PragmaUnusedMeta(),
)
