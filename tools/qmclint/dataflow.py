"""Lightweight intra-procedural dataflow with cross-call summaries.

Three analyses, each scoped to exactly what the QL1xx rules consume:

**Lock regions** — the line spans covered by ``with <lock>`` statements,
where a lock is any name/attribute whose spelling contains ``lock`` or
that resolves to a module-level ``threading.Lock()`` assignment. QL101
treats a mutation inside such a region as serialized.

**Seed provenance** — a conservative classifier over expressions: is
this value *derived* from the configured seed (``SimulationConfig.seed``
/ ``SeedSequence.spawn`` and friends), *definitely not* (a literal, time,
pid, hash — the classic "works on my machine" seeds), or *unknown*?
Unknown is trusted: the rule only fires on proof, never on doubt. A
parameter named like a seed (``seed``, ``base_seed``, ``rng``,
``entropy``, ``seed_seq``) is a documented trust boundary; for other
parameters QL104 consults the call graph and classifies what each caller
actually passes (one summary hop).

**Picklability summaries** — per class: does any method bind an
attribute to an unpicklable resource (open file handles,
``threading.Lock``/``RLock``/``Condition``/``Event``, a numpy
``Generator``), directly or through another project class, and does the
class opt out via ``__getstate__``/``__reduce__``? QL102 flags such
classes crossing the campaign pickle boundary.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .project import ClassInfo, FunctionInfo, Project

__all__ = [
    "lock_guarded_lines",
    "classify_seed_expr",
    "SEED_PARAM_HINTS",
    "unpicklable_members",
    "DERIVED",
    "UNKNOWN",
    "LITERAL",
    "NONDERIVED",
    "ARITHMETIC",
]

# seed-provenance verdicts
DERIVED = "derived"
UNKNOWN = "unknown"
LITERAL = "literal"
NONDERIVED = "nonderived"
ARITHMETIC = "arithmetic"

#: parameter-name fragments that mark a documented seed trust boundary
SEED_PARAM_HINTS = ("seed", "entropy", "rng", "generator", "ss")

#: call names whose result is provenance-preserving
_SEED_FACTORIES = {"SeedSequence", "default_rng", "Generator", "PCG64", "spawn"}

#: call names whose result must never seed a Generator
_NONDERIVED_CALLS = {
    "time",
    "time_ns",
    "perf_counter",
    "monotonic",
    "getpid",
    "urandom",
    "uuid1",
    "uuid4",
    "id",
    "hash",
}


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# lock regions
# ---------------------------------------------------------------------------


def _is_lock_expr(node: ast.AST, module_locks: Set[str]) -> bool:
    dotted = _dotted(node)
    if not dotted:
        return False
    tail = dotted.split(".")[-1].lower()
    return "lock" in tail or dotted in module_locks


def module_lock_names(assigns: Dict[str, ast.expr]) -> Set[str]:
    """Module-level names bound to ``threading.Lock()``-like objects."""
    out: Set[str] = set()
    for name, value in assigns.items():
        if isinstance(value, ast.Call):
            callee = _dotted(value.func).split(".")[-1]
            if callee in ("Lock", "RLock", "Condition", "Semaphore"):
                out.add(name)
    return out


def lock_guarded_lines(
    fn_node: ast.AST, module_locks: Optional[Set[str]] = None
) -> Set[int]:
    """Line numbers inside ``with <lock>:`` blocks of this function."""
    locks = module_locks or set()
    out: Set[int] = set()
    for node in ast.walk(fn_node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_is_lock_expr(item.context_expr, locks) for item in node.items):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None:
            end = max(
                getattr(n, "lineno", node.lineno) for n in ast.walk(node)
            )
        out.update(range(node.lineno, end + 1))
    return out


# ---------------------------------------------------------------------------
# seed provenance
# ---------------------------------------------------------------------------


def _param_names(fn_node: ast.AST) -> List[str]:
    a = fn_node.args
    params = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
    names = [p.arg for p in params]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return names


def _seedy_name(name: str) -> bool:
    lowered = name.lower()
    return any(h in lowered for h in SEED_PARAM_HINTS)


def _local_assignments(fn_node: ast.AST) -> Dict[str, ast.expr]:
    out: Dict[str, ast.expr] = {}
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out[tgt.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                out[node.target.id] = node.value
    return out


def classify_seed_expr(
    expr: ast.AST,
    fn_node: ast.AST,
    _visited: Optional[Set[str]] = None,
) -> str:
    """Provenance verdict for the expression seeding a ``Generator``.

    Returns one of :data:`DERIVED`, :data:`UNKNOWN`, :data:`LITERAL`,
    :data:`NONDERIVED`, :data:`ARITHMETIC` (seed arithmetic like
    ``base_seed + i``, which destroys stream-independence guarantees —
    the exact bug ``SeedSequence.spawn`` exists to prevent).
    """
    visited = _visited if _visited is not None else set()
    if isinstance(expr, ast.Constant):
        return LITERAL if isinstance(expr.value, (int, float)) else UNKNOWN
    if isinstance(expr, ast.Name):
        if expr.id in visited:
            return UNKNOWN
        visited.add(expr.id)
        if _seedy_name(expr.id):
            return DERIVED
        local = _local_assignments(fn_node)
        if expr.id in local:
            return classify_seed_expr(local[expr.id], fn_node, visited)
        if expr.id in _param_names(fn_node):
            return UNKNOWN  # caller-supplied; QL104 checks the call sites
        return UNKNOWN
    if isinstance(expr, ast.Attribute):
        # config.seed, self._seed, cfg.base_seed ... — a documented field
        return DERIVED if _seedy_name(expr.attr) else UNKNOWN
    if isinstance(expr, ast.Subscript):
        # spawn(n)[i] — provenance flows through indexing
        return classify_seed_expr(expr.value, fn_node, visited)
    if isinstance(expr, ast.Call):
        name = _dotted(expr.func).split(".")[-1] or (
            expr.func.attr if isinstance(expr.func, ast.Attribute) else ""
        )
        if name in _SEED_FACTORIES:
            return DERIVED
        if name in _NONDERIVED_CALLS:
            return NONDERIVED
        if name in ("int", "abs", "round") and expr.args:
            # numeric wrappers are provenance-transparent
            return classify_seed_expr(expr.args[0], fn_node, visited)
        return UNKNOWN
    if isinstance(expr, ast.BinOp):
        left = classify_seed_expr(expr.left, fn_node, visited)
        right = classify_seed_expr(expr.right, fn_node, visited)
        if NONDERIVED in (left, right):
            return NONDERIVED
        if DERIVED in (left, right):
            # seed ± offset: deterministic but independence-breaking
            return ARITHMETIC
        return UNKNOWN
    if isinstance(expr, (ast.IfExp,)):
        body = classify_seed_expr(expr.body, fn_node, visited)
        orelse = classify_seed_expr(expr.orelse, fn_node, visited)
        bad = [v for v in (body, orelse) if v in (LITERAL, NONDERIVED, ARITHMETIC)]
        return bad[0] if bad else (
            DERIVED if DERIVED in (body, orelse) else UNKNOWN
        )
    return UNKNOWN


def seed_param_of(expr: ast.AST) -> Optional[str]:
    """If the expression is a bare parameter reference, its name."""
    return expr.id if isinstance(expr, ast.Name) else None


def call_argument_for(
    call: ast.Call, fn_node: ast.AST, param: str
) -> Optional[ast.AST]:
    """The expression a call site passes for ``param`` (best effort)."""
    for kw in call.keywords:
        if kw.arg == param:
            return kw.value
    params = _param_names(fn_node)
    if param in params:
        idx = params.index(param)
        # methods: drop the self/cls slot callers never spell
        if params and params[0] in ("self", "cls"):
            idx -= 1
        if 0 <= idx < len(call.args):
            return call.args[idx]
    return None


# ---------------------------------------------------------------------------
# picklability
# ---------------------------------------------------------------------------

_UNPICKLABLE_CALLS = {
    "open": "an open file handle",
    "Lock": "a threading.Lock",
    "RLock": "a threading.RLock",
    "Condition": "a threading.Condition",
    "Event": "a threading.Event",
    "Semaphore": "a threading.Semaphore",
    "local": "thread-local storage",
    "ThreadPoolExecutor": "a thread pool",
    "Popen": "a subprocess handle",
}


def _attr_value_problem(
    value: ast.AST, project: Project, module: str, depth: int
) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    name = dotted.split(".")[-1]
    if name in _UNPICKLABLE_CALLS:
        return _UNPICKLABLE_CALLS[name]
    # an instance of another project class that is itself unpicklable
    resolved = project.resolve(module, dotted) if dotted else None
    if resolved and resolved in project.classes:
        nested = unpicklable_members(
            project.classes[resolved], project, _depth=depth + 1
        )
        if nested:
            member, why = nested[0]
            return f"a {name} holding {why} (via .{member})"
    return None


def unpicklable_members(
    klass: ClassInfo, project: Project, _depth: int = 0
) -> List[Tuple[str, str]]:
    """``(attribute, what-it-holds)`` pairs that break pickling.

    Classes defining ``__getstate__`` or ``__reduce__`` have opted into
    custom pickling and report clean regardless of their attributes.
    """
    if _depth > 4:
        return []
    if "__getstate__" in klass.methods or "__reduce__" in klass.methods:
        return []
    out: List[Tuple[str, str]] = []
    for method in klass.methods.values():
        for node in ast.walk(method.node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    why = _attr_value_problem(
                        value, project, klass.module, _depth
                    )
                    if why and all(tgt.attr != m for m, _ in out):
                        out.append((tgt.attr, why))
    return out


def function_summary_calls(
    fn: FunctionInfo, names: Set[str]
) -> List[ast.Call]:
    """All ``Call`` nodes in ``fn`` whose trailing name is in ``names``."""
    out: List[ast.Call] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            tail = _dotted(node.func).split(".")[-1] or (
                node.func.attr if isinstance(node.func, ast.Attribute) else ""
            )
            if tail in names:
                out.append(node)
    return out
