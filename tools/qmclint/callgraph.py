"""Call-graph construction and reachability queries over a Project.

Edges are built by resolving every ``Call`` inside every project
function against the module index:

* bare names — local nested functions first, then module symbols and
  import aliases;
* ``self.method(...)`` / ``cls.method(...)`` — the enclosing class's
  method table, following project base classes (so calling an inherited
  method lands on the base implementation);
* dotted chains (``mod.sub.fn(...)``) — cross-module resolution through
  :meth:`qmclint.project.Project.resolve`;
* ``obj.method(...)`` on an object of unknown type — the *duck-typed
  fallback*: an edge to every project method of that name. This
  deliberately over-approximates reachability (a coverage analysis that
  under-approximates would certify kernels it never saw), and rules
  that need precision filter on the callee's module.

Thread-entry detection finds the functions handed to concurrency
primitives — ``ThreadPoolExecutor.submit/map``, ``threading.Thread
(target=...)``, the repo's ``run_tasks(fn, ...)`` / ``parallel_for(n,
body)`` — plus everything reachable from them; that set is what QL101
means by "reachable from a thread-pool entry point".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from .project import ClassInfo, FunctionInfo, Project

__all__ = ["CallGraph"]

#: call-sites whose function-valued argument starts running on a thread
_THREAD_APIS = {
    "submit": 0,        # pool.submit(fn, *args)
    "map": 0,           # pool.map(fn, items)
    "run_tasks": 0,     # repro.campaign.scheduler.run_tasks(fn, payloads)
    "parallel_for": 1,  # parallel_for(n, body)
    "map_reduce": 1,    # pool.map_reduce(n, mapper, reducer)
}


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _local_defs(fn_node: ast.AST) -> Dict[str, str]:
    """Names of functions defined directly inside ``fn_node``'s body."""
    out: Dict[str, str] = {}
    for child in ast.iter_child_nodes(fn_node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[child.name] = child.name
    return out


@dataclass
class CallGraph:
    """Directed caller → callee edges between project function ids."""

    project: Project
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: fids handed directly to a thread API (the spawn points)
    thread_targets: Set[str] = field(default_factory=set)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project=project)
        for fn in project.functions.values():
            graph.edges[fn.fid] = set()
            for callee in graph._callees(fn):
                graph.edges[fn.fid].add(callee)
            for target in graph._thread_handoffs(fn):
                graph.thread_targets.add(target)
        return graph

    def _class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        return self.project.classes.get(f"{fn.module}.{fn.class_name}")

    def _method_on_class(
        self, klass: Optional[ClassInfo], name: str, depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Look up a method, walking project base classes."""
        if klass is None or depth > 8:
            return None
        if name in klass.methods:
            return klass.methods[name]
        for base in klass.bases:
            resolved = self.project.resolve(klass.module, base)
            base_cls = self.project.classes.get(resolved) if resolved else None
            found = self._method_on_class(base_cls, name, depth + 1)
            if found is not None:
                return found
        return None

    def _resolve_callable(
        self, fn: FunctionInfo, node: ast.AST
    ) -> List[str]:
        """Resolve a callable expression to candidate fids."""
        project = self.project
        if isinstance(node, ast.Name):
            # local nested function?
            if node.id in _local_defs(fn.node):
                nested_fid = f"{fn.module}.{fn.qualname}.<locals>.{node.id}"
                info = project.functions.get(nested_fid)
                if info is not None:
                    return [info.fid]
            resolved = project.resolve(fn.module, node.id)
            return self._ids_for(resolved)
        if isinstance(node, ast.Attribute):
            holder = node.value
            if isinstance(holder, ast.Name) and holder.id in ("self", "cls"):
                found = self._method_on_class(self._class_of(fn), node.attr)
                return [found.fid] if found is not None else []
            dotted = _dotted(node)
            if dotted:
                resolved = project.resolve(fn.module, dotted)
                ids = self._ids_for(resolved)
                if ids:
                    return ids
            # duck-typed fallback: any project method of this name
            return [
                m.fid for m in project.methods_by_name.get(node.attr, [])
            ]
        return []

    def _ids_for(self, resolved: Optional[str]) -> List[str]:
        """Function ids for a resolved symbol (function, or class → init)."""
        if resolved is None:
            return []
        project = self.project
        if resolved in project.functions:
            return [resolved]
        if resolved in project.classes:
            init = project.classes[resolved].methods.get("__init__")
            return [init.fid] if init is not None else []
        return []

    def _callees(self, fn: FunctionInfo) -> Iterator[str]:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                for fid in self._resolve_callable(fn, node.func):
                    if fid != fn.fid:
                        yield fid

    def _thread_handoffs(self, fn: FunctionInfo) -> Iterator[str]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id
                if isinstance(node.func, ast.Name)
                else ""
            )
            arg: Optional[ast.AST] = None
            if name in _THREAD_APIS:
                idx = _THREAD_APIS[name]
                if len(node.args) > idx:
                    arg = node.args[idx]
            elif name == "Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        arg = kw.value
            if arg is None:
                continue
            for fid in self._resolve_callable(fn, arg):
                yield fid

    # -- queries -------------------------------------------------------------

    def reachable_from(self, roots: Set[str]) -> Set[str]:
        """Transitive closure of callees, roots included."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.edges]
        while stack:
            fid = stack.pop()
            if fid in seen:
                continue
            seen.add(fid)
            stack.extend(self.edges.get(fid, ()))
        return seen

    def thread_reachable(self) -> Set[str]:
        """Everything that may execute on a non-main thread."""
        return self.reachable_from(set(self.thread_targets))

    def reachable_through(self, roots: Set[str], via: Set[str]) -> Set[str]:
        """Nodes reachable from ``roots`` on a path through some ``via``.

        Used by QL105: a kernel is ledger-covered when every way the
        sweep can reach it passes a recording function — equivalently,
        it is *flagged* when it is reachable but NOT reachable through
        any recorder.
        """
        reach = self.reachable_from(roots)
        gates = {v for v in via if v in reach}
        return self.reachable_from(gates)

    def callers_of(self, fid: str) -> Set[str]:
        return {f for f, callees in self.edges.items() if fid in callees}
