"""The rule engine: file contexts, pragma suppression, and the runner.

A :class:`FileContext` bundles everything a rule may want about one file
(parsed AST, raw source lines, a normalized posix-style path for scope
matching). The :class:`LintRunner` walks a set of paths, applies every
registered rule, and filters the resulting violations through line/file
pragmas and the optional baseline.

v2 additions
------------
* :class:`Violation` carries a ``severity`` (``error``/``warning``/
  ``note``) that maps onto SARIF result levels; the exit status still
  fails on *any* non-baselined finding, severity is reporting metadata.
* Pragmas are parsed into :class:`Pragma` records that carry a *reason*
  (the free text after the codes, or implicit for ``def``/``class``
  lines whose docstring justifies the suppression). The runner reports
  reason-less pragmas (QL901) and pragmas that suppressed nothing
  (QL902) so suppressions cannot rot silently.
* :meth:`LintRunner.run` is a whole-program pass: after the per-file
  rules it builds a :class:`~qmclint.project.Project` index and a
  :class:`~qmclint.callgraph.CallGraph` over every parsed file and runs
  the *project rules* (``check_project``) — the QL1xx family — against
  them. :meth:`LintRunner.run_file` remains the per-file subset (used
  by tests and editors that lint a single buffer).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "Pragma",
    "FileContext",
    "LintRunner",
    "iter_python_files",
    "SEVERITIES",
]

#: recognised severities, in decreasing order of gravity (SARIF levels)
SEVERITIES = ("error", "warning", "note")

#: ``# qmclint: disable=QL001,QL004 -- reason`` — suppress on the line.
_PRAGMA_LINE = re.compile(r"#\s*qmclint:\s*disable=([A-Z0-9,\s]+)(.*)$")
#: ``# qmclint: disable-file=QL002 -- reason`` — suppress for the file.
_PRAGMA_FILE = re.compile(r"#\s*qmclint:\s*disable-file=([A-Z0-9,\s]+)(.*)$")
#: a def/class line carries its justification in the docstring
_DEF_LINE = re.compile(r"^\s*(async\s+def|def|class)\s")


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a source line."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int
    codes: frozenset
    file_level: bool
    #: free text after the codes (stripped of ``--``/dash separators)
    reason: str
    #: True when the carrying line is a ``def``/``class`` statement whose
    #: docstring is the house-style place for the justification
    on_def_line: bool

    @property
    def has_reason(self) -> bool:
        return bool(self.reason) or self.on_def_line


def _parse_codes(blob: str) -> set:
    return {c.strip() for c in blob.split(",") if c.strip()}


def _parse_reason(blob: str) -> str:
    return blob.strip().lstrip("-—–").strip()


@dataclass
class FileContext:
    """Everything the rules need about one parsed source file."""

    path: Path
    source: str
    tree: ast.Module
    #: normalized forward-slash path used for scope matching and output
    rel: str
    lines: List[str] = field(default_factory=list)
    _pragmas: Optional[List[Pragma]] = field(default=None, repr=False)

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "FileContext":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        try:
            rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        except ValueError:
            rel = path
        return cls(
            path=path,
            source=source,
            tree=tree,
            rel=rel.as_posix(),
            lines=source.splitlines(),
        )

    # -- pragma handling -----------------------------------------------------

    def pragmas(self) -> List[Pragma]:
        """All suppression pragmas in the file, parsed once."""
        if self._pragmas is None:
            out: List[Pragma] = []
            for lineno, text in enumerate(self.lines, start=1):
                m = _PRAGMA_FILE.search(text)
                file_level = m is not None
                if m is None:
                    m = _PRAGMA_LINE.search(text)
                if m is None:
                    continue
                # A backtick right before the hash means documentation
                # *quoting* the pragma syntax, not a live suppression.
                if m.start() > 0 and text[m.start() - 1] == "`":
                    continue
                out.append(
                    Pragma(
                        line=lineno,
                        codes=frozenset(_parse_codes(m.group(1))),
                        file_level=file_level,
                        reason=_parse_reason(m.group(2)),
                        on_def_line=bool(_DEF_LINE.match(text)),
                    )
                )
            self._pragmas = out
        return self._pragmas

    def line_pragmas(self, line: int) -> set:
        """Codes disabled on the given 1-based line."""
        out: set = set()
        for p in self.pragmas():
            if not p.file_level and p.line == line:
                out |= p.codes
        return out

    def file_pragmas(self) -> set:
        """Codes disabled for the whole file."""
        out: set = set()
        for p in self.pragmas():
            if p.file_level:
                out |= p.codes
        return out

    def matching_pragmas(self, v: Violation) -> List[Pragma]:
        """Pragmas that suppress the given violation (may be several)."""
        return [
            p
            for p in self.pragmas()
            if v.code in p.codes and (p.file_level or p.line == v.line)
        ]

    def is_suppressed(self, v: Violation) -> bool:
        return bool(self.matching_pragmas(v))


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: Set[Path] = set()
    for p in paths:
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            if c not in seen:
                seen.add(c)
                yield c


class LintRunner:
    """Applies a rule set over files, honouring pragmas and select/ignore.

    After :meth:`run`, ``self.contexts`` maps each reported relative path
    to its :class:`FileContext` (the CLI uses it for baseline
    fingerprints without re-reading files).
    """

    #: engine-emitted meta codes (described by MetaRule entries in rules.py)
    PRAGMA_NO_REASON = "QL901"
    PRAGMA_UNUSED = "QL902"

    def __init__(
        self,
        rules: Iterable,
        select: Optional[set] = None,
        ignore: Optional[set] = None,
        root: Optional[Path] = None,
    ):
        self.rules = list(rules)
        self.select = select
        self.ignore = ignore or set()
        self.root = root
        self.errors: List[str] = []
        self.contexts: Dict[str, FileContext] = {}

    def _active(self, code: str) -> bool:
        if self.select is not None and code not in self.select:
            return False
        return code not in self.ignore

    def _file_rules(self):
        return [
            r
            for r in self.rules
            if not getattr(r, "project_rule", False)
            and not getattr(r, "meta_rule", False)
        ]

    def _project_rules(self):
        return [r for r in self.rules if getattr(r, "project_rule", False)]

    def _severity(self, code: str) -> str:
        for rule in self.rules:
            if rule.code == code:
                return getattr(rule, "severity", "error")
        return "warning"

    # -- per-file pass -------------------------------------------------------

    def _parse(self, path: Path) -> Optional[FileContext]:
        try:
            ctx = FileContext.parse(path, root=self.root)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            self.errors.append(f"{path}: unparseable: {exc}")
            return None
        self.contexts[ctx.rel] = ctx
        return ctx

    def _check_file(
        self, ctx: FileContext, used: Set[Tuple[str, Pragma]]
    ) -> List[Violation]:
        out: List[Violation] = []
        for rule in self._file_rules():
            if not self._active(rule.code):
                continue
            for v in rule.check(ctx):
                matches = ctx.matching_pragmas(v)
                if matches:
                    for p in matches:
                        used.add((ctx.rel, p))
                else:
                    out.append(v)
        return out

    def run_file(self, path: Path) -> List[Violation]:
        """Per-file rules only (no project pass, no pragma meta checks)."""
        ctx = self._parse(path)
        if ctx is None:
            return []
        out = self._check_file(ctx, used=set())
        out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return out

    # -- whole-program pass --------------------------------------------------

    def run(self, paths: Sequence[Path]) -> List[Violation]:
        """Full pipeline: file rules, project rules, pragma meta checks."""
        used: Set[Tuple[str, Pragma]] = set()
        out: List[Violation] = []
        contexts: List[FileContext] = []
        for f in iter_python_files(paths):
            ctx = self._parse(f)
            if ctx is None:
                continue
            contexts.append(ctx)
            out.extend(self._check_file(ctx, used))

        project_rules = [
            r for r in self._project_rules() if self._active(r.code)
        ]
        if project_rules and contexts:
            # Imported here so the per-file engine stays importable alone.
            from .callgraph import CallGraph
            from .project import Project

            project = Project.build(contexts)
            graph = CallGraph.build(project)
            by_rel = {ctx.rel: ctx for ctx in contexts}
            for rule in project_rules:
                for v in rule.check_project(project, graph):
                    ctx = by_rel.get(v.path)
                    matches = ctx.matching_pragmas(v) if ctx else []
                    if matches:
                        for p in matches:
                            used.add((v.path, p))
                    else:
                        out.append(v)

        out.extend(self._pragma_meta(contexts, used))
        out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return out

    def _pragma_meta(
        self,
        contexts: Sequence[FileContext],
        used: Set[Tuple[str, Pragma]],
    ) -> List[Violation]:
        """QL901 (pragma without reason) / QL902 (unused pragma)."""
        active = {r.code for r in self.rules if self._active(r.code)}
        out: List[Violation] = []
        for ctx in contexts:
            for p in ctx.pragmas():
                if self._active(self.PRAGMA_NO_REASON) and not p.has_reason:
                    out.append(
                        Violation(
                            path=ctx.rel,
                            line=p.line,
                            col=1,
                            code=self.PRAGMA_NO_REASON,
                            message=(
                                "suppression pragma without a reason: add "
                                "`-- why` after the codes (or move the "
                                "pragma to the def/class line and justify "
                                "in the docstring)"
                            ),
                            severity=self._severity(self.PRAGMA_NO_REASON),
                        )
                    )
                # Only judge usefulness against rules that actually ran;
                # a QL007 pragma is not "unused" under --select QL001.
                if (
                    self._active(self.PRAGMA_UNUSED)
                    and p.codes & active
                    and (ctx.rel, p) not in used
                ):
                    codes = ",".join(sorted(p.codes & active))
                    out.append(
                        Violation(
                            path=ctx.rel,
                            line=p.line,
                            col=1,
                            code=self.PRAGMA_UNUSED,
                            message=(
                                f"unused suppression pragma ({codes}): it "
                                "no longer masks any finding — delete it"
                            ),
                            severity=self._severity(self.PRAGMA_UNUSED),
                        )
                    )
        return out
