"""The rule engine: file contexts, pragma suppression, and the runner.

A :class:`FileContext` bundles everything a rule may want about one file
(parsed AST, raw source lines, a normalized posix-style path for scope
matching). The :class:`LintRunner` walks a set of paths, applies every
registered rule, and filters the resulting violations through line/file
pragmas and the optional baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

__all__ = ["Violation", "FileContext", "LintRunner", "iter_python_files"]


#: ``# qmclint: disable=QL001,QL004`` — suppress on the carrying line.
_PRAGMA_LINE = re.compile(r"#\s*qmclint:\s*disable=([A-Z0-9,\s]+)")
#: ``# qmclint: disable-file=QL002`` — suppress for the whole file.
_PRAGMA_FILE = re.compile(r"#\s*qmclint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a source line."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _parse_codes(blob: str) -> set:
    return {c.strip() for c in blob.split(",") if c.strip()}


@dataclass
class FileContext:
    """Everything the rules need about one parsed source file."""

    path: Path
    source: str
    tree: ast.Module
    #: normalized forward-slash path used for scope matching and output
    rel: str
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "FileContext":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        try:
            rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        except ValueError:
            rel = path
        return cls(
            path=path,
            source=source,
            tree=tree,
            rel=rel.as_posix(),
            lines=source.splitlines(),
        )

    # -- pragma handling -----------------------------------------------------

    def line_pragmas(self, line: int) -> set:
        """Codes disabled on the given 1-based line."""
        if not 1 <= line <= len(self.lines):
            return set()
        m = _PRAGMA_LINE.search(self.lines[line - 1])
        return _parse_codes(m.group(1)) if m else set()

    def file_pragmas(self) -> set:
        """Codes disabled for the whole file."""
        out: set = set()
        for text in self.lines:
            m = _PRAGMA_FILE.search(text)
            if m:
                out |= _parse_codes(m.group(1))
        return out

    def is_suppressed(self, v: Violation) -> bool:
        return v.code in self.line_pragmas(v.line) or v.code in self.file_pragmas()


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


class LintRunner:
    """Applies a rule set over files, honouring pragmas and select/ignore."""

    def __init__(
        self,
        rules: Iterable,
        select: Optional[set] = None,
        ignore: Optional[set] = None,
        root: Optional[Path] = None,
    ):
        self.rules = list(rules)
        self.select = select
        self.ignore = ignore or set()
        self.root = root
        self.errors: List[str] = []

    def _active(self, code: str) -> bool:
        if self.select is not None and code not in self.select:
            return False
        return code not in self.ignore

    def run_file(self, path: Path) -> List[Violation]:
        try:
            ctx = FileContext.parse(path, root=self.root)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            self.errors.append(f"{path}: unparseable: {exc}")
            return []
        out: List[Violation] = []
        for rule in self.rules:
            if not self._active(rule.code):
                continue
            for v in rule.check(ctx):
                if not ctx.is_suppressed(v):
                    out.append(v)
        out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return out

    def run(self, paths: Sequence[Path]) -> List[Violation]:
        out: List[Violation] = []
        for f in iter_python_files(paths):
            out.extend(self.run_file(f))
        return out
