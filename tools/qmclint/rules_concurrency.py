"""QL1xx — concurrency / process-safety rules over the whole program.

These rules consume the :mod:`qmclint.project` index and the
:mod:`qmclint.callgraph` reachability queries (``project_rule = True``;
the engine hands them the built project instead of one file at a time).
They are scoped to ``repro.*`` modules — the simulation package whose
thread/process boundaries (threaded backends, ``run_ensemble``
executors, subprocess campaign workers) they police. QL103 is the one
per-file member of the family: write-durability is a local property.

Rationale per rule lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .dataflow import (
    ARITHMETIC,
    LITERAL,
    NONDERIVED,
    UNKNOWN,
    call_argument_for,
    classify_seed_expr,
    lock_guarded_lines,
    module_lock_names,
    unpicklable_members,
)
from .engine import FileContext, Violation
from .project import ClassInfo, FunctionInfo, ModuleInfo, Project

__all__ = ["CONCURRENCY_RULES"]


# Local copies of the tiny AST helpers from rules.py: this module must
# not import rules (rules imports this one to assemble ALL_RULES).


def dotted_name(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _iter_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)

#: methods that mutate their receiver in place
_MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "update",
    "extend",
    "insert",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "clear",
    "remove",
    "discard",
}

#: constructors whose result is a mutable container
_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}

#: methods every thread may call without synchronisation
_SAFE_FACTORY_TAILS = {"local", "Lock", "RLock", "Condition", "Semaphore", "Event"}


def _in_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


def _base_name(node: ast.AST) -> Optional[str]:
    """Leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _local_names(fn_node: ast.AST) -> Set[str]:
    """Parameters plus every name bound inside the function."""
    a = fn_node.args
    out = {p.arg for p in list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)}
    if a.vararg:
        out.add(a.vararg.arg)
    if a.kwarg:
        out.add(a.kwarg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
                elif isinstance(tgt, (ast.Tuple, ast.List)):
                    for elt in tgt.elts:
                        if isinstance(elt, ast.Name):
                            out.add(elt.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                out.add(node.target.id)
            elif isinstance(node.target, (ast.Tuple, ast.List)):
                for elt in node.target.elts:
                    if isinstance(elt, ast.Name):
                        out.add(elt.id)
        elif isinstance(node, ast.comprehension):
            if isinstance(node.target, ast.Name):
                out.add(node.target.id)
            elif isinstance(node.target, (ast.Tuple, ast.List)):
                for elt in node.target.elts:
                    if isinstance(elt, ast.Name):
                        out.add(elt.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    out.add(item.optional_vars.id)
    return out


class _RuleBase:
    """Structural stand-in for :class:`qmclint.rules.Rule`.

    Duplicated (not imported) so this module stays import-safe from
    either direction; the engine duck-types rules, it never isinstance
    checks.
    """

    code = "QL100"
    name = "base"
    description = ""
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
        )


class ProjectRule(_RuleBase):
    """Base for rules that see the whole program at once."""

    project_rule = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def at(self, rel: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=getattr(self, "severity", "error"),
        )


# ---------------------------------------------------------------------------
# QL101 — shared mutable state reachable from thread entry points
# ---------------------------------------------------------------------------


class SharedStateRule(ProjectRule):
    """Unlocked mutation of state that threads share.

    Two shapes:

    * a **module-level** mutable container (or ``global`` rebind) mutated
      outside a lock region by a function reachable from a thread-pool
      entry point — the pattern ``linalg/flops.py`` solves with
      ``threading.local`` and ``parallel/pool.py`` with a module Lock;
    * a method that mutates instance state without a lock, invoked from a
      thread-*target* function on an object the target did not create
      (a closure capture or global — shared across the workers by
      construction, the way ``parallel_for`` bodies share their
      enclosing backend and its telemetry registry).
    """

    code = "QL101"
    name = "shared-state"
    severity = "error"
    description = "unlocked mutation of thread-shared mutable state"

    #: dunder methods that run before an instance can be shared
    _PRE_SHARE = {"__init__", "__post_init__", "__new__", "__setstate__"}

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        thread_reach = graph.thread_reachable()
        for mod in project.modules.values():
            if not _in_repro(mod.name):
                continue
            yield from self._check_globals(mod, thread_reach)
        yield from self._check_captured(project, graph)

    # -- module-level globals ------------------------------------------------

    def _mutable_global(self, value: ast.expr) -> bool:
        if isinstance(
            value,
            (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
        ):
            return True
        if isinstance(value, ast.Call):
            tail = call_name(value)
            if tail in _SAFE_FACTORY_TAILS:
                return False
            return tail in _MUTABLE_FACTORIES
        return False

    def _check_globals(
        self, mod: ModuleInfo, thread_reach: Set[str]
    ) -> Iterator[Violation]:
        candidates = {
            name for name, v in mod.assigns.items() if self._mutable_global(v)
        }
        rebindable = set(mod.assigns)  # `global NAME` rebinds count too
        if not candidates and not rebindable:
            return
        locks = module_lock_names(mod.assigns)
        for fn in mod.functions.values():
            if fn.fid not in thread_reach:
                continue
            declared_global: Set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            locals_ = _local_names(fn.node) - declared_global
            guarded = lock_guarded_lines(fn.node, locks)
            for node, name in self._mutations(
                fn.node, candidates, rebindable, declared_global, locals_
            ):
                if node.lineno in guarded:
                    continue
                yield self.at(
                    mod.ctx.rel,
                    node,
                    f"`{fn.qualname}` mutates module-level `{name}` and is "
                    "reachable from a thread-pool entry point with no lock "
                    "held: guard with a module Lock or use threading.local "
                    "(see repro/linalg/flops.py)",
                )

    def _mutations(
        self,
        fn_node: ast.AST,
        containers: Set[str],
        rebindable: Set[str],
        declared_global: Set[str],
        locals_: Set[str],
    ) -> Iterator[Tuple[ast.AST, str]]:
        def container_target(target: ast.AST) -> Optional[str]:
            if isinstance(target, ast.Subscript):
                base = _base_name(target)
                if base in containers and base not in locals_:
                    return base
            return None

        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    name = container_target(tgt)
                    if name:
                        yield node, name
                    elif (
                        isinstance(tgt, ast.Name)
                        and tgt.id in declared_global
                        and tgt.id in rebindable
                    ):
                        yield node, tgt.id
            elif isinstance(node, ast.AugAssign):
                name = container_target(node.target)
                if name:
                    yield node, name
                elif (
                    isinstance(node.target, ast.Name)
                    and node.target.id in declared_global
                ):
                    yield node, node.target.id
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    name = container_target(tgt)
                    if name:
                        yield node, name
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATING_METHODS:
                    base = _base_name(node.func.value)
                    if base in containers and base not in locals_:
                        yield node, base

    # -- captured objects mutated from thread targets ------------------------

    def _unlocked_self_mutations(self, method: FunctionInfo) -> List[ast.AST]:
        guarded = lock_guarded_lines(method.node)
        out: List[ast.AST] = []

        def is_self_state(target: ast.AST) -> bool:
            return (
                _base_name(target) == "self"
                and isinstance(target, (ast.Attribute, ast.Subscript))
            )

        for node in ast.walk(method.node):
            hit: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                if any(
                    is_self_state(t) and not isinstance(t, ast.Attribute)
                    for t in node.targets
                ):
                    # only subscript stores: plain `self.x = v` rebinds are
                    # atomic enough not to corrupt containers
                    hit = node
            elif isinstance(node, ast.AugAssign) and is_self_state(node.target):
                hit = node
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if (
                    node.func.attr in _MUTATING_METHODS
                    and _base_name(node.func.value) == "self"
                ):
                    hit = node
            if hit is not None and hit.lineno not in guarded:
                out.append(hit)
        return out

    def _class_has_lock(self, klass: ClassInfo) -> bool:
        for method in klass.methods.values():
            for node in ast.walk(method.node):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if (
                            isinstance(tgt, ast.Attribute)
                            and "lock" in tgt.attr.lower()
                        ):
                            return True
        return False

    def _check_captured(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        reported: Set[str] = set()
        for target_fid in sorted(graph.thread_targets):
            fn = project.functions.get(target_fid)
            if fn is None or not _in_repro(fn.module):
                continue
            mod = project.modules.get(fn.module)
            locals_ = _local_names(fn.node)
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                base = _base_name(node.func.value)
                if base is None or base in locals_:
                    continue
                if mod is not None and base in mod.imports:
                    continue  # call into another module, not a shared object
                for method in project.methods_by_name.get(node.func.attr, []):
                    if not _in_repro(method.module):
                        continue
                    if method.name in self._PRE_SHARE:
                        continue
                    klass = project.classes.get(
                        f"{method.module}.{method.class_name}"
                    )
                    if klass is None or self._class_has_lock(klass):
                        continue
                    mutations = self._unlocked_self_mutations(method)
                    key = f"{method.fid}"
                    if not mutations or key in reported:
                        continue
                    reported.add(key)
                    method_mod = project.modules.get(method.module)
                    rel = method_mod.ctx.rel if method_mod else method.module
                    yield self.at(
                        rel,
                        mutations[0],
                        f"`{method.qualname}` mutates instance state with no "
                        f"lock, and thread target `{fn.qualname}` "
                        f"({fn.module}) calls `.{node.func.attr}()` on a "
                        f"shared (captured) object: add an internal "
                        "threading.Lock around the mutation",
                    )


# ---------------------------------------------------------------------------
# QL102 — unpicklable members crossing the process boundary
# ---------------------------------------------------------------------------


class PickleBoundaryRule(ProjectRule):
    """Objects shipped to worker processes must survive pickling.

    ``run_ensemble(executor="process")`` and the campaign's subprocess
    workers round-trip task payloads through ``pickle``; an object whose
    class binds a file handle, lock, or thread pool to ``self`` (without
    ``__getstate__``/``__reduce__``) fails at dispatch time — or worse,
    at the first checkpoint, hours in.
    """

    code = "QL102"
    name = "pickle-boundary"
    severity = "error"
    description = "unpicklable members cross a process/pickle boundary"

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        for fn in project.functions.values():
            if not _in_repro(fn.module):
                continue
            mod = project.modules.get(fn.module)
            if mod is None:
                continue
            local = self._local_assigns(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                payload = self._payload_expr(node)
                if payload is None:
                    continue
                # chase one local-assignment hop: run_tasks(fn, payloads)
                if isinstance(payload, ast.Name) and payload.id in local:
                    payload = local[payload.id]
                yield from self._scan_payload(project, mod, fn, payload)

    def _payload_expr(self, call: ast.Call) -> Optional[ast.AST]:
        name = call_name(call)
        dotted = dotted_name(call.func)
        if name in ("dump", "dumps") and dotted.startswith("pickle."):
            return call.args[0] if call.args else None
        if name == "run_tasks":
            return call.args[1] if len(call.args) > 1 else None
        if name == "run_subprocess_task":
            return call.args[0] if call.args else None
        return None

    def _local_assigns(self, fn_node: ast.AST) -> Dict[str, ast.expr]:
        out: Dict[str, ast.expr] = {}
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        out[tgt.id] = node.value
        return out

    def _scan_payload(
        self,
        project: Project,
        mod: ModuleInfo,
        fn: FunctionInfo,
        payload: ast.AST,
    ) -> Iterator[Violation]:
        for node in ast.walk(payload):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            resolved = project.resolve(mod.name, dotted)
            klass = project.classes.get(resolved) if resolved else None
            if klass is None:
                continue
            problems = unpicklable_members(klass, project)
            if not problems:
                continue
            member, why = problems[0]
            yield self.at(
                mod.ctx.rel,
                node,
                f"`{klass.name}` instance crosses a pickle boundary in "
                f"`{fn.qualname}` but `.{member}` holds {why}: drop it in "
                "__getstate__ and rebuild in __setstate__",
            )


# ---------------------------------------------------------------------------
# QL103 — durable-write discipline in persistence modules (per-file)
# ---------------------------------------------------------------------------


class DurableWriteRule(_RuleBase):
    """Journal/manifest/checkpoint writes must flush+fsync or os.replace.

    The campaign layers promise that a SIGKILL loses at most the record
    being written. That promise is only as good as every write site:
    a ``with open(...,"w")`` that neither fsyncs nor goes through the
    tmp-file + ``os.replace`` dance leaves torn files after a crash.
    """

    code = "QL103"
    name = "durable-write"
    severity = "error"
    description = "persistence write without flush+fsync or os.replace"

    _SCOPE_TOKENS = ("campaign", "telemetry", "checkpoint", "manifest", "journal")
    _WRITE_MODES = ("w", "a", "x")

    def _in_scope(self, ctx: FileContext) -> bool:
        parts = ctx.rel.split("/")
        if "tests" in parts:
            return False
        return any(tok in part for part in parts for tok in self._SCOPE_TOKENS)

    def _write_mode_open(self, node: ast.AST) -> bool:
        if not (isinstance(node, ast.Call) and call_name(node) == "open"):
            return False
        # builtin open(path, mode) vs Path.open(mode): the mode argument
        # sits one slot earlier on the method form
        mode_slot = 0 if isinstance(node.func, ast.Attribute) else 1
        mode: Optional[ast.AST] = (
            node.args[mode_slot] if len(node.args) > mode_slot else None
        )
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
            return False  # default mode is read
        return any(mode.value.startswith(m) for m in self._WRITE_MODES)

    def _durable(self, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "fsync":
                return True
            if name == "replace":
                holder = dotted_name(node.func)
                if holder.startswith("os.") or holder == "replace":
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_scope(ctx):
            return
        for fn in _functions(ctx.tree):
            durable = self._durable(fn)
            for node in _iter_scope(fn.body):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if self._write_mode_open(item.context_expr) and not durable:
                            yield self.violation(
                                ctx,
                                item.context_expr,
                                f"`{fn.name}` writes a persistence file with "
                                "neither flush+fsync nor tmp+os.replace: a "
                                "crash here leaves a torn file",
                            )
        # lazily-opened handles: self._fh = open(...) — the class must
        # fsync somewhere (close()/flush path) to honour the promise
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._durable(node):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign):
                    continue
                if not self._write_mode_open(sub.value):
                    continue
                if any(
                    isinstance(t, ast.Attribute) and _base_name(t) == "self"
                    for t in sub.targets
                ):
                    yield self.violation(
                        ctx,
                        sub,
                        f"class `{node.name}` holds a write-mode file handle "
                        "but never fsyncs: close()/flush must flush+fsync "
                        "so a crash loses at most the current line",
                    )


# ---------------------------------------------------------------------------
# QL104 — seed provenance along the call graph
# ---------------------------------------------------------------------------


class SeedProvenanceRule(ProjectRule):
    """Every Generator must be seeded from SimulationConfig lineage.

    A literal seed, wall-clock/pid entropy, or seed *arithmetic*
    (``base_seed + chain``) silently detaches worker streams from the
    configured seed — the class of bug ``SeedSequence.spawn`` exists to
    prevent. The classifier only fires on provable breaks; unknown
    provenance is trusted, and bare parameters are checked one hop up
    the call graph at each call site.
    """

    code = "QL104"
    name = "seed-provenance"
    severity = "error"
    description = "Generator seeded outside SimulationConfig lineage"

    _MESSAGES = {
        LITERAL: (
            "Generator seeded with a literal: derive the seed from "
            "SimulationConfig.seed via SeedSequence.spawn"
        ),
        NONDERIVED: (
            "Generator seeded from ambient entropy (time/pid/hash): "
            "runs become unreproducible — derive from "
            "SimulationConfig.seed"
        ),
        ARITHMETIC: (
            "seed arithmetic (seed ± offset) breaks stream "
            "independence: use SeedSequence(seed).spawn(n) instead"
        ),
    }

    def _allowed(self, rel: str) -> bool:
        parts = rel.split("/")
        return (
            "tests" in parts
            or "benchmarks" in parts
            or "examples" in parts
            or parts[-1] in ("cli.py", "conftest.py")
        )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        for fn in project.functions.values():
            if not _in_repro(fn.module):
                continue
            mod = project.modules.get(fn.module)
            if mod is None or self._allowed(mod.ctx.rel):
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node) != "default_rng":
                    continue
                seed_expr = node.args[0] if node.args else None
                for kw in node.keywords:
                    if kw.arg == "seed":
                        seed_expr = kw.value
                if seed_expr is None:
                    continue  # unseeded: QL002's finding
                verdict = classify_seed_expr(seed_expr, fn.node)
                if verdict in self._MESSAGES:
                    yield self.at(mod.ctx.rel, node, self._MESSAGES[verdict])
                elif verdict == UNKNOWN and isinstance(seed_expr, ast.Name):
                    yield from self._check_callers(
                        project, graph, fn, node, seed_expr.id
                    )

    def _check_callers(
        self,
        project: Project,
        graph: CallGraph,
        fn: FunctionInfo,
        rng_call: ast.Call,
        param: str,
    ) -> Iterator[Violation]:
        for caller_fid in sorted(graph.callers_of(fn.fid)):
            caller = project.functions.get(caller_fid)
            if caller is None:
                continue
            caller_mod = project.modules.get(caller.module)
            if caller_mod is None or self._allowed(caller_mod.ctx.rel):
                continue
            for node in ast.walk(caller.node):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node) != fn.name:
                    continue
                arg = call_argument_for(node, fn.node, param)
                if arg is None:
                    continue
                verdict = classify_seed_expr(arg, caller.node)
                if verdict in self._MESSAGES:
                    yield self.at(
                        caller_mod.ctx.rel,
                        node,
                        f"call into `{fn.qualname}` seeds its Generator "
                        f"here: {self._MESSAGES[verdict]}",
                    )


# ---------------------------------------------------------------------------
# QL105 — flop-ledger reachability from the sweep
# ---------------------------------------------------------------------------


class LedgerReachabilityRule(ProjectRule):
    """Kernels the sweep can reach must sit under a recording path.

    QL004 checks each kernel file locally; this closes the gap it cannot
    see — a heavy-linalg function *reachable from the sweep* where no
    function on any path (itself included) calls ``flops.record``. Such
    a kernel contributes wall-clock but no nominal flops, silently
    deflating every GFLOPS figure downstream.
    """

    code = "QL105"
    name = "ledger-reachability"
    severity = "warning"
    description = "sweep-reachable kernel with no flops.record on any path"

    # "stats" rides along: the streaming accumulators run inside the
    # measurement path of every sweep, so a heavy-linalg call sneaking
    # in there would deflate the GFLOPS ledger just like a core kernel.
    # "hamiltonian" holds the structured kinetic applies (checkerboard
    # bond-group rotations) that replace dense GEMMs on the wrap and
    # cluster paths — skipping them would hide exactly the work the
    # fast path is supposed to account for.
    _KERNEL_DIRS = {"linalg", "core", "gpu", "backends", "stats", "hamiltonian"}
    # "matmul" catches the function-call spelling of batched matrix
    # products (np.matmul / cp.matmul), which the blocked checkerboard
    # applies use instead of the `@` operator.
    _HEAVY_CALLS = {"qr", "solve", "lu_factor", "lu_solve", "svd", "matmul"}

    def _is_heavy(self, fn: FunctionInfo) -> bool:
        for node in _iter_scope(
            fn.node.body if hasattr(fn.node, "body") else []
        ):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.MatMult
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and call_name(node) in self._HEAVY_CALLS
            ):
                return True
        return False

    def _records(self, fn: FunctionInfo) -> bool:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "record" and dotted_name(func.value).endswith(
                    "flops"
                ):
                    return True
                if func.attr.startswith("_record"):
                    return True
            elif isinstance(func, ast.Name) and func.id == "record":
                return True
        return False

    def _in_kernel_dir(self, module: str) -> bool:
        parts = module.split(".")
        return (
            _in_repro(module)
            and bool(self._KERNEL_DIRS.intersection(parts))
            and parts[-1] != "flops"
        )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        roots = {
            fn.fid
            for fn in project.functions.values()
            if fn.module.startswith("repro.dqmc.sweep")
        }
        if not roots:
            return
        reach = graph.reachable_from(roots)
        gates = {
            fid
            for fid in reach
            if fid in project.functions and self._records(project.functions[fid])
        }
        covered = gates | graph.reachable_from(gates)
        for fid in sorted(reach - covered):
            fn = project.functions.get(fid)
            if fn is None or not self._in_kernel_dir(fn.module):
                continue
            if not self._is_heavy(fn):
                continue
            mod = project.modules.get(fn.module)
            if mod is None:
                continue
            yield self.at(
                mod.ctx.rel,
                fn.node,
                f"`{fn.qualname}` does heavy linalg, is reachable from the "
                "sweep, and no call path through it records flops: the "
                "GFLOPS ledger undercounts (add flops.record or record in "
                "a caller)",
            )


CONCURRENCY_RULES = (
    SharedStateRule(),
    PickleBoundaryRule(),
    DurableWriteRule(),
    SeedProvenanceRule(),
    LedgerReachabilityRule(),
)
