#!/usr/bin/env python
"""Multilayer interface magnetism — the workload the paper enables.

The paper's introduction motivates the entire engineering effort with
interface physics: six to eight coupled Hubbard planes need N ~ 1000
sites before the in-plane extent comfortably exceeds the stack height.
This example runs a stack of coupled planes, measures layer-resolved
observables, and shows how the inter-layer coupling t_perp transfers
antiferromagnetic correlations across the interface.

(At example scale the stack is small; pass --lx/--layers to grow it
toward the paper's eight-12x12-layer target if you have the minutes.)

Usage:
    python examples/multilayer_interface.py [--lx 3] [--layers 3]
        [--tperp 0.0 0.5 1.0] [--sweeps 60]
"""

import argparse

import numpy as np

from repro import HubbardModel, MultilayerLattice, Simulation
from repro.core import GreensFunctionEngine
from repro.dqmc import sweep
from repro.hamiltonian import BMatrixFactory, HSField
from repro.measure import density_per_spin


def layer_moments(lattice, g_up, g_dn):
    """Per-layer mean local moment <m_z^2> = <n> - 2<n+ n->."""
    n_up = density_per_spin(g_up)
    n_dn = density_per_spin(g_dn)
    m2 = n_up + n_dn - 2 * n_up * n_dn
    return [float(m2[lattice.layer_sites(z)].mean()) for z in range(lattice.n_layers)]


def interlayer_czz(lattice, g_up, g_dn):
    """<m_z(r, z) m_z(r, z+1)> averaged over in-plane positions r."""
    n_up = density_per_spin(g_up)
    n_dn = density_per_spin(g_dn)
    m = n_up - n_dn
    total = 0.0
    count = 0
    npl = lattice.sites_per_layer
    for z in range(lattice.n_layers - 1):
        a = lattice.layer_sites(z)
        b = a + npl
        # disconnected part + same-spin contractions across the bond
        for i, j in zip(a, b):
            val = m[i] * m[j]
            for g in (g_up, g_dn):
                val -= g[j, i] * g[i, j]
            total += val
            count += 1
    return total / count


def run_stack(lx, ly, layers, t_perp, beta, sweeps, seed):
    lattice = MultilayerLattice(lx, ly, layers)
    n_slices = max(8, int(round(beta / 0.125 / 8)) * 8)
    model = HubbardModel(
        lattice, u=4.0, t_perp=t_perp, beta=beta, n_slices=n_slices
    )
    factory = BMatrixFactory(model)
    rng = np.random.default_rng(seed)
    field = HSField.random(n_slices, model.n_sites, rng)
    engine = GreensFunctionEngine(factory, field, cluster_size=8)

    moments = []
    cross = []
    for s in range(sweeps):
        sweep(engine, rng)
        if s >= sweeps // 3:  # skip warmup
            g_up = engine.boundary_greens(1, 0)
            g_dn = engine.boundary_greens(-1, 0)
            moments.append(layer_moments(lattice, g_up, g_dn))
            cross.append(interlayer_czz(lattice, g_up, g_dn))
    return (
        np.mean(moments, axis=0),
        float(np.mean(cross)),
        lattice,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lx", type=int, default=3)
    parser.add_argument("--ly", type=int, default=3)
    parser.add_argument("--layers", type=int, default=3)
    parser.add_argument("--tperp", type=float, nargs="+", default=[0.0, 0.5, 1.0])
    parser.add_argument("--beta", type=float, default=2.0)
    parser.add_argument("--sweeps", type=int, default=60)
    args = parser.parse_args()

    print(
        f"stack: {args.layers} layers of {args.lx}x{args.ly} "
        f"(N = {args.lx * args.ly * args.layers}), U = 4, beta = {args.beta}"
    )
    lattice = MultilayerLattice(args.lx, args.ly, args.layers)
    print(
        f"aspect ratio (plane extent / stack height): "
        f"{lattice.aspect_ratio():.2f}  "
        f"(paper: 8x8x8 = 1.0 'barely sufficient', 12x12x8 = 1.5 target)\n"
    )

    print(f"{'t_perp':>8}  {'per-layer <m_z^2>':>40}  {'interlayer C_zz':>16}")
    for tp in args.tperp:
        m, c, _ = run_stack(
            args.lx, args.ly, args.layers, tp, args.beta, args.sweeps, seed=11
        )
        layers_txt = " ".join(f"{v:.3f}" for v in m)
        print(f"{tp:8.2f}  {layers_txt:>40}  {c:16.4f}")

    print(
        "\nexpected trend: t_perp = 0 gives uncorrelated layers "
        "(interlayer C_zz ~ 0); switching t_perp on couples the planes "
        "antiferromagnetically (C_zz < 0 across the interface)."
    )


if __name__ == "__main__":
    main()
