#!/usr/bin/env python
"""GPU offload walkthrough (paper Sec. VI, on the simulated device).

Demonstrates the offload layer end to end:

1. builds the same Green's function once on the CPU engine and once on
   the hybrid CPU+GPU engine, checks they agree to machine precision;
2. contrasts the plain CUBLAS listings (Algorithm 4/6: a kernel launch
   per matrix row) against the fused custom kernels (Algorithm 5/7: one
   launch per scaling) on launch counts and modelled time;
3. reports the transfer ledger — the reason clustering offloads so well
   (N*L floats up + N^2 down per k-slice product) while wrapping pays a
   full G round trip per slice.

All numerics execute for real; GPU *timings* come from the calibrated
Tesla C2050 model documented in DESIGN.md.

Usage:
    python examples/gpu_offload.py [--size 8] [--slices 40]
"""

import argparse

import numpy as np

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine
from repro.gpu import GPUPropagatorOps, HybridGreensEngine, SimulatedDevice


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=8)
    parser.add_argument("--slices", type=int, default=40)
    args = parser.parse_args()

    lattice = SquareLattice(args.size, args.size)
    model = HubbardModel(
        lattice, u=4.0, beta=args.slices * 0.125, n_slices=args.slices
    )
    rng = np.random.default_rng(0)
    field = HSField.random(args.slices, model.n_sites, rng)
    factory = BMatrixFactory(model)
    n = model.n_sites

    # 1. numerical equivalence ------------------------------------------------
    cpu = GreensFunctionEngine(factory, field, cluster_size=10)
    hybrid = HybridGreensEngine(factory, field, cluster_size=10)
    g_cpu = cpu.boundary_greens(1, 0)
    g_gpu = hybrid.boundary_greens(1, 0)
    diff = np.linalg.norm(g_cpu - g_gpu) / np.linalg.norm(g_cpu)
    print(f"N = {n}, L = {args.slices}")
    print(f"CPU vs hybrid Green's function: relative difference {diff:.2e}")
    print(
        f"hybrid clocks: GPU {hybrid.gpu_seconds*1e3:.2f} ms (virtual), "
        f"CPU {hybrid.cpu_seconds*1e3:.2f} ms (measured)\n"
    )

    # 2. fused kernels vs per-row CUBLAS calls ----------------------------------
    vs = [field.v_diagonal(l, 1, factory.nu) for l in range(10)]
    print("one 10-slice cluster product (Algorithm 4):")
    print(f"{'variant':>10} {'kernel launches':>16} {'model time (ms)':>16}")
    for fused, label in ((False, "cublas"), (True, "fused")):
        dev = SimulatedDevice()
        ops = GPUPropagatorOps(dev, factory.expk, factory.inv_expk, fused=fused)
        before = dev.kernel_launches
        dev.reset_clock()
        ops.cluster_product(vs)
        print(
            f"{label:>10} {dev.kernel_launches - before:16d} "
            f"{dev.elapsed * 1e3:16.3f}"
        )
    print(
        "-> Algorithm 5 replaces the per-row dscal storm with one "
        "coalesced launch per scaling.\n"
    )

    # 3. the transfer ledger ----------------------------------------------------
    dev = SimulatedDevice()
    ops = GPUPropagatorOps(dev, factory.expk, factory.inv_expk)
    h0, d0 = dev.h2d_bytes, dev.d2h_bytes
    ops.cluster_product(vs)
    print("transfer ledger per operation (bytes):")
    print(
        f"{'cluster product':>16}: host->dev "
        f"{dev.h2d_bytes - h0:8d}  dev->host {dev.d2h_bytes - d0:8d}"
        f"   (= N*L*8 up, N^2*8 down)"
    )
    h0, d0 = dev.h2d_bytes, dev.d2h_bytes
    ops.wrap(g_cpu.copy(), vs[0])
    print(
        f"{'wrap':>16}: host->dev "
        f"{dev.h2d_bytes - h0:8d}  dev->host {dev.d2h_bytes - d0:8d}"
        f"   (= (N^2+N)*8 up, N^2*8 down)"
    )
    print(
        "\n-> clustering amortizes one transfer over k GEMMs; wrapping "
        "round-trips G every call — the gap between the two curves of "
        "the paper's Fig 9."
    )


if __name__ == "__main__":
    main()
