#!/usr/bin/env python
"""Bulk-limit extrapolation of the AF correlation (paper Sec. V-A).

The paper: "the correlation function at the longest distance
C_zz(Lx/2, Ly/2) will need to be measured on different lattice sizes.
The results are then extrapolated to the N -> infinity limit to
determine the existence of the magnetic structure in the bulk limit."

This example performs exactly that workflow at example scale: ensemble
runs on a sequence of lattices, jackknife-free binned errors per size,
and the 1/L weighted fit whose intercept is the bulk order parameter
(squared). It also demonstrates the Trotter dtau -> 0 extrapolation on
the double occupancy.

Usage:
    python examples/extrapolation_study.py [--sizes 4 6 8] [--sweeps 60]
"""

import argparse

import numpy as np

from repro import HubbardModel, SquareLattice
from repro.dqmc import run_ensemble
from repro.lattice import SquareLattice as SL
from repro.measure import (
    extrapolate_finite_size,
    extrapolate_trotter,
    longest_distance_correlation,
)


def czz_longest(size: int, beta: float, sweeps: int) -> tuple:
    lat = SquareLattice(size, size)
    n_slices = max(8, int(round(beta / 0.125 / 8)) * 8)
    model = HubbardModel(lat, u=4.0, beta=beta, n_slices=n_slices)
    res = run_ensemble(
        model, n_chains=2, warmup_sweeps=max(8, sweeps // 4),
        measurement_sweeps=sweeps, cluster_size=8, base_seed=size,
    )
    czz = res.observables["spin_zz"]
    idx = lat.index(size // 2, size // 2)
    return float(np.asarray(czz.mean)[idx]), float(np.asarray(czz.error)[idx])


def docc_at_dtau(n_slices: int, beta: float, sweeps: int) -> tuple:
    model = HubbardModel(
        SL(4, 4), u=4.0, beta=beta, n_slices=n_slices
    )
    res = run_ensemble(
        model, n_chains=2, warmup_sweeps=max(8, sweeps // 4),
        measurement_sweeps=sweeps, cluster_size=n_slices // 4,
        base_seed=n_slices, measure_arrays=False,
    )
    d = res.observables["double_occupancy"]
    return float(d.mean), float(d.error)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[4, 6, 8])
    parser.add_argument("--beta", type=float, default=3.0)
    parser.add_argument("--sweeps", type=int, default=60)
    args = parser.parse_args()

    # ---- finite size: C_zz at the longest distance --------------------------
    print(f"finite-size study: C_zz(L/2, L/2) at U = 4, beta = {args.beta}")
    print(f"{'L':>4} {'C_zz(L/2,L/2)':>14} {'error':>9}")
    values, errors = [], []
    for size in args.sizes:
        v, e = czz_longest(size, args.beta, args.sweeps)
        values.append(v)
        errors.append(max(e, 1e-5))
        print(f"{size:>4} {v:14.5f} {errors[-1]:9.5f}")
    fit = extrapolate_finite_size(args.sizes, values, errors)
    print(f"\nbulk limit (1/L -> 0): {fit}")
    verdict = (
        "long-range AF order survives"
        if fit.value - 2 * fit.error > 0
        else "no resolvable bulk order at this temperature/statistics"
    )
    print(f"verdict at 2 sigma: {verdict}")

    # ---- Trotter: double occupancy vs dtau^2 ---------------------------------
    beta_t = 2.0
    print(f"\nTrotter study: <n+ n-> on 4x4 at U = 4, beta = {beta_t}")
    print(f"{'L':>4} {'dtau':>8} {'<n+n->':>10} {'error':>9}")
    dtaus, dvals, derrs = [], [], []
    for n_slices in (8, 16, 32):
        v, e = docc_at_dtau(n_slices, beta_t, args.sweeps)
        dtaus.append(beta_t / n_slices)
        dvals.append(v)
        derrs.append(max(e, 1e-5))
        print(f"{n_slices:>4} {dtaus[-1]:8.4f} {v:10.5f} {derrs[-1]:9.5f}")
    tfit = extrapolate_trotter(dtaus, dvals, derrs)
    print(f"\ncontinuum limit (dtau -> 0): {tfit}")
    print(
        "note: the dtau^2 slope is the systematic the paper's "
        "dtau = 0.2 production runs accept; quote the extrapolated value."
    )


if __name__ == "__main__":
    main()
