#!/usr/bin/env python
"""Quickstart: a small half-filled Hubbard simulation, start to finish.

Runs DQMC on a 4x4 lattice at U = 4, beta = 4 with all of the paper's
machinery on its defaults (pre-pivoted stratification, k = l = 10
clustering/wrapping, delayed updates), prints the scalar observables
with error bars, and shows the per-phase time profile (the Table I
breakdown).

Usage:
    python examples/quickstart.py [--size 4] [--u 4.0] [--sweeps 200]
"""

import argparse

from repro import HubbardModel, Simulation, SquareLattice


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=4, help="linear lattice size")
    parser.add_argument("--u", type=float, default=4.0, help="on-site repulsion U/t")
    parser.add_argument("--beta", type=float, default=4.0, help="inverse temperature")
    parser.add_argument("--sweeps", type=int, default=200, help="measurement sweeps")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    lattice = SquareLattice(args.size, args.size)
    n_slices = max(10, int(round(args.beta / 0.125 / 10)) * 10)
    model = HubbardModel(
        lattice, u=args.u, beta=args.beta, n_slices=n_slices
    )
    print(f"model: {lattice}, U = {args.u}, beta = {args.beta}, "
          f"L = {n_slices} (dtau = {model.dtau:.4f})")

    sim = Simulation(model, seed=args.seed, cluster_size=10)
    result = sim.run(
        warmup_sweeps=max(20, args.sweeps // 4),
        measurement_sweeps=args.sweeps,
    )

    print()
    print(result.summary())
    print()
    print("time profile (paper Table I):")
    print(result.profiler.report())

    # a couple of derived physics numbers
    obs = result.observables
    docc = obs["double_occupancy"]
    moment = float(obs["spin_zz"].mean[0])
    print()
    print(f"local moment <m_z^2>     {moment:.4f}  (U = 0 value: 0.5)")
    print(f"double occupancy         {docc}  (U = 0 value: 0.25)")


if __name__ == "__main__":
    main()
