#!/usr/bin/env python
"""Dynamic observables: imaginary-time Green's functions and the
Fermi-level spectral weight (the "dynamic" measurements QUEST offers).

Computes the time-displaced Green's function G(k, tau) with the stable
two-chain inversion, then the standard gaplessness diagnostic
``beta * G(k, beta/2)``: large where the spectrum is gapless (on the
Fermi surface), exponentially small where it is gapped. At U = 0 the
result is exact and analytic; switching on U shows the correlated
Fermi surface the paper's Fig 5 narrative is about.

Usage:
    python examples/dynamic_response.py [--size 4] [--u 2.0] [--samples 8]
"""

import argparse

import numpy as np

from repro import (
    BMatrixFactory,
    HSField,
    HubbardModel,
    SquareLattice,
    momentum_grid,
    symmetry_path,
)
from repro.core import GreensFunctionEngine, displaced_greens
from repro.dqmc import sweep
from repro.hamiltonian import free_dispersion_2d
from repro.measure import momentum_greens_tau, spectral_weight_proxy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=4)
    parser.add_argument("--u", type=float, default=2.0)
    parser.add_argument("--beta", type=float, default=4.0)
    parser.add_argument("--samples", type=int, default=8)
    args = parser.parse_args()

    lattice = SquareLattice(args.size, args.size)
    n_slices = max(8, int(round(args.beta / 0.125 / 8)) * 8)
    model = HubbardModel(lattice, u=args.u, beta=args.beta, n_slices=n_slices)
    factory = BMatrixFactory(model)
    rng = np.random.default_rng(1)
    field = HSField.random(n_slices, model.n_sites, rng)
    engine = GreensFunctionEngine(factory, field, cluster_size=8)

    print(
        f"{lattice}, U = {args.u}, beta = {args.beta}, L = {n_slices}; "
        f"{args.samples} decorrelated samples of G(k, beta/2)"
    )

    # thermalize, then sample the displaced function mid-interval
    for _ in range(10):
        sweep(engine, rng)
    l_half = n_slices // 2 - 1
    proxy = np.zeros(model.n_sites)
    gk_tau = []
    for _ in range(args.samples):
        for _ in range(3):
            sweep(engine, rng)
        sample = np.zeros(model.n_sites)
        for sigma in (1, -1):
            g_half = displaced_greens(factory, field, sigma, l_half)
            sample += 0.5 * spectral_weight_proxy(
                lattice, g_half, model.beta
            )
        proxy += sample
        gk_tau.append(sample / model.beta)
    proxy /= args.samples

    # print along the symmetry path, with the U = 0 analytic reference
    idx, arc, kpts = symmetry_path(lattice)
    k = momentum_grid(lattice.lx, lattice.ly)
    eps = free_dispersion_2d(k[:, 0], k[:, 1])
    f = 1.0 / (1.0 + np.exp(args.beta * eps))
    free_proxy = args.beta * np.exp(-args.beta / 2 * eps) * (1.0 - f)

    print(f"\n{'k':>16} {'beta*G(k,b/2)':>14} {'U=0 exact':>12}")
    for j in range(len(idx)):
        kx, ky = kpts[j]
        print(
            f"({kx:+.2f},{ky:+.2f})".rjust(16)
            + f" {proxy[idx[j]]:14.4f} {free_proxy[idx[j]]:12.4f}"
        )

    fs = lattice.index(args.size // 2, 0)  # (pi, 0): on the Fermi surface
    gap = lattice.index(args.size // 2, args.size // 2)  # (pi, pi)
    print(
        f"\nFermi surface marker: beta*G((pi,0), beta/2) = {proxy[fs]:.3f} "
        f"(gapless ~ O(1))"
    )
    print(
        f"band edge:            beta*G((pi,pi), beta/2) = {proxy[gap]:.4f} "
        f"(gapped ~ 0)"
    )


if __name__ == "__main__":
    main()
