#!/usr/bin/env python
"""Momentum distribution and Fermi surface (paper Figs 5-6, scaled down).

Simulates the half-filled U = 2 Hubbard model on a sequence of lattice
sizes, then renders ASCII versions of the paper's two momentum-space
plots:

* <n_k> along the high-symmetry path (0,0) -> (pi,pi) -> (pi,0) -> (0,0),
  one curve per lattice size — watch the Fermi-surface step sharpen and
  the k-resolution grow;
* the full Brillouin-zone map of <n_k> for the largest lattice, where
  the dark/bright boundary is the Fermi surface.

Usage:
    python examples/fermi_surface.py [--sizes 4 6 8] [--beta 4] [--sweeps 40]
"""

import argparse

import numpy as np

from repro import HubbardModel, Simulation, SquareLattice, symmetry_path
from repro.lattice import BrillouinZone


def run_one(size: int, beta: float, sweeps: int, seed: int) -> np.ndarray:
    lattice = SquareLattice(size, size)
    n_slices = max(8, int(round(beta / 0.125 / 8)) * 8)
    model = HubbardModel(lattice, u=2.0, beta=beta, n_slices=n_slices)
    sim = Simulation(model, seed=seed, cluster_size=8)
    res = sim.run(warmup_sweeps=max(10, sweeps // 3), measurement_sweeps=sweeps)
    return np.asarray(res.observables["momentum_distribution"].mean)


def ascii_curve(arc, values, width=60) -> str:
    """Render (arc, values) as a crude character plot, one row per point."""
    lines = []
    for a, v in zip(arc, values):
        pos = int(np.clip(v, 0, 1) * (width - 1))
        line = [" "] * width
        line[pos] = "*"
        lines.append(f"{a:6.2f} |" + "".join(line) + f"| {v:.3f}")
    return "\n".join(lines)


def ascii_map(lat: SquareLattice, nk: np.ndarray) -> str:
    """Brillouin-zone occupancy map; '#' filled ... '.' empty."""
    shades = " .:-=+*#%@"
    bz = BrillouinZone(lat)
    grid = bz.grid_values(nk)
    rows = []
    for i in range(grid.shape[0]):
        row = "".join(
            shades[int(np.clip(grid[i, j], 0, 0.999) * len(shades))]
            for j in range(grid.shape[1])
        )
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[4, 6, 8])
    parser.add_argument("--beta", type=float, default=4.0)
    parser.add_argument("--sweeps", type=int, default=40)
    args = parser.parse_args()

    results = {}
    for size in args.sizes:
        print(f"running {size}x{size} ...")
        results[size] = run_one(size, args.beta, args.sweeps, seed=size)

    print("\n<n_k> along (0,0) -> (pi,pi) -> (pi,0) -> (0,0)")
    print("(x axis: occupancy 0..1; paper Fig 5)\n")
    for size, nk in results.items():
        lat = SquareLattice(size, size)
        idx, arc, _ = symmetry_path(lat)
        print(f"--- {size}x{size} ({len(idx)} path momenta)")
        print(ascii_curve(arc, nk[idx]))
        print()

    biggest = max(results)
    lat = SquareLattice(biggest, biggest)
    print(f"Brillouin-zone occupancy map, {biggest}x{biggest} (paper Fig 6)")
    print("('@' = filled states inside the Fermi surface, ' ' = empty)\n")
    print(ascii_map(lat, results[biggest]))

    # quantify the Fermi surface: sharpest drop along the nodal direction
    nk = results[biggest]
    nodal = [nk[lat.index(m, m)] for m in range(biggest // 2 + 1)]
    drop = max(
        (a - b, m) for m, (a, b) in enumerate(zip(nodal, nodal[1:]))
    )
    k_fs = (drop[1] + 0.5) * 2 * np.pi / biggest
    print(
        f"\nsharpest nodal drop of {drop[0]:.3f} around k ~ "
        f"({k_fs:.2f}, {k_fs:.2f}) — the Fermi surface "
        f"(free-electron value: pi/2 = {np.pi/2:.2f})"
    )


if __name__ == "__main__":
    main()
