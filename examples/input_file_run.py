#!/usr/bin/env python
"""Drive a simulation from a QUEST-style input file (paper Sec. I).

QUEST configures everything through a plain-text input file; so does
this package. The example writes a sample file, parses it, runs the
configured simulation, and archives the observables to a portable .npz
next to the input.

Usage:
    python examples/input_file_run.py [path/to/run.in]
"""

import sys
import tempfile
from pathlib import Path

from repro import load_config
from repro.io import load_observables, save_observables

SAMPLE = """\
# sample DQMC input (QUEST-style): half-filled 4x4 plane at U = 4
nx     = 4
ny     = 4
u      = 4.0
mu     = 0.0
dtau   = 0.125
l      = 32          # beta = l * dtau = 4
north  = 8           # cluster size k (and the wrap count)
ndelay = 32          # delayed-update block size
method = prepivot    # the paper's Algorithm 3
nwarm  = 30
npass  = 100
nmeas  = 2           # measurements per sweep
seed   = 2012
"""


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.mkdtemp()) / "run.in"
        path.write_text(SAMPLE)
        print(f"wrote sample input to {path}\n{SAMPLE}")

    cfg = load_config(path)
    print(
        f"parsed: {cfg.nx}x{cfg.ny}"
        + (f"x{cfg.nlayers}" if cfg.nlayers > 1 else "")
        + f", U = {cfg.u}, beta = {cfg.beta:g}, L = {cfg.l}, "
        f"method = {cfg.method}"
    )

    sim = cfg.simulation()
    result = sim.run(warmup_sweeps=cfg.nwarm, measurement_sweeps=cfg.npass)
    print()
    print(result.summary())

    out = path.with_suffix(".npz")
    save_observables(
        out,
        result.observables,
        metadata={
            "input": cfg.dumps(),
            "acceptance": result.sweep_stats.acceptance_rate,
        },
    )
    print(f"\narchived observables -> {out}")

    loaded, meta = load_observables(out)
    print(
        f"round-trip check: {len(loaded)} observables, "
        f"acceptance {meta['acceptance']:.3f}"
    )


if __name__ == "__main__":
    main()
