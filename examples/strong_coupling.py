#!/usr/bin/env python
"""Strong-coupling toolkit: grading diagnostics + global worldline flips.

At large beta*U two separate things get hard, and this example shows the
tool for each:

1. **Numerics** — the propagator chain's graded spectrum explodes; the
   conditioning report (`repro.linalg.chain_conditioning_report`) bounds
   how many slices one cluster may safely absorb, and
   ``engine.grading_profile()`` shows the actual measured spectrum the
   stratification is taming.

2. **Sampling** — the HS field develops stiff worldlines that local
   flips cross exponentially slowly. Starting *deliberately* from the
   worst case (a fully ordered field), the example races local-only
   sweeps against local + global worldline flips and prints how fast
   each relaxes the field's uniform magnetization toward equilibrium
   (~0 at these temperatures).

Usage:
    python examples/strong_coupling.py [--u 8] [--beta 4] [--sweeps 30]
"""

import argparse

import numpy as np

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine
from repro.dqmc import sweep
from repro.dqmc.global_moves import GlobalMoveStats, global_site_flips
from repro.linalg import chain_conditioning_report


def field_polarization(field: HSField) -> float:
    """|mean(h)| — 1.0 for the ordered start, ~0 in equilibrium."""
    return float(abs(field.h.mean()))


def relax(model, use_global: bool, sweeps: int, seed: int):
    rng = np.random.default_rng(seed)
    field = HSField.ordered(model.n_slices, model.n_sites)  # worst start
    factory = BMatrixFactory(model)
    engine = GreensFunctionEngine(factory, field, cluster_size=8)
    gstats = GlobalMoveStats()
    sign = engine.configuration_sign()
    trace = [field_polarization(field)]
    for _ in range(sweeps):
        st = sweep(engine, rng, start_sign=sign)
        sign = st.sign
        if use_global:
            gs, sign = global_site_flips(
                engine, rng, n_proposals=model.n_sites // 4, start_sign=sign
            )
            gstats.merge(gs)
        trace.append(field_polarization(field))
    return trace, gstats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--u", type=float, default=8.0)
    parser.add_argument("--beta", type=float, default=4.0)
    parser.add_argument("--size", type=int, default=4)
    parser.add_argument("--sweeps", type=int, default=30)
    args = parser.parse_args()

    n_slices = max(8, int(round(args.beta / 0.125 / 8)) * 8)
    model = HubbardModel(
        SquareLattice(args.size, args.size), u=args.u,
        beta=args.beta, n_slices=n_slices,
    )

    # 1. numerics report
    rep = chain_conditioning_report(model)
    print(f"U = {args.u}, beta = {args.beta}, L = {n_slices}")
    print(f"conditioning: {rep.describe()}")
    factory = BMatrixFactory(model)
    field = HSField.random(n_slices, model.n_sites, np.random.default_rng(0))
    engine = GreensFunctionEngine(factory, field,
                                  cluster_size=rep.suggested_cluster_size
                                  if n_slices % rep.suggested_cluster_size == 0
                                  else 8)
    d = engine.grading_profile(1)
    print(
        f"measured chain grading: |D| spans {d[0]:.3e} .. {d[-1]:.3e} "
        f"(ratio {d[0]/d[-1]:.2e})\n"
    )

    # 2. ergodicity race from the ordered start
    print(f"relaxation of |mean(h)| from the ordered field, {args.sweeps} sweeps:")
    trace_local, _ = relax(model, use_global=False, sweeps=args.sweeps, seed=1)
    trace_global, gstats = relax(model, use_global=True, sweeps=args.sweeps, seed=1)
    print(f"{'sweep':>6} {'local only':>12} {'+ global flips':>15}")
    step = max(1, args.sweeps // 10)
    for s in range(0, args.sweeps + 1, step):
        print(f"{s:>6} {trace_local[s]:>12.3f} {trace_global[s]:>15.3f}")
    print(
        f"\nglobal flips: {gstats.accepted}/{gstats.proposed} accepted "
        f"({100*gstats.acceptance_rate:.0f}%)"
    )
    print(
        "-> with worldline flips available, the ordered start decays "
        "toward the disordered equilibrium in a handful of sweeps."
    )


if __name__ == "__main__":
    main()
