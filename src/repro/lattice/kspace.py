"""Momentum-space machinery: allowed momenta, symmetry paths, transforms.

The paper's Figs 5-6 plot the momentum distribution of a periodic
rectangular lattice along the high-symmetry path

    (0,0) -> (pi,pi) -> (pi,0) -> (0,0)

and as a full Brillouin-zone contour map. Allowed momenta of an lx x ly
periodic lattice are ``k = 2*pi*(nx/lx, ny/ly)``; this module enumerates
them, walks symmetry paths through the ones actually present at a given
size, and Fourier-transforms real-space two-point functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .square import SquareLattice

__all__ = [
    "BrillouinZone",
    "momentum_grid",
    "symmetry_path",
    "fourier_two_point",
    "SYMMETRY_CORNERS",
]

# The path the paper plots, as fractions of (pi, pi).
SYMMETRY_CORNERS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (np.pi, np.pi),
    (np.pi, 0.0),
    (0.0, 0.0),
)


def momentum_grid(lx: int, ly: int) -> np.ndarray:
    """All allowed momenta of an lx x ly periodic lattice.

    Returns an (lx*ly, 2) array ordered like site indices (kx fastest),
    with components folded into ``(-pi, pi]``.
    """
    nx = np.arange(lx)
    ny = np.arange(ly)
    kx = 2.0 * np.pi * nx / lx
    ky = 2.0 * np.pi * ny / ly
    kx = np.where(kx > np.pi, kx - 2.0 * np.pi, kx)
    ky = np.where(ky > np.pi, ky - 2.0 * np.pi, ky)
    kxg, kyg = np.meshgrid(kx, ky, indexing="xy")
    return np.stack([kxg.ravel(), kyg.ravel()], axis=1)


@dataclass(frozen=True)
class BrillouinZone:
    """Momentum bookkeeping for a :class:`SquareLattice`."""

    lattice: SquareLattice

    @property
    def momenta(self) -> np.ndarray:
        """(n_sites, 2) allowed momenta, indexed like sites."""
        return momentum_grid(self.lattice.lx, self.lattice.ly)

    def momentum_index(self, nx: int, ny: int) -> int:
        """Index of momentum ``2*pi*(nx/lx, ny/ly)`` (integers, wrapped)."""
        return self.lattice.index(nx, ny)

    def grid_values(self, values: np.ndarray) -> np.ndarray:
        """Reshape a site-indexed momentum array to an (ly, lx) grid whose
        axes run over monotonically increasing kx/ky in (-pi, pi].

        This is the layout contour plots (paper Fig 6) want.
        """
        lx, ly = self.lattice.lx, self.lattice.ly
        grid = np.asarray(values).reshape(ly, lx)
        # fftshift-style roll so the axes are monotone in folded momentum.
        grid = np.roll(grid, shift=-(lx // 2 + 1), axis=1)
        grid = np.roll(grid, shift=-(ly // 2 + 1), axis=0)
        return grid

    def grid_axes(self) -> Tuple[np.ndarray, np.ndarray]:
        """(kx_axis, ky_axis) matching :meth:`grid_values` ordering."""
        lx, ly = self.lattice.lx, self.lattice.ly
        kx = 2.0 * np.pi * np.arange(lx) / lx
        ky = 2.0 * np.pi * np.arange(ly) / ly
        kx = np.where(kx > np.pi, kx - 2.0 * np.pi, kx)
        ky = np.where(ky > np.pi, ky - 2.0 * np.pi, ky)
        return np.sort(kx), np.sort(ky)


def _on_segment(
    k: np.ndarray, a: Tuple[float, float], b: Tuple[float, float], tol: float
) -> bool:
    """Whether momentum k lies on the segment a->b (inclusive)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    ab = b - a
    ak = k - a
    cross = ab[0] * ak[1] - ab[1] * ak[0]
    if abs(cross) > tol:
        return False
    dot = float(ak @ ab)
    return -tol <= dot <= float(ab @ ab) + tol


def symmetry_path(
    lattice: SquareLattice,
    corners: Sequence[Tuple[float, float]] = SYMMETRY_CORNERS,
    tol: float = 1e-9,
) -> Tuple[List[int], np.ndarray, np.ndarray]:
    """Lattice momenta along a piecewise-linear path through the BZ.

    Walks each corner-to-corner segment and collects, in order of distance
    along the path, the allowed momenta lying on it. Duplicate consecutive
    points (segment endpoints) are dropped.

    Returns
    -------
    indices:
        Momentum (site) indices along the path.
    arclength:
        Cumulative distance along the path for each point — the natural
        x-axis of a Fig 5-style plot.
    kpoints:
        (len(indices), 2) momentum coordinates.
    """
    bz = BrillouinZone(lattice)
    # Work with momenta folded to [0, 2pi) equivalents as well, so a path
    # corner like (pi, pi) matches the folded representative (-pi, -pi)...
    # Simpler: compare against all periodic images in {-2pi, 0, 2pi}^2.
    momenta = bz.momenta
    shifts = np.array(
        [(sx, sy) for sx in (-2 * np.pi, 0, 2 * np.pi) for sy in (-2 * np.pi, 0, 2 * np.pi)]
    )

    indices: List[int] = []
    arc: List[float] = []
    kpts: List[np.ndarray] = []
    dist0 = 0.0
    for a, b in zip(corners[:-1], corners[1:]):
        a_arr = np.asarray(a, dtype=float)
        b_arr = np.asarray(b, dtype=float)
        seg_len = float(np.linalg.norm(b_arr - a_arr))
        hits: List[Tuple[float, int, np.ndarray]] = []
        for idx in range(momenta.shape[0]):
            for s in shifts:
                k = momenta[idx] + s
                if _on_segment(k, a, b, tol):
                    t = float(np.linalg.norm(k - a_arr))
                    hits.append((t, idx, k))
                    break
        hits.sort(key=lambda h: h[0])
        for t, idx, k in hits:
            if indices and indices[-1] == idx and abs(dist0 + t - arc[-1]) < tol:
                continue
            indices.append(idx)
            arc.append(dist0 + t)
            kpts.append(k)
        dist0 += seg_len
    return indices, np.asarray(arc), np.asarray(kpts)


def fourier_two_point(lattice: SquareLattice, c_real: np.ndarray) -> np.ndarray:
    """Fourier transform a translation-averaged two-point function.

    Given ``c_real[r] = (1/N) sum_{r'} <f(r') g(r' + r)>`` indexed by the
    displacement site index, returns ``c_k[q] = sum_r e^{-i q . r} c_real[r]``
    for every allowed momentum, indexed like sites. The result is returned
    as the real part (the input is a correlation of Hermitian observables,
    so the imaginary part is statistical noise) — callers needing the
    complex transform can use numpy's FFT directly.
    """
    lx, ly = lattice.lx, lattice.ly
    grid = np.asarray(c_real).reshape(ly, lx)
    # FFT convention: numpy's fft2 computes sum_r e^{-i 2pi (n.r/L)} f(r),
    # which matches c_k at momentum index (nx, ny).
    ck = np.fft.fft2(grid)
    return np.real(ck).ravel()
