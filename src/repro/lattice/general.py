"""Arbitrary lattice geometries from weighted bond lists.

QUEST's geometry is "very generally configurable through an input file"
(paper Sec. I); the rectangular torus is only the default. This class
covers the general case: any site count, any weighted bond list —
frustrated clusters, ladders, defects, irregular interfaces. It plugs
into :class:`~repro.HubbardModel` (which only needs ``n_sites`` and the
weighted ``adjacency``) and into every scalar observable.

Momentum-space observables (<n_k>, C_zz(r) maps) remain specific to the
translation-invariant lattices — a general graph has no Brillouin zone.

The bipartiteness test matters physically: the half-filled Hubbard model
is sign-problem-free only on bipartite hoppings; a frustrated geometry
(odd cycles) loses particle-hole symmetry and the average sign drops
below 1 — which the simulation handles (signed observables) but the
user should opt into knowingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import List, Sequence, Tuple, Union

import numpy as np

__all__ = ["GeneralLattice"]

Bond = Tuple[int, int, float]


@dataclass(frozen=True)
class GeneralLattice:
    """A finite graph of sites with weighted hopping bonds.

    Parameters
    ----------
    n_sites:
        Number of sites (indexed 0..n_sites-1).
    bonds:
        Tuple of ``(i, j, weight)`` with ``i != j``; duplicates of the
        same pair accumulate (periodic doubled bonds are expressed that
        way). Weights multiply the model's hopping ``t``.
    """

    n_sites: int
    bonds: Tuple[Bond, ...]

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("need at least one site")
        for (i, j, w) in self.bonds:
            if not (0 <= i < self.n_sites and 0 <= j < self.n_sites):
                raise ValueError(f"bond ({i}, {j}) out of range")
            if i == j:
                raise ValueError(f"self-loop bond on site {i}")
            if w == 0.0:
                raise ValueError(f"zero-weight bond ({i}, {j})")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_bonds(
        cls,
        n_sites: int,
        bonds: Sequence[Union[Tuple[int, int], Bond]],
    ) -> "GeneralLattice":
        """Build from ``(i, j)`` pairs (weight 1) or ``(i, j, w)`` triples."""
        norm: List[Bond] = []
        for b in bonds:
            if len(b) == 2:
                norm.append((int(b[0]), int(b[1]), 1.0))
            else:
                norm.append((int(b[0]), int(b[1]), float(b[2])))
        return cls(n_sites=n_sites, bonds=tuple(norm))

    @classmethod
    def chain(cls, n: int, periodic: bool = True) -> "GeneralLattice":
        """A 1D chain — the simplest non-default geometry."""
        bonds = [(i, i + 1, 1.0) for i in range(n - 1)]
        if periodic and n > 2:
            bonds.append((n - 1, 0, 1.0))
        if periodic and n == 2:
            bonds = [(0, 1, 2.0)]  # doubled ring bond
        return cls(n_sites=n, bonds=tuple(bonds))

    @classmethod
    def triangle(cls) -> "GeneralLattice":
        """Three mutually coupled sites — the minimal frustrated cluster."""
        return cls(n_sites=3, bonds=((0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "GeneralLattice":
        """Read a geometry file: first non-comment line is the site
        count, each following line ``i j [weight]``."""
        lines = [
            ln.split("#", 1)[0].strip()
            for ln in Path(path).read_text().splitlines()
        ]
        lines = [ln for ln in lines if ln]
        if not lines:
            raise ValueError("empty geometry file")
        n_sites = int(lines[0])
        bonds: List[Bond] = []
        for ln in lines[1:]:
            parts = ln.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"bad bond line: {ln!r}")
            w = float(parts[2]) if len(parts) == 3 else 1.0
            bonds.append((int(parts[0]), int(parts[1]), w))
        return cls(n_sites=n_sites, bonds=tuple(bonds))

    # -- graph structure --------------------------------------------------------

    @cached_property
    def adjacency(self) -> np.ndarray:
        """Symmetric weighted adjacency (duplicated bonds accumulate)."""
        a = np.zeros((self.n_sites, self.n_sites))
        for (i, j, w) in self.bonds:
            a[i, j] += w
            a[j, i] += w
        return a

    @cached_property
    def coordination(self) -> np.ndarray:
        """Number of distinct neighbors per site."""
        return np.count_nonzero(self.adjacency, axis=1)

    def neighbors(self, i: int) -> Tuple[int, ...]:
        if not 0 <= i < self.n_sites:
            raise IndexError(f"site {i} out of range")
        return tuple(np.nonzero(self.adjacency[i])[0])

    @cached_property
    def is_connected(self) -> bool:
        seen = {0}
        frontier = [0]
        while frontier:
            i = frontier.pop()
            for j in self.neighbors(i):
                if j not in seen:
                    seen.add(j)
                    frontier.append(j)
        return len(seen) == self.n_sites

    @cached_property
    def is_bipartite(self) -> bool:
        """Two-colorability of the bond graph (BFS).

        True means the half-filled model is particle-hole symmetric and
        sign-problem-free at mu = 0; False (odd cycles — frustration)
        means a sign problem away from trivial limits.
        """
        color = np.full(self.n_sites, -1, dtype=np.int64)
        for start in range(self.n_sites):
            if color[start] != -1:
                continue
            color[start] = 0
            frontier = [start]
            while frontier:
                i = frontier.pop()
                for j in self.neighbors(i):
                    if color[j] == -1:
                        color[j] = 1 - color[i]
                        frontier.append(j)
                    elif color[j] == color[i]:
                        return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeneralLattice({self.n_sites} sites, {len(self.bonds)} bonds)"
