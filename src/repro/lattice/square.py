"""Two-dimensional periodic rectangular lattices (QUEST's default geometry).

Sites are indexed ``i = x + lx * y`` with ``0 <= x < lx``, ``0 <= y < ly``
and periodic boundary conditions in both directions. All site/displacement
arithmetic in the package goes through this class so measurements,
Hamiltonians and tests share one convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Tuple

import numpy as np

__all__ = ["SquareLattice"]


@dataclass(frozen=True)
class SquareLattice:
    """An ``lx x ly`` periodic rectangular lattice.

    Parameters
    ----------
    lx, ly:
        Linear dimensions. ``n_sites = lx * ly``. The paper's production
        runs use lx = ly up to 32 (N = 1024).
    """

    lx: int
    ly: int

    def __post_init__(self) -> None:
        if self.lx < 1 or self.ly < 1:
            raise ValueError("lattice dimensions must be >= 1")

    @property
    def n_sites(self) -> int:
        return self.lx * self.ly

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.lx, self.ly)

    # -- site <-> coordinate maps ------------------------------------------

    def index(self, x: int, y: int) -> int:
        """Site index of (x, y), coordinates wrapped periodically."""
        return (x % self.lx) + self.lx * (y % self.ly)

    def coords(self, i: int) -> Tuple[int, int]:
        """(x, y) coordinates of site ``i``."""
        if not 0 <= i < self.n_sites:
            raise IndexError(f"site {i} out of range for {self}")
        return (i % self.lx, i // self.lx)

    def sites(self) -> Iterator[int]:
        return iter(range(self.n_sites))

    @cached_property
    def coord_array(self) -> np.ndarray:
        """(n_sites, 2) integer array of site coordinates."""
        idx = np.arange(self.n_sites)
        return np.stack([idx % self.lx, idx // self.lx], axis=1)

    # -- geometry ------------------------------------------------------------

    def neighbors(self, i: int) -> Tuple[int, int, int, int]:
        """The four nearest neighbors (+x, -x, +y, -y) of site ``i``."""
        x, y = self.coords(i)
        return (
            self.index(x + 1, y),
            self.index(x - 1, y),
            self.index(x, y + 1),
            self.index(x, y - 1),
        )

    @cached_property
    def neighbor_table(self) -> np.ndarray:
        """(n_sites, 4) array of nearest neighbors, columns +x,-x,+y,-y."""
        out = np.empty((self.n_sites, 4), dtype=np.int64)
        for i in range(self.n_sites):
            out[i] = self.neighbors(i)
        return out

    def displacement(self, i: int, j: int) -> Tuple[int, int]:
        """Minimal-image displacement vector from site i to site j.

        Components lie in ``(-l/2, l/2]`` for each direction, which is the
        range real-space correlation plots (paper Fig 7) use.
        """
        xi, yi = self.coords(i)
        xj, yj = self.coords(j)
        dx = (xj - xi) % self.lx
        dy = (yj - yi) % self.ly
        if dx > self.lx // 2:
            dx -= self.lx
        if dy > self.ly // 2:
            dy -= self.ly
        return (dx, dy)

    def displacement_index(self, i: int, j: int) -> int:
        """Site index of the (periodically wrapped) displacement j - i.

        Translation averaging of two-point functions indexes results by
        this: ``C(r) = (1/N) sum_i f(i, i + r)``.
        """
        xi, yi = self.coords(i)
        xj, yj = self.coords(j)
        return self.index(xj - xi, yj - yi)

    @cached_property
    def translation_table(self) -> np.ndarray:
        """(n_sites, n_sites) table: ``T[r, i] = i + r`` (periodic).

        Row r holds the image of every site translated by displacement r.
        Measurements use it to translation-average O(N^2) pair functions
        with pure fancy-indexing (no Python-level double loop).
        """
        n = self.n_sites
        out = np.empty((n, n), dtype=np.int64)
        xs = self.coord_array[:, 0]
        ys = self.coord_array[:, 1]
        for r in range(n):
            rx, ry = self.coords(r)
            out[r] = ((xs + rx) % self.lx) + self.lx * ((ys + ry) % self.ly)
        return out

    @cached_property
    def adjacency(self) -> np.ndarray:
        """Symmetric nearest-neighbor adjacency matrix (float64).

        ``adjacency[i, j]`` counts bonds between i and j — it is 2 on an
        extent-2 direction where both wraps hit the same neighbor (the
        conventional doubled hopping of a 2-site ring), which is what the
        kinetic matrix must see for such geometries. Self-loops from
        extent-1 directions are excluded: hopping onto the same site is
        not a bond (it would only shift the chemical potential, and would
        spuriously break particle-hole symmetry at mu = 0).
        """
        n = self.n_sites
        a = np.zeros((n, n))
        for i in range(n):
            for j in self.neighbors(i):
                if j != i:
                    a[i, j] += 1.0
        # Each bond was visited from both ends; halve the double count.
        return (a + a.T) / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SquareLattice({self.lx}x{self.ly})"
