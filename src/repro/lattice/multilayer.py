"""Stacked multilayer lattices — the interface physics motivating the paper.

The paper's introduction argues that modelling an interface needs six to
eight coupled 2D layers (e.g. eight 12x12 or six 14x14 planes), which is
exactly what pushes N past the old ~500-site practical limit. This module
provides that geometry: ``n_layers`` periodic rectangular planes with
intra-layer hopping ``t`` and inter-layer hopping ``t_perp``, open boundary
conditions in the stacking direction (an interface, not a torus).

Site indexing: ``i = x + lx * y + lx * ly * z`` — layer-major, so layer z
occupies the contiguous block ``[z * lx * ly, (z+1) * lx * ly)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from .square import SquareLattice

__all__ = ["MultilayerLattice"]


@dataclass(frozen=True)
class MultilayerLattice:
    """``n_layers`` stacked ``lx x ly`` periodic planes.

    Parameters
    ----------
    lx, ly:
        In-plane dimensions (periodic).
    n_layers:
        Number of planes (open boundaries along the stack).
    """

    lx: int
    ly: int
    n_layers: int

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise ValueError("need at least one layer")
        if self.lx < 1 or self.ly < 1:
            raise ValueError("lattice dimensions must be >= 1")

    @property
    def plane(self) -> SquareLattice:
        return SquareLattice(self.lx, self.ly)

    @property
    def n_sites(self) -> int:
        return self.lx * self.ly * self.n_layers

    @property
    def sites_per_layer(self) -> int:
        return self.lx * self.ly

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.lx, self.ly, self.n_layers)

    def index(self, x: int, y: int, z: int) -> int:
        """Site index of (x, y, z); x, y wrap periodically, z must be valid."""
        if not 0 <= z < self.n_layers:
            raise IndexError(f"layer {z} out of range")
        return (x % self.lx) + self.lx * (y % self.ly) + self.sites_per_layer * z

    def coords(self, i: int) -> Tuple[int, int, int]:
        if not 0 <= i < self.n_sites:
            raise IndexError(f"site {i} out of range for {self}")
        z, rem = divmod(i, self.sites_per_layer)
        return (rem % self.lx, rem // self.lx, z)

    def layer_sites(self, z: int) -> np.ndarray:
        """Indices of all sites in layer z (a contiguous block)."""
        if not 0 <= z < self.n_layers:
            raise IndexError(f"layer {z} out of range")
        base = z * self.sites_per_layer
        return np.arange(base, base + self.sites_per_layer)

    @cached_property
    def intra_layer_adjacency(self) -> np.ndarray:
        """Block-diagonal nearest-neighbor adjacency within each plane."""
        n = self.n_sites
        npl = self.sites_per_layer
        a = np.zeros((n, n))
        plane_adj = self.plane.adjacency
        for z in range(self.n_layers):
            s = z * npl
            a[s : s + npl, s : s + npl] = plane_adj
        return a

    @cached_property
    def inter_layer_adjacency(self) -> np.ndarray:
        """Vertical-bond adjacency: site (x,y,z) <-> (x,y,z+1)."""
        n = self.n_sites
        npl = self.sites_per_layer
        a = np.zeros((n, n))
        for z in range(self.n_layers - 1):
            s = z * npl
            for p in range(npl):
                a[s + p, s + p + npl] = 1.0
                a[s + p + npl, s + p] = 1.0
        return a

    def aspect_ratio(self) -> float:
        """Plane extent over stack extent — the paper's adequacy metric.

        The introduction argues a credible interface simulation needs the
        in-plane extent to comfortably exceed the number of layers; eight
        8x8 layers (ratio 1.0) is "barely sufficient", eight 12x12 layers
        (ratio 1.5) is the goal enabled by N = 1024.
        """
        return min(self.lx, self.ly) / float(self.n_layers)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultilayerLattice({self.lx}x{self.ly}x{self.n_layers})"
