"""Lattice geometries: periodic planes, multilayer stacks, momentum space."""

from .kspace import (
    SYMMETRY_CORNERS,
    BrillouinZone,
    fourier_two_point,
    momentum_grid,
    symmetry_path,
)
from .general import GeneralLattice
from .multilayer import MultilayerLattice
from .square import SquareLattice

__all__ = [
    "SYMMETRY_CORNERS",
    "BrillouinZone",
    "GeneralLattice",
    "MultilayerLattice",
    "SquareLattice",
    "fourier_two_point",
    "momentum_grid",
    "symmetry_path",
]
