"""repro — DQMC for the Hubbard model with pre-pivoted stratification.

A Python reproduction of Tomas, Chang, Scalettar & Bai, *Advancing Large
Scale Many-Body QMC Simulations on GPU Accelerated Multicore Systems*
(IPDPS 2012): the QUEST determinant quantum Monte Carlo pipeline, the
paper's communication-avoiding pre-pivoted stratification kernel, the
multicore parallelization strategy, and a simulated-GPU offload layer.

Quickstart::

    from repro import HubbardModel, SquareLattice, Simulation

    model = HubbardModel(SquareLattice(4, 4), u=2.0, beta=4.0, n_slices=40)
    sim = Simulation(model, seed=7)
    result = sim.run(warmup_sweeps=50, measurement_sweeps=200)
    print(result.summary())
"""

from .autotune import (
    AutotuneResult,
    TuningCache,
    TuningParameters,
    WarmupAutotuner,
    profile_key,
    tune_simulation,
)
from .backends import (
    available_backends,
    get_backend,
    known_backends,
    register_backend,
)
from .hamiltonian import (
    BMatrixFactory,
    HSField,
    HubbardModel,
    KineticPropagator,
    free_dispersion_2d,
    free_greens_function,
    hs_coupling,
)
from .lattice import (
    BrillouinZone,
    MultilayerLattice,
    SquareLattice,
    fourier_two_point,
    momentum_grid,
    symmetry_path,
)
from .dqmc import Simulation, SimulationConfig, SimulationResult, load_config
from .precision import (
    POLICIES,
    PrecisionError,
    PrecisionPolicy,
    resolve_policy,
)
from .profiling import PhaseProfiler
from .stats import RunController, StreamingAccumulator
from .telemetry import (
    MetricsRegistry,
    NumericalHealthWatchdog,
    Telemetry,
    TelemetryWriter,
    WatchdogConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AutotuneResult",
    "BMatrixFactory",
    "BrillouinZone",
    "HSField",
    "HubbardModel",
    "KineticPropagator",
    "MetricsRegistry",
    "MultilayerLattice",
    "NumericalHealthWatchdog",
    "PhaseProfiler",
    "POLICIES",
    "PrecisionError",
    "PrecisionPolicy",
    "RunController",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SquareLattice",
    "StreamingAccumulator",
    "Telemetry",
    "TelemetryWriter",
    "TuningCache",
    "TuningParameters",
    "WarmupAutotuner",
    "WatchdogConfig",
    "load_config",
    "profile_key",
    "resolve_policy",
    "tune_simulation",
    "__version__",
    "available_backends",
    "get_backend",
    "known_backends",
    "register_backend",
    "fourier_two_point",
    "free_dispersion_2d",
    "free_greens_function",
    "hs_coupling",
    "momentum_grid",
    "symmetry_path",
]
