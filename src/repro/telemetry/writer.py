"""JSONL event sink: one structured line per telemetry event.

The archive format is deliberately the dumbest thing that works for a
36-hour run: newline-delimited JSON, flushed per line, so

* a run killed at any instant leaves a readable file (the partial last
  line is simply dropped by readers),
* ``tail -f run.jsonl | jq`` works while the run is in flight,
* the file sits next to the BENCH ``results/`` artifacts and is parsed
  back by ``repro telemetry-report``.

Every line carries ``event`` (its kind), ``t`` (seconds since the writer
opened — monotonic, so wall-clock adjustments cannot reorder events) and
``seq`` (a per-file sequence number readers can use to detect truncation).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

__all__ = ["TelemetryWriter", "read_events"]


class TelemetryWriter:
    """Append-only JSONL sink for telemetry events.

    Parameters
    ----------
    path:
        Output file. Opened lazily on the first event so constructing a
        writer for a run that emits nothing leaves no empty file behind.
    flush_every:
        Flush the OS buffer every this-many lines (1 = every line, the
        default — events are sweep-granularity, so the syscall cost is
        irrelevant next to a single N^3 stratification).

    ``close()`` (and context-manager exit) always flushes *and* fsyncs,
    whatever ``flush_every`` is — a crash after a clean close loses
    nothing, a SIGKILL mid-run loses at most the lines since the last
    flush (one, at the default cadence). An internal lock serializes
    writers shared across scheduler threads; the lock is dropped on
    pickle and recreated on unpickle.
    """

    def __init__(self, path: Union[str, Path], flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self._fh: Optional[IO[str]] = None
        self._t0 = time.monotonic()
        self.seq = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks are unpicklable; recreated on load
        state["_fh"] = None  # handles never cross a process boundary
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        return self._fh

    def write(self, event: str, **fields) -> dict:
        """Emit one event line; returns the record written (for tests)."""
        record = {
            "event": event,
            "t": round(time.monotonic() - self._t0, 6),
            "seq": self.seq,
        }
        record.update(fields)
        with self._lock:
            record["seq"] = self.seq
            fh = self._handle()
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            self.seq += 1
            if self.seq % self.flush_every == 0:
                fh.flush()
        return record

    def close(self) -> None:
        """Flush, fsync and close (idempotent).

        The fsync is unconditional: ``flush_every`` batches the *running*
        cost, but a closed file must be durable — that is the promise the
        campaign manifest layer makes about run artifacts.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> Iterator[dict]:
    """Parse a JSONL telemetry file, skipping a truncated final line.

    A run killed mid-write (the exact failure checkpointing defends
    against) leaves at most one partial line at EOF; only there is a
    parse failure tolerated — corruption anywhere else raises, because a
    mangled middle means the file is not the append-only stream we wrote.
    """
    lines: List[str] = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                return  # torn final write from an interrupted run
            raise
