"""Numerical-health watchdog: detect drift before it corrupts physics.

The two quantities that degrade silently in a long DQMC run are exactly
the two the paper's stability machinery exists to control:

* **wrap drift** — the relative error between the running wrapped
  Green's function and a freshly stratified one (Sec. III-B justifies
  l_wrap ~ 10 by keeping this small). It grows with the B-matrix
  condition number, so a parameter point that was safe at the start of
  a run can turn unsafe as the field decorrelates.
* **graded dynamic range** — the spread ``max|D| / min|D|`` of the
  stratified scales. When it approaches 1/eps the cluster products are
  no longer representable and every downstream number is suspect.

The watchdog samples both every ``check_every`` sweeps (each sample
costs roughly one direct stratification — strictly off the hot path)
and, past the configured tolerances, *degrades gracefully*: it emits a
``health_alert`` event, invalidates every cached cluster product and
forces a fresh re-stratification of both spin species, replacing the
drifted state instead of letting it contaminate further measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .core import Telemetry, ensure_telemetry

__all__ = ["WatchdogConfig", "HealthReport", "NumericalHealthWatchdog"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Tolerances and cadence for :class:`NumericalHealthWatchdog`.

    Defaults are loose enough that a healthy run at the paper's operating
    points never alerts (wrap drift there sits around 1e-10, graded
    ranges around 1e4 per cluster chain) while a mis-sized cluster or a
    pathological parameter point trips within one check interval.
    """

    #: sweeps between health samples (each costs ~one stratification)
    check_every: int = 50
    #: alert when wrap drift (relative Frobenius error) exceeds this
    drift_tol: float = 1e-6
    #: alert when max|D|/min|D| of the graded scales exceeds this
    range_tol: float = 1e14
    #: wraps to accumulate before comparing (None: one full cluster)
    n_wraps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if self.drift_tol <= 0 or self.range_tol <= 1:
            raise ValueError("tolerances must be positive (range_tol > 1)")


@dataclass
class HealthReport:
    """Outcome of one watchdog sample."""

    sweep: int
    wrap_drift: float
    dynamic_range: float
    alerts: List[str] = field(default_factory=list)
    forced_refresh: bool = False
    #: name of the policy the engine was promoted to, when an alert
    #: under a narrowed precision policy triggered promotion
    promoted_to: Optional[str] = None

    @property
    def healthy(self) -> bool:
        return not self.alerts


class NumericalHealthWatchdog:
    """Periodic numerical-health sampling bound to one engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.GreensFunctionEngine` (or hybrid
        subclass) whose ``wrap_drift`` / ``grading_profile`` diagnostics
        are sampled and whose caches are invalidated on alert.
    config:
        Tolerances and cadence.
    telemetry:
        Sink for ``health_alert`` / ``forced_refresh`` events and the
        ``health.*`` gauge series; ``None`` keeps reports in-memory only.
    promote:
        When True (the default, production behaviour) an alert under a
        narrowed precision policy promotes the engine to the next-safer
        rung. The autotuner disables this: its trials deliberately probe
        configurations that may be unhealthy, and the gate's job is to
        *reject* them, not to mutate the engine's policy mid-search.
    """

    def __init__(
        self,
        engine,
        config: Optional[WatchdogConfig] = None,
        telemetry: Optional[Telemetry] = None,
        promote: bool = True,
    ):
        self.engine = engine
        self.config = config if config is not None else WatchdogConfig()
        self.telemetry = ensure_telemetry(telemetry)
        self.promote = promote
        self.reports: List[HealthReport] = []
        self.alerts = 0
        self.forced_refreshes = 0
        self.promotions = 0

    def maybe_check(self, sweep_index: int) -> Optional[HealthReport]:
        """Run a health sample if ``sweep_index`` falls on the cadence.

        Returns the report when a sample ran, ``None`` otherwise. Called
        by the simulation driver after every sweep with a 1-based index.
        """
        if sweep_index % self.config.check_every != 0:
            return None
        return self.check(sweep_index)

    def check(self, sweep_index: int = 0) -> HealthReport:
        """Sample both diagnostics, alert + refresh past tolerance.

        The wrap-drift tolerance is scaled by the active precision
        policy's ``drift_scale``: a narrowed pipeline legitimately
        drifts more between refreshes (float32 eps ~1e-7), and the
        scale keeps one configured tolerance meaningful on every rung
        of the ladder. Under ``full64`` the scale is 1 — behaviour is
        exactly historical.
        """
        cfg = self.config
        policy = getattr(self.engine, "policy", None)
        drift_tol = cfg.drift_tol * (
            policy.drift_scale if policy is not None else 1.0
        )
        drift = max(
            self.engine.wrap_drift(sigma, n_wraps=cfg.n_wraps)
            for sigma in (1, -1)
        )
        dyn_range = 0.0
        for sigma in (1, -1):
            scales = self.engine.grading_profile(sigma)
            # sorted descending; the smallest scale can underflow to 0 on
            # a truly lost chain — report an infinite range, not a crash.
            smallest = float(scales[-1])
            largest = float(scales[0])
            ratio = largest / smallest if smallest > 0.0 else float("inf")
            dyn_range = max(dyn_range, ratio)

        report = HealthReport(
            sweep=sweep_index, wrap_drift=drift, dynamic_range=dyn_range
        )
        if drift > drift_tol:
            report.alerts.append(
                f"wrap_drift {drift:.3e} exceeds tolerance {drift_tol:.3e}"
            )
        if dyn_range > cfg.range_tol:
            report.alerts.append(
                f"graded dynamic range {dyn_range:.3e} exceeds tolerance "
                f"{cfg.range_tol:.3e}"
            )

        tel = self.telemetry
        tel.gauge("health.wrap_drift", drift)
        tel.gauge("health.dynamic_range", dyn_range)
        tel.observe("health.wrap_drift_samples", drift)
        tel.counter("health.checks")

        if report.alerts:
            self.alerts += len(report.alerts)
            tel.counter("health.alerts", len(report.alerts))
            tel.event(
                "health_alert",
                sweep=sweep_index,
                wrap_drift=drift,
                dynamic_range=dyn_range,
                alerts=list(report.alerts),
            )
            # Promotion before refresh: when a narrowed policy is what
            # drifted, the forced re-stratification below already runs
            # under the next-safer rung.
            self._maybe_promote(sweep_index, report)
            self._force_refresh(sweep_index)
            report.forced_refresh = True

        self.reports.append(report)
        return report

    def _maybe_promote(self, sweep_index: int, report: "HealthReport") -> bool:
        """Promote a narrowed engine to the next-safer precision policy.

        An alert under ``mixed``/``fast32`` means the narrowed pipeline
        is not holding this workload; instead of failing (or silently
        measuring drifted physics) the engine is switched in place —
        ``fast32`` -> ``mixed`` -> ``full64`` — and a
        ``precision_promoted`` event records the transition. At
        ``full64`` there is no safer rung and the historical
        alert-and-refresh behaviour stands alone.
        """
        if not self.promote:
            return False
        policy = getattr(self.engine, "policy", None)
        set_precision = getattr(self.engine, "set_precision", None)
        if policy is None or set_precision is None:
            return False
        safer = policy.safer
        if safer is None:
            return False
        set_precision(safer)
        self.promotions += 1
        report.promoted_to = safer.name
        self.telemetry.counter("health.precision_promotions")
        self.telemetry.event(
            "precision_promoted",
            sweep=sweep_index,
            from_policy=policy.name,
            to_policy=safer.name,
            reason="; ".join(report.alerts),
        )
        return True

    def _force_refresh(self, sweep_index: int) -> None:
        """Graceful degradation: drop all derived state and re-stratify.

        ``invalidate_all`` empties the cluster cache; the immediate
        ``boundary_greens`` calls rebuild the products and run a fresh
        stratification for both spins, so the next sweep starts from
        clean state instead of compounding the drift.
        """
        self.engine.invalidate_all()
        for sigma in (1, -1):
            self.engine.boundary_greens(sigma, 0)
        self.forced_refreshes += 1
        self.telemetry.counter("health.forced_refreshes")
        self.telemetry.event("forced_refresh", sweep=sweep_index)
