"""Run telemetry: metrics, JSONL event archive, numerical-health watchdog.

The observability layer for long DQMC runs (the paper's headline result
is a 36-hour simulation — see docs/observability.md):

* :class:`MetricsRegistry` / :class:`StreamingHistogram` — bounded-memory
  counters, gauges and distributions,
* :class:`TelemetryWriter` — append-only JSONL sink (one event per line,
  readable mid-run and after a crash),
* :class:`Telemetry` — the facade every subsystem reports into, with a
  shared zero-overhead :class:`NullTelemetry` twin for disabled runs,
* :class:`NumericalHealthWatchdog` — periodic wrap-drift and
  graded-conditioning sampling with alert + forced-refresh degradation,
* :func:`summarize_jsonl` / :func:`render_report` — the offline
  ``repro telemetry-report`` summarizer.
"""

from .core import NULL_TELEMETRY, NullTelemetry, Telemetry, ensure_telemetry
from .registry import MetricsRegistry, StreamingHistogram
from .report import TelemetrySummary, render_report, summarize_jsonl
from .watchdog import HealthReport, NumericalHealthWatchdog, WatchdogConfig
from .writer import TelemetryWriter, read_events

__all__ = [
    "HealthReport",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "NumericalHealthWatchdog",
    "StreamingHistogram",
    "Telemetry",
    "TelemetrySummary",
    "TelemetryWriter",
    "WatchdogConfig",
    "ensure_telemetry",
    "read_events",
    "render_report",
    "summarize_jsonl",
]
