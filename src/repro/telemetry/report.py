"""Offline summarization of a telemetry JSONL archive.

``repro telemetry-report run.jsonl`` renders the in-flight archive into
the same Table-I-style view the profiler prints live: per-phase seconds
and shares, sweep/acceptance totals, health-check history and any
alerts. Works on truncated files from interrupted runs (the torn final
line is ignored by the reader).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from .writer import read_events

__all__ = ["TelemetrySummary", "summarize_jsonl", "render_report"]

#: gauge-name prefix the profiler export hook uses (see PhaseProfiler)
PHASE_GAUGE_PREFIX = "phase."


class TelemetrySummary:
    """Aggregate view of one JSONL telemetry stream."""

    def __init__(self) -> None:
        self.n_events = 0
        self.events_by_kind: Dict[str, int] = {}
        self.duration: float = 0.0
        self.sweeps = 0
        self.proposed = 0
        self.accepted = 0
        self.singular_rejects = 0
        self.last_sign: float = 1.0
        self.alerts: List[dict] = []
        self.forced_refreshes = 0
        self.checkpoints = 0
        #: the last full metrics snapshot seen (None if the run died
        #: before its first snapshot)
        self.metrics: Optional[dict] = None

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    def phase_seconds(self) -> Dict[str, float]:
        """Per-phase seconds recovered from the snapshot gauges (the
        ``total`` roll-up gauge is excluded — it is the denominator,
        not a phase)."""
        if not self.metrics:
            return {}
        out = {}
        for name, value in self.metrics.get("gauges", {}).items():
            if name.startswith(PHASE_GAUGE_PREFIX) and name.endswith(".seconds"):
                phase = name[len(PHASE_GAUGE_PREFIX):-len(".seconds")]
                if phase != "total":
                    out[phase] = float(value)
        return out


def summarize_jsonl(path: Union[str, Path]) -> TelemetrySummary:
    """Fold a telemetry archive into a :class:`TelemetrySummary`."""
    s = TelemetrySummary()
    for rec in read_events(path):
        s.n_events += 1
        kind = rec.get("event", "?")
        s.events_by_kind[kind] = s.events_by_kind.get(kind, 0) + 1
        s.duration = max(s.duration, float(rec.get("t", 0.0)))
        if kind == "sweep_done":
            s.sweeps += 1
            s.proposed += int(rec.get("proposed", 0))
            s.accepted += int(rec.get("accepted", 0))
            s.singular_rejects += int(rec.get("singular_rejects", 0))
            s.last_sign = float(rec.get("sign", 1.0))
        elif kind == "health_alert":
            s.alerts.append(rec)
        elif kind == "forced_refresh":
            s.forced_refreshes += 1
        elif kind == "checkpoint_saved":
            s.checkpoints += 1
        elif kind == "metrics":
            s.metrics = rec.get("metrics", {})
    return s


def render_report(summary: TelemetrySummary) -> str:
    """Human-readable digest: phase table + run health, Table-I style."""
    s = summary
    lines = [
        f"events             {s.n_events} "
        f"({', '.join(f'{k}:{v}' for k, v in sorted(s.events_by_kind.items()))})",
        f"duration           {s.duration:.1f} s",
        f"sweeps             {s.sweeps}",
        f"acceptance         {s.acceptance_rate:.3f} "
        f"({s.accepted}/{s.proposed})",
        f"final sign         {s.last_sign:+.4f}",
    ]
    if s.singular_rejects:
        lines.append(f"singular rejects   {s.singular_rejects}")
    if s.checkpoints:
        lines.append(f"checkpoints        {s.checkpoints}")

    phases = s.phase_seconds()
    if phases:
        total = sum(phases.values())
        lines.append("")
        lines.append("phase                 seconds      share")
        for name, sec in sorted(
            phases.items(), key=lambda kv: kv[1], reverse=True
        ):
            share = 100.0 * sec / total if total else 0.0
            lines.append(f"{name:<20} {sec:>9.3f}   {share:>6.1f}%")

    lines.append("")
    if s.alerts:
        lines.append(
            f"HEALTH: {len(s.alerts)} alert(s), "
            f"{s.forced_refreshes} forced refresh(es)"
        )
        for a in s.alerts:
            for msg in a.get("alerts", []):
                lines.append(f"  sweep {a.get('sweep', '?')}: {msg}")
    else:
        checks = 0
        if s.metrics:
            checks = int(s.metrics.get("counters", {}).get("health.checks", 0))
        lines.append(f"HEALTH: ok ({checks} check(s), no alerts)")
    return "\n".join(lines)
