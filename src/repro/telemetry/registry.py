"""Metric primitives: counters, gauges, and streaming histograms.

A long DQMC run (the paper's headline N=1024 case ran 36 hours) produces
far more raw numbers than anyone can archive sample-by-sample. The
registry keeps *bounded-memory* summaries that are cheap to update and
cheap to serialize:

* **counters** — monotonically increasing totals (proposals, accepted
  flips, cache misses, forced refreshes),
* **gauges** — last-written values (current sign, wrap drift, per-phase
  seconds exported from the profiler),
* **streaming histograms** — fixed-bucket distributions (acceptance rate
  per sweep, wrap-drift samples, graded-scale dynamic range) that never
  grow with run length.

Everything here is plain Python floats and dicts — no numpy arrays are
held — so a snapshot is directly JSON-serializable by
:class:`~repro.telemetry.writer.TelemetryWriter`.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence

__all__ = ["StreamingHistogram", "MetricsRegistry"]


class StreamingHistogram:
    """Fixed-memory distribution summary of a stream of floats.

    Tracks count / sum / min / max plus counts over a fixed set of
    bucket boundaries. The default boundaries are geometric decades from
    1e-16 to 1e4 — wide enough to cover both wrap-drift relative errors
    (~1e-12) and graded dynamic ranges (~1e+4 per cluster) without
    configuration. Pass explicit ``bounds`` for quantities with a known
    scale (e.g. acceptance rates in [0, 1]).

    Values below the first bound land in bucket 0, values at-or-above
    the last bound land in the overflow bucket ``len(bounds)``.

    Thread-safe: observe/merge hold an internal lock, so a histogram fed
    from ``parallel_for`` bodies or ``executor="thread"`` chains loses no
    samples. The lock is dropped on pickle and recreated on unpickle
    (chain registries cross the process boundary under
    ``executor="process"``).
    """

    #: decade edges 1e-16 .. 1e4 (inclusive of sign: negatives underflow)
    DEFAULT_BOUNDS = tuple(10.0**e for e in range(-16, 5))

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        b = tuple(float(x) for x in (bounds if bounds is not None else self.DEFAULT_BOUNDS))
        if list(b) != sorted(b):
            raise ValueError("histogram bounds must be sorted ascending")
        if not b:
            raise ValueError("histogram needs at least one bound")
        self.bounds = b
        self.buckets = [0] * (len(b) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks are unpicklable; recreated on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            # Linear scan is fine: bucket lists are ~20 entries and
            # observe() runs at sweep granularity, never inside the site
            # loop.
            for i, bound in enumerate(self.bounds):
                if v < bound:
                    self.buckets[i] += 1
                    return
            self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th sample); min/max exact at the extremes."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def merge(self, other: "StreamingHistogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        with self._lock:
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            for i, n in enumerate(other.buckets):
                self.buckets[i] += n

    def snapshot(self) -> dict:
        """JSON-ready summary (bucket counts omitted when empty)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with JSON snapshots.

    One registry per run; every subsystem writes into it through the
    :class:`~repro.telemetry.core.Telemetry` facade. ``snapshot()`` is
    what the JSONL sink periodically archives; ``merge()`` is how
    ensemble chains are folded into one run-level view.

    Thread-safe: every write path holds one internal lock (read-modify-
    write on a plain dict is not atomic, and registries are shared by
    ``executor="thread"`` chains and ``parallel_for`` bodies). The
    :class:`~repro.telemetry.core.NullTelemetry` fast path never
    constructs a registry, so disabled-telemetry overhead is unchanged.
    The lock is dropped on pickle and recreated on unpickle.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, StreamingHistogram] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks are unpicklable; recreated on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- writes --------------------------------------------------------------

    def inc(self, name: str, delta: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def observe(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = StreamingHistogram(bounds)
        hist.observe(value)

    # -- reads ---------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def names(self) -> List[str]:
        return sorted(
            set(self.counters) | set(self.gauges) | set(self.histograms)
        )

    def snapshot(self) -> dict:
        """Plain-dict view of everything, safe to json.dumps."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    k: h.snapshot() for k, h in self.histograms.items()
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges take the other's
        value (last write wins), histograms merge bucket-wise."""
        for k, v in other.counters.items():
            self.inc(k, v)
        for k, v in other.gauges.items():
            self.set_gauge(k, v)
        for k, h in other.histograms.items():
            with self._lock:
                mine = self.histograms.get(k)
                if mine is None:
                    mine = self.histograms[k] = StreamingHistogram(h.bounds)
            mine.merge(h)
