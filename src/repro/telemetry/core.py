"""The telemetry facade components report into, plus its no-op twin.

Mirrors the two zero-overhead patterns already in the package:

* like ``ensure_profiler``, call sites never branch on ``None`` — they
  call ``ensure_telemetry(telemetry)`` once and talk to the result;
* like ``REPRO_CONTRACTS``, the disabled path must cost nothing in the
  hot loop — :class:`NullTelemetry` methods are empty one-liners and the
  sweep additionally hoists an ``enabled`` check so the per-sweep work
  is a single attribute read when telemetry is off.

A :class:`Telemetry` object owns one :class:`MetricsRegistry` and
optionally one :class:`TelemetryWriter`; *snapshot sources* (the
profiler export hook, cluster-cache stats, a FLOP tally) are callables
registered once and polled right before each periodic snapshot, so
subsystems that already keep their own counters need no per-event
instrumentation at all.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .registry import MetricsRegistry
from .writer import TelemetryWriter

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "ensure_telemetry",
]

#: per-sweep acceptance rates live in [0, 1]; fixed linear buckets
ACCEPTANCE_BOUNDS = tuple(i / 20.0 for i in range(21))


class Telemetry:
    """Live metrics registry + optional JSONL archive for one run.

    Parameters
    ----------
    writer:
        JSONL sink; ``None`` keeps metrics in memory only (ensemble
        chains run this way and are merged at the end).
    snapshot_every:
        Emit a full ``metrics`` snapshot event every this-many
        ``sweep_done`` events (0 disables periodic snapshots; a final
        one is still written by :meth:`close`).
    """

    enabled = True

    def __init__(
        self,
        writer: Optional[TelemetryWriter] = None,
        snapshot_every: int = 10,
    ):
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        self.registry = MetricsRegistry()
        self.writer = writer
        self.snapshot_every = snapshot_every
        self._snapshot_sources: List[Callable[[MetricsRegistry], None]] = []
        self._sweeps_seen = 0

    # -- registry passthrough ------------------------------------------------

    def counter(self, name: str, delta: float = 1.0) -> None:
        self.registry.inc(name, delta)

    def gauge(self, name: str, value: float) -> None:
        self.registry.set_gauge(name, value)

    def observe(self, name: str, value: float, bounds=None) -> None:
        self.registry.observe(name, value, bounds=bounds)

    # -- events --------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        """Emit one structured event line (no-op without a writer)."""
        if self.writer is not None:
            self.writer.write(kind, **fields)

    def add_snapshot_source(
        self, source: Callable[[MetricsRegistry], None]
    ) -> None:
        """Register a callable polled into the registry before snapshots."""
        self._snapshot_sources.append(source)

    def snapshot(self) -> dict:
        """Poll every source, archive and return the registry snapshot."""
        for source in self._snapshot_sources:
            source(self.registry)
        snap = self.registry.snapshot()
        self.event("metrics", metrics=snap)
        return snap

    def sweep_done(self, index: int, stats, stage: str = "measure") -> None:
        """Per-sweep bookkeeping: counters, distributions, the
        ``sweep_done`` event, and the periodic snapshot cadence.

        ``stats`` is a :class:`~repro.dqmc.sweep.SweepStats` for *one*
        sweep (not an aggregate).
        """
        self._sweeps_seen += 1
        reg = self.registry
        reg.inc("sweep.count")
        reg.inc("sweep.proposed", stats.proposed)
        reg.inc("sweep.accepted", stats.accepted)
        reg.inc("sweep.negative_ratios", stats.negative_ratios)
        reg.inc("sweep.singular_rejects", stats.singular_rejects)
        reg.inc("sweep.refreshes", stats.refreshes)
        reg.set_gauge("sweep.sign", stats.sign)
        reg.observe(
            "sweep.acceptance_rate",
            stats.acceptance_rate,
            bounds=ACCEPTANCE_BOUNDS,
        )
        self.event(
            "sweep_done",
            sweep=index,
            stage=stage,
            proposed=stats.proposed,
            accepted=stats.accepted,
            negative_ratios=stats.negative_ratios,
            singular_rejects=stats.singular_rejects,
            refreshes=stats.refreshes,
            sign=stats.sign,
        )
        if self.snapshot_every and self._sweeps_seen % self.snapshot_every == 0:
            self.snapshot()

    def close(self) -> None:
        """Final snapshot + writer shutdown (idempotent)."""
        if self.writer is not None:
            self.snapshot()
            self.writer.close()
            self.writer = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTelemetry(Telemetry):
    """Telemetry that does nothing, shared by all call sites.

    Mirrors ``_NullProfiler``: components hold a real object and never
    branch on ``None``; the ``enabled`` flag lets per-sweep call sites
    skip even the cheap no-op calls.
    """

    enabled = False

    def __init__(self) -> None:  # no registry, no writer, no state
        pass

    def counter(self, name: str, delta: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, bounds=None) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def add_snapshot_source(self, source) -> None:
        pass

    def snapshot(self) -> dict:
        return {}

    def sweep_done(self, index: int, stats, stage: str = "measure") -> None:
        pass

    def close(self) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()


def ensure_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """The given telemetry, or the shared no-op instance."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
