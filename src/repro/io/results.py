"""Result serialization: save/load measurement output as portable .npz.

A finished run's observables (means, errors, metadata) round-trip through
a single compressed numpy archive, so long simulations can checkpoint
their measurements and the benchmark harness can archive paper-figure
data for EXPERIMENTS.md without any external dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..measure import BinnedEstimate

__all__ = ["save_observables", "load_observables"]

_META_KEY = "__meta__"


def save_observables(
    path: Union[str, Path],
    observables: Dict[str, BinnedEstimate],
    metadata: Dict[str, object] | None = None,
) -> None:
    """Write observables (and JSON-serializable metadata) to ``path``.

    Layout: for each observable ``name`` the archive holds arrays
    ``name/mean`` and ``name/error`` plus ``name/counts`` =
    ``[n_bins, n_samples]``; metadata is stored as a JSON string.
    """
    payload: Dict[str, np.ndarray] = {}
    for name, est in observables.items():
        if "/" in name or name == _META_KEY:
            raise ValueError(f"illegal observable name {name!r}")
        payload[f"{name}/mean"] = np.asarray(est.mean)
        payload[f"{name}/error"] = np.asarray(est.error)
        payload[f"{name}/counts"] = np.array([est.n_bins, est.n_samples])
    payload[_META_KEY] = np.array(json.dumps(metadata or {}))
    np.savez_compressed(Path(path), **payload)


def load_observables(
    path: Union[str, Path]
) -> tuple[Dict[str, BinnedEstimate], Dict[str, object]]:
    """Inverse of :func:`save_observables`."""
    with np.load(Path(path), allow_pickle=False) as npz:
        meta = json.loads(str(npz[_META_KEY]))
        names = sorted(
            {k.split("/", 1)[0] for k in npz.files if k != _META_KEY}
        )
        out: Dict[str, BinnedEstimate] = {}
        for name in names:
            counts = npz[f"{name}/counts"]
            out[name] = BinnedEstimate(
                mean=npz[f"{name}/mean"],
                error=npz[f"{name}/error"],
                n_bins=int(counts[0]),
                n_samples=int(counts[1]),
            )
    return out, meta
