"""Input files and result archives."""

from ..dqmc.config import SimulationConfig, load_config, parse_config
from .results import load_observables, save_observables

__all__ = [
    "SimulationConfig",
    "load_config",
    "load_observables",
    "parse_config",
    "save_observables",
]
