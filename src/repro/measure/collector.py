"""The standard measurement set evaluated during a DQMC run.

:class:`MeasurementCollector` bundles the per-sample observable functions
(density, double occupancy, kinetic energy, <n_k>, C_zz, sign) behind one
``measure(g_up, g_dn, sign)`` call that the simulation driver invokes at
measurement points, and feeds the :class:`~repro.measure.estimators.Accumulator`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..lattice import SquareLattice
from .charge import charge_density_correlation
from .equal_time import double_occupancy, kinetic_energy, total_density
from .estimators import Accumulator, BinnedEstimate
from .momentum import momentum_distribution_spin_mean
from .pairing import swave_pair_structure_factor
from .spin import af_structure_factor, spin_zz_correlation

__all__ = ["MeasurementCollector"]


class MeasurementCollector:
    """Per-sample measurement dispatch + accumulation.

    Parameters
    ----------
    lattice:
        Geometry (momentum/correlation observables need a
        :class:`SquareLattice`; for other geometries only scalar
        observables are collected).
    t, t_perp:
        Hopping amplitudes for the kinetic-energy estimator.
    with_arrays:
        Collect the array-valued observables (<n_k>, C_zz) — O(N^2) per
        measurement; switch off for pure-performance benches.
    streaming:
        Accumulate through the constant-memory
        :class:`repro.stats.StreamingAccumulator` (O(log n) log-binned
        state per observable) instead of retaining every sample. The
        ``results()`` interface is unchanged; sample series are only
        available for explicitly tracked scalars.
    """

    def __init__(
        self,
        lattice,
        t: float = 1.0,
        t_perp: float = 1.0,
        with_arrays: bool = True,
        streaming: bool = False,
    ):
        self.lattice = lattice
        self.t = t
        self.t_perp = t_perp
        self.is_square = isinstance(lattice, SquareLattice)
        self.with_arrays = with_arrays and self.is_square
        if streaming:
            # Deferred import: repro.stats sits above repro.measure.
            from ..stats import StreamingAccumulator

            self.accumulator = StreamingAccumulator()
        else:
            self.accumulator = Accumulator()

    def measure(self, g_up: np.ndarray, g_dn: np.ndarray, sign: float = 1.0) -> None:
        """Record one sample's worth of every enabled observable.

        ``sign`` is the configuration's fermion sign; observables are
        recorded sign-weighted so the driver can form sign-corrected
        ratios (at half filling the sign is identically +1 and the
        weighting is a no-op).

        Measurement is the precision-policy floor: under a narrowed
        policy the Green's functions arrive in the compute dtype, but
        every estimator and accumulator runs in float64 — samples are
        promoted here, at the single entry point.
        """
        acc = self.accumulator
        g_up = np.asarray(g_up, dtype=np.float64)
        g_dn = np.asarray(g_dn, dtype=np.float64)
        acc.add("sign", sign)
        acc.add("density", sign * total_density(g_up, g_dn))
        acc.add("double_occupancy", sign * double_occupancy(g_up, g_dn))
        acc.add(
            "kinetic_energy",
            sign * kinetic_energy(self.lattice, g_up, g_dn, self.t, self.t_perp),
        )
        if self.with_arrays:
            nk = momentum_distribution_spin_mean(self.lattice, g_up, g_dn)
            acc.add("momentum_distribution", sign * nk)
            czz = spin_zz_correlation(self.lattice, g_up, g_dn)
            acc.add("spin_zz", sign * czz)
            acc.add(
                "charge_nn",
                sign * charge_density_correlation(self.lattice, g_up, g_dn),
            )
            acc.add(
                "swave_pairing",
                sign * swave_pair_structure_factor(self.lattice, g_up, g_dn),
            )
            if self.lattice.lx % 2 == 0 and self.lattice.ly % 2 == 0:
                acc.add("af_structure_factor", sign * af_structure_factor(self.lattice, czz))

    @property
    def n_measurements(self) -> int:
        return self.accumulator.n_samples("sign")

    @property
    def streaming(self) -> bool:
        return bool(getattr(self.accumulator, "streaming", False))

    def results(self, n_bins: int = 16) -> Dict[str, BinnedEstimate]:
        """Binned estimates of everything collected so far.

        Values are the raw sign-weighted averages; use
        :meth:`corrected_results` for sign-corrected expectation values
        with propagated errors when < sign > != 1.
        """
        return self.accumulator.reduce(n_bins=n_bins)

    def corrected_results(self, n_bins: int = 16) -> Dict[str, BinnedEstimate]:
        """Sign-corrected estimates < O s > / < s > with error bars.

        Post-hoc accumulation gets the jackknife ratio (exact for the
        nonlinearity); streaming accumulation gets delta-method
        propagation. The ``"sign"`` entry stays the raw sign estimate.
        See :func:`repro.stats.sign_corrected_results`.
        """
        from ..stats import sign_corrected_results

        return sign_corrected_results(self.accumulator, n_bins=n_bins)
