"""Pairing correlations — the superconductivity diagnostics.

The cuprate motivation running through the paper's introduction is
ultimately about pairing; DQMC's standard probes are the equal-time pair
correlation functions

.. math::

    P_\\alpha(r) = \\frac{1}{N} \\sum_{r'}
        \\langle \\Delta_\\alpha(r + r') \\Delta_\\alpha^\\dagger(r') \\rangle

with the on-site (s-wave) pair operator
``Delta_s(i) = c_{i,-} c_{i,+}`` and the d-wave form factor summing the
four neighbor bonds with alternating signs. For a fixed HS sample both
reduce to products of the two spin Green's functions (the spin species
are independent determinants):

.. math::

    \\langle c_{a-} c_{a+} c^\\dagger_{b+} c^\\dagger_{b-} \\rangle
        = G_+(a, b) \\, G_-(a, b)
"""

from __future__ import annotations

import numpy as np

from ..lattice import SquareLattice

__all__ = [
    "swave_pair_correlation",
    "swave_pair_structure_factor",
    "dwave_pair_structure_factor",
]


def swave_pair_correlation(
    lattice: SquareLattice, g_up: np.ndarray, g_dn: np.ndarray
) -> np.ndarray:
    """Per-sample ``P_s(r) = (1/N) sum_b G_+(b+r, b) G_-(b+r, b)``."""
    n = lattice.n_sites
    tt = lattice.translation_table
    rows = np.arange(n)[None, :]
    return (g_up[tt, rows] * g_dn[tt, rows]).mean(axis=1)


def swave_pair_structure_factor(
    lattice: SquareLattice, g_up: np.ndarray, g_dn: np.ndarray
) -> float:
    """Uniform (q = 0) s-wave pair structure factor ``sum_r P_s(r)``."""
    return float(swave_pair_correlation(lattice, g_up, g_dn).sum())


def dwave_pair_structure_factor(
    lattice: SquareLattice, g_up: np.ndarray, g_dn: np.ndarray
) -> float:
    """Uniform d_{x^2-y^2} pair structure factor.

    ``Delta_d(i) = (1/2) sum_delta f(delta) c_{i+delta,-} c_{i,+}`` with
    form factor +1 on x-bonds, -1 on y-bonds. The Wick contraction gives

        P_d = (1/4N) sum_{i,j} sum_{delta,delta'} f(delta) f(delta')
              G_+(i+delta, j+delta') G_-(i, j)

    evaluated here with the translation table (no Python double loop
    over sites — only the 4x4 form-factor pairs).
    """
    n = lattice.n_sites
    tt = lattice.translation_table

    # neighbor displacement site-indices and their form factors
    deltas = [
        (lattice.index(1, 0), 1.0),
        (lattice.index(-1, 0), 1.0),
        (lattice.index(0, 1), -1.0),
        (lattice.index(0, -1), -1.0),
    ]
    total = 0.0
    for d1, f1 in deltas:
        shift1 = tt[d1]  # i -> i + delta
        for d2, f2 in deltas:
            shift2 = tt[d2]
            # sum_{i,j} G_+(i+d1, j+d2) G_-(i, j)
            total += f1 * f2 * float(
                np.sum(g_up[np.ix_(shift1, shift2)] * g_dn)
            )
    return total / (4.0 * n)
