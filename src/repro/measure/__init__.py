"""Physical measurements and Monte Carlo statistics."""

from .charge import charge_density_correlation, charge_structure_factor
from .collector import MeasurementCollector
from .dynamic import (
    DynamicMeasurement,
    local_greens_tau,
    momentum_greens_tau,
    spectral_weight_proxy,
)
from .equal_time import (
    density_per_spin,
    double_occupancy,
    greens_displacement_average,
    kinetic_energy,
    total_density,
)
from .estimators import (
    Accumulator,
    BinnedEstimate,
    binned_statistics,
    integrated_autocorrelation_time,
    jackknife,
)
from .extrapolation import (
    ExtrapolationResult,
    extrapolate_finite_size,
    extrapolate_trotter,
    weighted_linear_fit,
)
from .momentum import momentum_distribution, momentum_distribution_spin_mean
from .pairing import (
    dwave_pair_structure_factor,
    swave_pair_correlation,
    swave_pair_structure_factor,
)
from .symmetric_trotter import HalfKineticTransform, symmetrized_greens
from .spin import (
    af_structure_factor,
    correlation_grid,
    longest_distance_correlation,
    spin_zz_correlation,
)

__all__ = [
    "Accumulator",
    "BinnedEstimate",
    "DynamicMeasurement",
    "ExtrapolationResult",
    "HalfKineticTransform",
    "MeasurementCollector",
    "symmetrized_greens",
    "charge_density_correlation",
    "charge_structure_factor",
    "dwave_pair_structure_factor",
    "extrapolate_finite_size",
    "extrapolate_trotter",
    "integrated_autocorrelation_time",
    "swave_pair_correlation",
    "swave_pair_structure_factor",
    "weighted_linear_fit",
    "local_greens_tau",
    "momentum_greens_tau",
    "spectral_weight_proxy",
    "af_structure_factor",
    "binned_statistics",
    "correlation_grid",
    "density_per_spin",
    "double_occupancy",
    "greens_displacement_average",
    "jackknife",
    "kinetic_energy",
    "longest_distance_correlation",
    "momentum_distribution",
    "momentum_distribution_spin_mean",
    "spin_zz_correlation",
    "total_density",
]
