"""Equal-time observables from the spin-resolved Green's functions.

Every function takes dense ``g_up, g_dn`` — the equal-time Green's
functions ``G_sigma(i, j) = <c_i c_j^dagger>`` for one HS-field sample —
and returns the corresponding *per-sample* estimate. Statistical
averaging lives in :mod:`repro.measure.estimators`; keeping the two
layers separate makes each observable a pure, unit-testable function.

Conventions: ``<c_i^dagger c_j> = delta_ij - G(j, i)``, so the local
density per spin is ``1 - G(i, i)``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..lattice import MultilayerLattice, SquareLattice

Lattice = Union[SquareLattice, MultilayerLattice]

__all__ = [
    "density_per_spin",
    "total_density",
    "double_occupancy",
    "kinetic_energy",
    "greens_displacement_average",
]


def density_per_spin(g: np.ndarray) -> np.ndarray:
    """Site-resolved density ``<n_{i,sigma}> = 1 - G(i, i)``."""
    return 1.0 - np.diag(g)


def total_density(g_up: np.ndarray, g_dn: np.ndarray) -> float:
    """Mean electron density rho in [0, 2]; 1 at half filling."""
    n = g_up.shape[0]
    return float((2.0 * n - np.trace(g_up) - np.trace(g_dn)) / n)


def double_occupancy(g_up: np.ndarray, g_dn: np.ndarray) -> float:
    """Mean double occupancy ``<n_up n_dn>`` (site-averaged).

    The two spin species live in independent determinants for a fixed HS
    configuration, so the per-sample expectation factorizes exactly.
    """
    n_up = density_per_spin(g_up)
    n_dn = density_per_spin(g_dn)
    return float(np.mean(n_up * n_dn))


def kinetic_energy(
    lattice: Lattice, g_up: np.ndarray, g_dn: np.ndarray, t: float = 1.0,
    t_perp: float = 1.0,
) -> float:
    """``<H_T>`` per site.

    ``H_T = -t sum_<ij>,sigma (c_i^dag c_j + h.c.)`` and
    ``<c_i^dag c_j> = -G(j, i)`` off-diagonal, so each bond contributes
    ``+t * (G(i,j) + G(j,i))`` per spin; the sum runs over the symmetric
    adjacency, with the inter-layer bonds weighted by t_perp.
    """
    if isinstance(lattice, MultilayerLattice):
        a = t * lattice.intra_layer_adjacency + t_perp * lattice.inter_layer_adjacency
    else:
        a = t * lattice.adjacency
    total = float(np.sum(a * (g_up + g_dn)))
    return total / lattice.n_sites


def greens_displacement_average(
    lattice: SquareLattice, g: np.ndarray, transpose: bool = False
) -> np.ndarray:
    """Translation-averaged Green's function indexed by displacement.

    ``out[r] = (1/N) sum_i G(i, i + r)`` (or ``G(i + r, i)`` when
    ``transpose``). This is the only O(N^2) reduction measurements need;
    it is one fancy-indexed gather plus a mean, no Python double loop.
    """
    n = lattice.n_sites
    tt = lattice.translation_table  # tt[r, i] = i + r
    rows = np.arange(n)[None, :]
    if transpose:
        vals = g[tt, rows]
    else:
        vals = g[rows, tt]
    return vals.mean(axis=1)
