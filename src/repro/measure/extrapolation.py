"""Finite-size and Trotter extrapolations.

Two systematic errors separate a DQMC number from the physical one, and
the paper leans on both extrapolations:

* **finite size** — Sec. V-A: "the correlation function at the longest
  distance C_zz(Lx/2, Ly/2) will need to be measured on different
  lattice sizes. The results are then extrapolated to the N -> infinity
  limit." Spin-wave theory gives the leading correction ~ 1/L (Huse's
  scaling), so the fit model is ``y(L) = y_inf + a / L``.
* **Trotter** — the discretization error is O(dtau^2) (Sec. II), so
  ``y(dtau) = y_0 + b * dtau^2``.

Both are weighted least-squares fits with parameter covariance, so the
extrapolated value carries an honest error bar combining the input
errors and the fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ExtrapolationResult",
    "weighted_linear_fit",
    "extrapolate_finite_size",
    "extrapolate_trotter",
]


@dataclass(frozen=True)
class ExtrapolationResult:
    """Extrapolated value with uncertainty and fit diagnostics."""

    value: float
    error: float
    slope: float
    slope_error: float
    chi2_per_dof: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.6f} +- {self.error:.6f} (chi2/dof {self.chi2_per_dof:.2f})"


def weighted_linear_fit(
    x: Sequence[float], y: Sequence[float], yerr: Sequence[float]
) -> ExtrapolationResult:
    """Weighted fit of ``y = a + b x``; returns a (the x = 0 intercept).

    Closed-form normal equations with weights ``1/yerr^2``; parameter
    errors from the inverse normal matrix. Needs >= 2 points; with
    exactly 2 the chi-square is 0/0 and reported as 0.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    yerr = np.asarray(yerr, dtype=np.float64)
    if x.shape != y.shape or x.shape != yerr.shape:
        raise ValueError("x, y, yerr must have matching shapes")
    if x.size < 2:
        raise ValueError("need at least two points to extrapolate")
    if np.any(yerr <= 0):
        raise ValueError("errors must be positive")
    w = 1.0 / yerr**2
    sw = w.sum()
    sx = (w * x).sum()
    sxx = (w * x * x).sum()
    sy = (w * y).sum()
    sxy = (w * x * y).sum()
    det = sw * sxx - sx * sx
    if det <= 0:
        raise ValueError("degenerate fit (identical x values?)")
    a = (sxx * sy - sx * sxy) / det
    b = (sw * sxy - sx * sy) / det
    var_a = sxx / det
    var_b = sw / det
    resid = y - (a + b * x)
    dof = x.size - 2
    chi2 = float((w * resid**2).sum())
    return ExtrapolationResult(
        value=float(a),
        error=float(np.sqrt(var_a)),
        slope=float(b),
        slope_error=float(np.sqrt(var_b)),
        chi2_per_dof=chi2 / dof if dof > 0 else 0.0,
    )


def extrapolate_finite_size(
    linear_sizes: Sequence[float],
    values: Sequence[float],
    errors: Sequence[float],
) -> ExtrapolationResult:
    """``y(L) = y_inf + a / L`` — the bulk (N -> inf) limit.

    ``linear_sizes`` are the lattice extents L (not site counts); the
    paper's Fig 7 discussion extrapolates C_zz(L/2, L/2) this way to
    decide whether long-range AF order survives the bulk limit.
    """
    x = 1.0 / np.asarray(linear_sizes, dtype=np.float64)
    return weighted_linear_fit(x, values, errors)


def extrapolate_trotter(
    dtaus: Sequence[float],
    values: Sequence[float],
    errors: Sequence[float],
) -> ExtrapolationResult:
    """``y(dtau) = y_0 + b dtau^2`` — the continuum-time limit."""
    x = np.asarray(dtaus, dtype=np.float64) ** 2
    return weighted_linear_fit(x, values, errors)
