"""z-component spin-spin correlations (paper Fig 7) and structure factors.

.. math::

    C_{zz}(r) = \\frac{1}{N} \\sum_{r'}
        \\langle (n_{r+r',+} - n_{r+r',-}) (n_{r',+} - n_{r',-}) \\rangle

For a fixed HS configuration the two spin species are independent
determinants, so Wick's theorem gives per sample

.. math::

    \\langle n_{a\\sigma} n_{b\\sigma} \\rangle =
        n_a n_b + (\\delta_{ab} - G_\\sigma(b,a)) G_\\sigma(a,b),
    \\qquad
    \\langle n_{a+} n_{b-} \\rangle = n_{a+} n_{b-}

and the cross terms carry no contraction. At half filling with U > 0 the
result is the antiferromagnetic chessboard of Fig 7: ``C_zz > 0`` on the
same sublattice, ``< 0`` on the opposite one.
"""

from __future__ import annotations

import numpy as np

from ..lattice import SquareLattice, fourier_two_point
from .equal_time import density_per_spin

__all__ = [
    "spin_zz_correlation",
    "af_structure_factor",
    "longest_distance_correlation",
    "correlation_grid",
]


def spin_zz_correlation(
    lattice: SquareLattice, g_up: np.ndarray, g_dn: np.ndarray
) -> np.ndarray:
    """Per-sample ``C_zz(r)`` indexed by displacement site index.

    ``C_zz(0)`` is the local moment ``<m_z^2>``; the r = (lx/2, ly/2)
    entry is the longest-distance correlation used for bulk-limit
    extrapolation in the paper's Sec. V-A discussion.
    """
    n = lattice.n_sites
    tt = lattice.translation_table  # tt[r, b] = b + r
    m = density_per_spin(g_up) - density_per_spin(g_dn)

    # Disconnected moment-moment part: (1/N) sum_b m_{b+r} m_b.
    out = (m[tt] * m[None, :]).mean(axis=1)

    # Same-spin contractions: (1/N) sum_b (delta_ab - G(b,a)) G(a,b),
    # a = b + r. The delta contributes only at r = 0.
    rows = np.arange(n)[None, :]
    for g in (g_up, g_dn):
        gab = g[tt, rows]  # G(a, b) with a = b + r
        gba = g[rows, tt]  # G(b, a)
        out -= (gba * gab).mean(axis=1)
    out[0] += (
        np.diag(g_up).mean() + np.diag(g_dn).mean()
    )  # delta_ab G(a,a) terms
    return out


def af_structure_factor(lattice: SquareLattice, czz: np.ndarray) -> float:
    """Antiferromagnetic structure factor ``S(pi, pi) = sum_r e^{i pi.r} C_zz(r)``.

    Only defined (as the AF ordering vector) for even lattice dimensions;
    grows linearly with N in an ordered phase.
    """
    if lattice.lx % 2 or lattice.ly % 2:
        raise ValueError("(pi, pi) requires even lattice dimensions")
    ck = fourier_two_point(lattice, czz)
    return float(ck[lattice.index(lattice.lx // 2, lattice.ly // 2)])


def longest_distance_correlation(lattice: SquareLattice, czz: np.ndarray) -> float:
    """``C_zz(lx/2, ly/2)`` — the paper's bulk-order extrapolation input."""
    return float(czz[lattice.index(lattice.lx // 2, lattice.ly // 2)])


def correlation_grid(lattice: SquareLattice, czz: np.ndarray) -> np.ndarray:
    """Reshape C_zz to an (ly, lx) grid with displacement (0,0) centered.

    Axes run over displacements ``-l/2+1 .. l/2`` (after fftshift-style
    rolling), matching the paper's Fig 7 real-space maps.
    """
    grid = np.asarray(czz).reshape(lattice.ly, lattice.lx)
    return np.roll(
        grid,
        shift=(lattice.ly // 2 - 1 if lattice.ly > 1 else 0,
               lattice.lx // 2 - 1 if lattice.lx > 1 else 0),
        axis=(0, 1),
    )
