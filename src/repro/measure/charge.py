"""Charge (density-density) correlations and structure factor.

The charge channel complements the spin channel of paper Fig 7: at half
filling with repulsive U the *spin* correlations grow while *charge*
fluctuations are suppressed (charge gap), a standard cross-check that a
Hubbard simulation is in the right regime.

.. math::

    C_{nn}(r) = \\frac{1}{N} \\sum_{r'}
        \\big( \\langle n_{r+r'} n_{r'} \\rangle
             - \\langle n_{r+r'} \\rangle \\langle n_{r'} \\rangle \\big)

with ``n = n_+ + n_-``. Wick for a fixed HS sample: same-spin pairs
carry the exchange contraction, opposite-spin pairs factorize (but the
*connected* part subtracts the global mean-density product, sample-
averaged by the estimator downstream).
"""

from __future__ import annotations

import numpy as np

from ..lattice import SquareLattice, fourier_two_point
from .equal_time import density_per_spin

__all__ = [
    "charge_density_correlation",
    "charge_structure_factor",
]


def charge_density_correlation(
    lattice: SquareLattice, g_up: np.ndarray, g_dn: np.ndarray
) -> np.ndarray:
    """Per-sample connected ``C_nn(r)``, indexed by displacement.

    "Connected" here subtracts the product of the *sample's* site
    densities — the standard per-configuration estimator; the Monte
    Carlo average then converges to the textbook connected correlator up
    to O(1/sweeps) cross-correlation terms that vanish in the average.
    """
    n = lattice.n_sites
    tt = lattice.translation_table
    rows = np.arange(n)[None, :]
    dens = density_per_spin(g_up) + density_per_spin(g_dn)

    # disconnected piece <n_a><n_b>, subtracted at the end
    out = (dens[tt] * dens[None, :]).mean(axis=1)
    # exchange contractions, same spin only
    for g in (g_up, g_dn):
        gab = g[tt, rows]
        gba = g[rows, tt]
        out -= (gba * gab).mean(axis=1)
    out[0] += np.diag(g_up).mean() + np.diag(g_dn).mean()
    # connect: subtract the sample's mean-density square
    out -= dens.mean() ** 2
    return out


def charge_structure_factor(
    lattice: SquareLattice, cnn: np.ndarray, q_index: int | None = None
) -> float:
    """``N(q) = sum_r e^{-i q r} C_nn(r)`` at one momentum.

    Defaults to the zone-corner ``q = (pi, pi)`` (requires even
    extents), mirroring the AF spin structure factor so the two channels
    are directly comparable.
    """
    ck = fourier_two_point(lattice, cnn)
    if q_index is None:
        if lattice.lx % 2 or lattice.ly % 2:
            raise ValueError("(pi, pi) requires even lattice dimensions")
        q_index = lattice.index(lattice.lx // 2, lattice.ly // 2)
    return float(ck[q_index])
