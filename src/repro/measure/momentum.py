"""Momentum distribution ``<n_k>`` (paper Figs 5 and 6).

.. math::

    \\langle n_{k\\sigma} \\rangle
      = \\frac{1}{N} \\sum_{r,r'} e^{i k (r - r')}
        \\langle c^\\dagger_{r\\sigma} c_{r'\\sigma} \\rangle
      = \\sum_d e^{-i k d} \\Big( \\delta_{d0}
          - \\frac{1}{N} \\sum_r G_\\sigma(r + d, r) \\Big)

computed as one translation-averaged gather plus a 2D FFT. The result is
indexed like lattice momenta (see :mod:`repro.lattice.kspace`).
"""

from __future__ import annotations

import numpy as np

from ..lattice import SquareLattice, fourier_two_point
from .equal_time import greens_displacement_average

__all__ = ["momentum_distribution", "momentum_distribution_spin_mean"]


def momentum_distribution(lattice: SquareLattice, g: np.ndarray) -> np.ndarray:
    """``<n_k>`` for one spin species, indexed like lattice momenta.

    Per-sample values are not confined to [0, 1] — only the Monte Carlo
    average is a physical occupancy.
    """
    n = lattice.n_sites
    cdag_c = -greens_displacement_average(lattice, g, transpose=True)
    cdag_c[0] += 1.0  # the delta_{d,0} term
    nk = fourier_two_point(lattice, cdag_c)
    if nk.shape != (n,):
        raise AssertionError("momentum grid size mismatch")
    return nk


def momentum_distribution_spin_mean(
    lattice: SquareLattice, g_up: np.ndarray, g_dn: np.ndarray
) -> np.ndarray:
    """Spin-averaged ``<n_k>`` — the quantity the paper plots."""
    return 0.5 * (
        momentum_distribution(lattice, g_up)
        + momentum_distribution(lattice, g_dn)
    )
