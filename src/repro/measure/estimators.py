"""Statistical estimators: binning analysis and jackknife resampling.

Monte Carlo samples along a Markov chain are autocorrelated, so the naive
standard error underestimates the true uncertainty. The standard remedy
(used by QUEST) is *binning*: group consecutive samples into bins, treat
bin means as (approximately) independent, and quote the error of the bin
means. Jackknife over bins handles nonlinear functions of averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

__all__ = [
    "BinnedEstimate",
    "binned_statistics",
    "integrated_autocorrelation_time",
    "jackknife",
    "Accumulator",
]


@dataclass(frozen=True)
class BinnedEstimate:
    """Mean and one-sigma error of a (possibly array-valued) observable."""

    mean: np.ndarray
    error: np.ndarray
    n_bins: int
    n_samples: int

    @property
    def scalar(self) -> float:
        """The mean as a float (raises for array observables)."""
        if np.ndim(self.mean) != 0:
            raise ValueError("observable is array-valued")
        return float(self.mean)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if np.ndim(self.mean) == 0:
            return f"{float(self.mean):.6f} +- {float(self.error):.6f}"
        return f"<array[{np.shape(self.mean)}] over {self.n_bins} bins>"


def binned_statistics(samples: np.ndarray, n_bins: int = 16) -> BinnedEstimate:
    """Binning analysis of a sample series (axis 0 = Monte Carlo time).

    Trailing samples that do not fill a whole bin are dropped. With fewer
    samples than ``2 * n_bins`` the bin count shrinks so each bin holds at
    least two samples; with a single sample the error is reported as inf.
    """
    samples = np.asarray(samples, dtype=np.float64)
    n = samples.shape[0]
    if n == 0:
        raise ValueError("no samples")
    if n == 1:
        return BinnedEstimate(
            mean=samples[0],
            error=np.full_like(samples[0], np.inf, dtype=np.float64),
            n_bins=1,
            n_samples=1,
        )
    n_bins = max(2, min(n_bins, n // 2))
    per_bin = n // n_bins
    used = n_bins * per_bin
    shaped = samples[:used].reshape((n_bins, per_bin) + samples.shape[1:])
    bin_means = shaped.mean(axis=1)
    mean = bin_means.mean(axis=0)
    # Standard error of the mean of the bin means.
    var = bin_means.var(axis=0, ddof=1)
    err = np.sqrt(var / n_bins)
    return BinnedEstimate(mean=mean, error=err, n_bins=n_bins, n_samples=n)


def integrated_autocorrelation_time(
    samples: np.ndarray, window_factor: float = 6.0
) -> float:
    """Integrated autocorrelation time with Sokal's automatic window.

    .. math::

        \\tau_{int} = \\tfrac{1}{2} + \\sum_{t=1}^{W} \\rho(t)

    where the window W is the smallest t with ``t >= window_factor *
    tau_int(t)`` (self-consistent truncation; Sokal's recipe). For iid
    samples tau = 1/2; the effective sample count is ``n / (2 tau)``,
    and a binned error bar is honest once bins exceed ~2 tau. Scalar
    series only.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("autocorrelation needs a scalar series")
    n = x.size
    if n < 4:
        raise ValueError("series too short")
    x = x - x.mean()
    var = float(x @ x) / n
    if var == 0.0:
        return 0.5  # constant series: iid-like by convention
    tau = 0.5
    for t in range(1, n // 2):
        rho = float(x[:-t] @ x[t:]) / ((n - t) * var)
        tau += rho
        if t >= window_factor * tau:
            break
    return max(tau, 0.5)


def jackknife(
    samples: np.ndarray,
    func: Callable[[np.ndarray], np.ndarray],
    n_bins: int = 16,
) -> BinnedEstimate:
    """Jackknife estimate of ``func(mean(samples))`` with bias-corrected error.

    ``func`` receives the mean over Monte Carlo time (axis 0) of a sample
    block and may return a scalar or array. Used for nonlinear combinations
    such as sign-weighted ratios or structure-factor ratios.
    """
    samples = np.asarray(samples, dtype=np.float64)
    n = samples.shape[0]
    if n < 2:
        full = np.asarray(func(samples.mean(axis=0)))
        return BinnedEstimate(
            mean=full, error=np.full_like(full, np.inf, dtype=np.float64),
            n_bins=1, n_samples=n,
        )
    n_bins = max(2, min(n_bins, n // 2))
    per_bin = n // n_bins
    used = n_bins * per_bin
    shaped = samples[:used].reshape((n_bins, per_bin) + samples.shape[1:])
    bin_sums = shaped.sum(axis=1)
    total = bin_sums.sum(axis=0)
    full_mean = np.asarray(func(total / used))
    # Leave-one-bin-out estimates.
    thetas = np.array(
        [
            func((total - bin_sums[b]) / (used - per_bin))
            for b in range(n_bins)
        ]
    )
    theta_bar = thetas.mean(axis=0)
    var = (n_bins - 1) / n_bins * np.sum((thetas - theta_bar) ** 2, axis=0)
    bias_corrected = n_bins * full_mean - (n_bins - 1) * theta_bar
    return BinnedEstimate(
        mean=bias_corrected, error=np.sqrt(var), n_bins=n_bins, n_samples=n
    )


class Accumulator:
    """Collects named per-measurement samples and reduces them at the end.

    Observables may be scalars or numpy arrays; all samples of one name
    must share a shape. ``reduce()`` returns a dict of
    :class:`BinnedEstimate`.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[np.ndarray]] = {}

    def add(self, name: str, value) -> None:
        self._samples.setdefault(name, []).append(np.asarray(value, dtype=np.float64))

    def extend(self, other: "Accumulator") -> None:
        for name, vals in other._samples.items():
            self._samples.setdefault(name, []).extend(vals)

    def names(self) -> Sequence[str]:
        return tuple(self._samples)

    def n_samples(self, name: str) -> int:
        return len(self._samples.get(name, ()))

    def series(self, name: str) -> np.ndarray:
        """The raw sample series (Monte Carlo time on axis 0).

        A registered observable with zero samples yields an empty
        ``(0,)`` array (its per-sample shape is not yet known).
        """
        if name not in self._samples:
            raise KeyError(name)
        vals = self._samples[name]
        if not vals:
            return np.empty((0,), dtype=np.float64)
        return np.stack(vals, axis=0)

    # -- checkpoint restore API ---------------------------------------------

    def clear(self) -> None:
        """Drop every observable (used before a checkpoint restore)."""
        self._samples.clear()

    def restore_series(self, name: str, samples) -> None:
        """Replace ``name``'s series with ``samples`` (axis 0 = Monte
        Carlo time; an empty sequence registers the observable with zero
        samples).

        The public surface :func:`repro.dqmc.load_checkpoint` restores
        through, so checkpoint code never reaches into accumulator
        internals — and a zero-sample observable survives a save/load
        round trip instead of vanishing.
        """
        arr = np.asarray(samples, dtype=np.float64)
        self._samples[name] = [arr[j] for j in range(arr.shape[0])]

    def reduce(self, n_bins: int = 16) -> Dict[str, BinnedEstimate]:
        """Binned estimates of every observable holding >= 1 sample
        (zero-sample names — e.g. just restored from a checkpoint taken
        before the first measurement — are skipped, not errors)."""
        return {
            name: binned_statistics(self.series(name), n_bins=n_bins)
            for name, vals in self._samples.items()
            if vals
        }
