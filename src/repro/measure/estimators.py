"""Statistical estimators: binning analysis and jackknife resampling.

Monte Carlo samples along a Markov chain are autocorrelated, so the naive
standard error underestimates the true uncertainty. The standard remedy
(used by QUEST) is *binning*: group consecutive samples into bins, treat
bin means as (approximately) independent, and quote the error of the bin
means. Jackknife over bins handles nonlinear functions of averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

__all__ = [
    "BinnedEstimate",
    "binned_statistics",
    "integrated_autocorrelation_time",
    "jackknife",
    "Accumulator",
]


@dataclass(frozen=True)
class BinnedEstimate:
    """Mean and one-sigma error of a (possibly array-valued) observable."""

    mean: np.ndarray
    error: np.ndarray
    n_bins: int
    n_samples: int

    @property
    def scalar(self) -> float:
        """The mean as a float (raises for array observables)."""
        if np.ndim(self.mean) != 0:
            raise ValueError(
                f"observable is array-valued (shape "
                f"{np.shape(self.mean)}); index into .mean/.error instead "
                "of asking for a scalar"
            )
        return float(self.mean)

    @property
    def relative_error(self):
        """``|error / mean|`` — 0-d float for scalars, array otherwise.

        Safe at zero mean: a zero mean with a nonzero error yields inf
        (the relative error genuinely diverges), a zero mean with zero
        error yields 0.0, and no RuntimeWarning is emitted either way.
        """
        mean = np.asarray(self.mean, dtype=np.float64)
        err = np.asarray(self.error, dtype=np.float64)
        zero = mean == 0.0
        rel = np.abs(err) / np.where(zero, 1.0, np.abs(mean))
        rel = np.where(zero, np.where(err == 0.0, 0.0, np.inf), rel)
        return float(rel) if rel.ndim == 0 else rel

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if np.ndim(self.mean) == 0:
            return f"{float(self.mean):.6f} +- {float(self.error):.6f}"
        return (
            f"<array{np.shape(self.mean)} observable over "
            f"{self.n_bins} bins; use .mean/.error>"
        )


def binned_statistics(samples: np.ndarray, n_bins: int = 16) -> BinnedEstimate:
    """Binning analysis of a sample series (axis 0 = Monte Carlo time).

    Trailing samples that do not fill a whole bin are dropped. With fewer
    samples than ``2 * n_bins`` the bin count shrinks so each bin holds at
    least two samples; with a single sample the error is reported as inf.
    """
    samples = np.asarray(samples, dtype=np.float64)
    n = samples.shape[0]
    if n == 0:
        raise ValueError("no samples")
    if n == 1:
        return BinnedEstimate(
            mean=samples[0],
            error=np.full_like(samples[0], np.inf, dtype=np.float64),
            n_bins=1,
            n_samples=1,
        )
    n_bins = max(2, min(n_bins, n // 2))
    per_bin = n // n_bins
    used = n_bins * per_bin
    shaped = samples[:used].reshape((n_bins, per_bin) + samples.shape[1:])
    bin_means = shaped.mean(axis=1)
    mean = bin_means.mean(axis=0)
    # Standard error of the mean of the bin means.
    var = bin_means.var(axis=0, ddof=1)
    err = np.sqrt(var / n_bins)
    return BinnedEstimate(mean=mean, error=err, n_bins=n_bins, n_samples=n)


def integrated_autocorrelation_time(
    samples: np.ndarray, window_factor: float = 6.0
) -> float:
    """Integrated autocorrelation time with Sokal's automatic window.

    .. math::

        \\tau_{int} = \\tfrac{1}{2} + \\sum_{t=1}^{W} \\rho(t)

    where the window W is the smallest t with ``t >= window_factor *
    tau_int(t)`` (self-consistent truncation; Sokal's recipe). For iid
    samples tau = 1/2; the effective sample count is ``n / (2 tau)``,
    and a binned error bar is honest once bins exceed ~2 tau. Scalar
    series only.

    The autocovariances for every lag come from one FFT round trip
    (Wiener-Khinchin: zero-pad to >= 2n so the circular correlation
    equals the linear one), turning the former O(n * W) direct-sum
    loop into O(n log n) regardless of how wide the self-consistent
    window ends up; the windowed summation itself is unchanged, so the
    result matches the direct sum to floating-point roundoff.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("autocorrelation needs a scalar series")
    n = x.size
    if n < 4:
        raise ValueError("series too short")
    x = x - x.mean()
    nfft = 1 << (2 * n - 1).bit_length()
    f = np.fft.rfft(x, nfft)
    # acov[t] = sum_i x[i] x[i+t], every lag at once
    acov = np.fft.irfft(f * np.conj(f), nfft)[:n]
    var = acov[0] / n
    if var == 0.0:
        return 0.5  # constant series: iid-like by convention
    tau = 0.5
    for t in range(1, n // 2):
        rho = acov[t] / ((n - t) * var)  # same unbiased normalization
        tau += rho
        if t >= window_factor * tau:
            break
    return max(tau, 0.5)


def jackknife(
    samples: np.ndarray,
    func: Callable[[np.ndarray], np.ndarray],
    n_bins: int = 16,
) -> BinnedEstimate:
    """Jackknife estimate of ``func(mean(samples))`` with bias-corrected error.

    ``func`` receives the mean over Monte Carlo time (axis 0) of a sample
    block and may return a scalar or array. Used for nonlinear combinations
    such as sign-weighted ratios or structure-factor ratios.
    """
    samples = np.asarray(samples, dtype=np.float64)
    n = samples.shape[0]
    if n < 2:
        full = np.asarray(func(samples.mean(axis=0)))
        return BinnedEstimate(
            mean=full, error=np.full_like(full, np.inf, dtype=np.float64),
            n_bins=1, n_samples=n,
        )
    n_bins = max(2, min(n_bins, n // 2))
    per_bin = n // n_bins
    used = n_bins * per_bin
    shaped = samples[:used].reshape((n_bins, per_bin) + samples.shape[1:])
    bin_sums = shaped.sum(axis=1)
    total = bin_sums.sum(axis=0)
    full_mean = np.asarray(func(total / used))
    # Leave-one-bin-out estimates.
    thetas = np.array(
        [
            func((total - bin_sums[b]) / (used - per_bin))
            for b in range(n_bins)
        ]
    )
    theta_bar = thetas.mean(axis=0)
    var = (n_bins - 1) / n_bins * np.sum((thetas - theta_bar) ** 2, axis=0)
    bias_corrected = n_bins * full_mean - (n_bins - 1) * theta_bar
    return BinnedEstimate(
        mean=bias_corrected, error=np.sqrt(var), n_bins=n_bins, n_samples=n
    )


class Accumulator:
    """Collects named per-measurement samples and reduces them at the end.

    Observables may be scalars or numpy arrays; all samples of one name
    must share a shape. ``reduce()`` returns a dict of
    :class:`BinnedEstimate`.

    The constant-memory twin is
    :class:`repro.stats.StreamingAccumulator`; code that must work with
    either mode can branch on the ``streaming`` class attribute.
    """

    streaming = False

    def __init__(self) -> None:
        self._samples: Dict[str, List[np.ndarray]] = {}

    def add(self, name: str, value) -> None:
        self._samples.setdefault(name, []).append(np.asarray(value, dtype=np.float64))

    def extend(self, other: "Accumulator") -> None:
        for name, vals in other._samples.items():
            self._samples.setdefault(name, []).extend(vals)

    def names(self) -> Sequence[str]:
        return tuple(self._samples)

    def n_samples(self, name: str) -> int:
        return len(self._samples.get(name, ()))

    def series(self, name: str) -> np.ndarray:
        """The raw sample series (Monte Carlo time on axis 0).

        A registered observable with zero samples yields an empty
        ``(0,)`` array (its per-sample shape is not yet known).
        """
        if name not in self._samples:
            raise KeyError(name)
        vals = self._samples[name]
        if not vals:
            return np.empty((0,), dtype=np.float64)
        return np.stack(vals, axis=0)

    def estimate(self, name: str, n_bins: int = 16) -> BinnedEstimate:
        """Binned estimate of one observable (interface parity with
        :meth:`repro.stats.StreamingAccumulator.estimate`)."""
        return binned_statistics(self.series(name), n_bins=n_bins)

    def discard_prefix(self, n: int) -> None:
        """Drop the first ``n`` samples of every observable.

        The equilibration cut: measurements recorded before the chain
        forgot its initial condition are removed from every series (a
        series shorter than ``n`` is emptied). Series are assumed to
        share a cadence — when they do not (per-sweep dynamic
        observables alongside per-measurement scalars), the same sample
        count is cut from each, which is conservative for the
        lower-cadence series.
        """
        if n < 0:
            raise ValueError("cannot discard a negative prefix")
        if n == 0:
            return
        for vals in self._samples.values():
            del vals[:n]

    # -- checkpoint restore API ---------------------------------------------

    def clear(self) -> None:
        """Drop every observable (used before a checkpoint restore)."""
        self._samples.clear()

    def restore_series(self, name: str, samples) -> None:
        """Replace ``name``'s series with ``samples`` (axis 0 = Monte
        Carlo time; an empty sequence registers the observable with zero
        samples).

        The public surface :func:`repro.dqmc.load_checkpoint` restores
        through, so checkpoint code never reaches into accumulator
        internals — and a zero-sample observable survives a save/load
        round trip instead of vanishing.
        """
        arr = np.asarray(samples, dtype=np.float64)
        self._samples[name] = [arr[j] for j in range(arr.shape[0])]

    def reduce(self, n_bins: int = 16) -> Dict[str, BinnedEstimate]:
        """Binned estimates of every observable holding >= 1 sample
        (zero-sample names — e.g. just restored from a checkpoint taken
        before the first measurement — are skipped, not errors)."""
        return {
            name: binned_statistics(self.series(name), n_bins=n_bins)
            for name, vals in self._samples.items()
            if vals
        }
