"""Symmetric-Trotter measurement correction.

The sampler uses the asymmetric split ``B_l = V_l e^{-dtau K}`` (paper
Eq. 2). The *symmetric* split ``B_l = e^{-dtau K/2} V_l e^{-dtau K/2}``
has the same partition function — by cyclic invariance of the trace,

    prod_l e^{-K/2} V_l e^{-K/2}  =  e^{-K/2} [ prod_l V_l e^{-K} ] e^{+K/2}

is a similarity transform of the asymmetric chain — so the Markov chain
and all its weights are *identical*. What changes is the Green's
function the observables should be evaluated with:

    G_sym = e^{-dtau K / 2} G_asym e^{+dtau K / 2}

Measuring through ``G_sym`` upgrades equal-time observables that do not
commute with K (kinetic energy, momentum distribution, any off-site
correlator) to the symmetric split's smaller Trotter-error prefactor —
for free, one GEMM pair per measurement. Density-like diagonal
observables in the K eigenbasis are unaffected at half filling.
"""

from __future__ import annotations

import numpy as np

from ..hamiltonian import BMatrixFactory

__all__ = ["HalfKineticTransform", "symmetrized_greens"]


class HalfKineticTransform:
    """Caches ``exp(-+dtau K / 2)`` and applies the similarity transform."""

    def __init__(self, factory: BMatrixFactory):
        w, v = np.linalg.eigh(np.asarray(factory.model.kinetic_matrix()))
        half = factory.model.dtau / 2.0
        self._fwd = (v * np.exp(-half * w)) @ v.T
        self._bwd = (v * np.exp(half * w)) @ v.T

    def apply(self, g: np.ndarray) -> np.ndarray:
        """``e^{-dtau K/2} G e^{+dtau K/2}``."""
        return self._fwd @ g @ self._bwd


def symmetrized_greens(
    factory: BMatrixFactory, g: np.ndarray
) -> np.ndarray:
    """One-shot symmetric-Trotter Green's function (builds the transform
    each call; hold a :class:`HalfKineticTransform` in measurement loops).

    Measured behaviour (pinned in tests against exact enumeration + ED
    on the dimer): observables that commute with K — kinetic energy,
    ``<n_k>`` — are *invariant* under the transform (the similarity
    commutes through them); site-diagonal observables like the double
    occupancy keep an O(dtau^2) error of reduced magnitude and
    *opposite sign*, so the average of the asymmetric and symmetric
    estimates cancels most of the quadratic term on these observables.
    """
    return HalfKineticTransform(factory).apply(g)
