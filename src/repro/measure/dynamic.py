"""Dynamic (imaginary-time-displaced) observables.

Built on :mod:`repro.core.displaced`. The workhorse quantity is the
momentum-resolved imaginary-time Green's function

.. math::

    G(k, \\tau) = \\frac{1}{N} \\sum_{r, r'} e^{-i k (r - r')}
                  \\, G(\\tau)(r, r')

from which two standard DQMC diagnostics follow:

* the **local Green's function** ``G_loc(tau) = (1/N) Tr G(tau)``, and
* the **Fermi-level spectral weight proxy** ``beta * G(k, beta/2)`` —
  the mid-interval value of the imaginary-time correlator filters the
  spectral function A(k, omega) with a ~T-wide window around omega = 0,
  so a large value at a momentum k marks a gapless (Fermi-surface)
  point, a small value a gapped one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.displaced import displaced_greens
from ..hamiltonian import BMatrixFactory, HSField
from ..lattice import SquareLattice, fourier_two_point
from .equal_time import greens_displacement_average

__all__ = [
    "momentum_greens_tau",
    "local_greens_tau",
    "spectral_weight_proxy",
    "DynamicMeasurement",
]


def momentum_greens_tau(
    lattice: SquareLattice, g_tau: np.ndarray
) -> np.ndarray:
    """``G(k, tau)`` for every allowed momentum, from a dense G(tau).

    One translation-averaged gather + FFT, indexed like lattice momenta.
    """
    avg = greens_displacement_average(lattice, g_tau, transpose=True)
    return fourier_two_point(lattice, avg)


def local_greens_tau(g_tau: np.ndarray) -> float:
    """Site-averaged ``G_loc(tau) = (1/N) Tr G(tau)``."""
    n = g_tau.shape[0]
    return float(np.trace(g_tau) / n)


def spectral_weight_proxy(
    lattice: SquareLattice, g_half_beta: np.ndarray, beta: float
) -> np.ndarray:
    """``beta * G(k, beta/2)`` per momentum — the gaplessness marker."""
    return beta * momentum_greens_tau(lattice, g_half_beta)


class DynamicMeasurement:
    """Samples G(k, tau) on a tau grid during a simulation.

    Stateless per call: hand it the factory/field (typically the
    engine's) and it evaluates the displaced functions with the stable
    two-chain inversion. Expensive — O(L N^3) per tau point — so the
    default grid is just {dtau, beta/2, beta}.

    Parameters
    ----------
    lattice:
        Geometry for the momentum transform.
    tau_slices:
        Displacement slice indices to sample (0-based, ``l`` meaning
        ``tau = (l+1) dtau``); default picks first / middle / last.
    """

    def __init__(
        self,
        lattice: SquareLattice,
        tau_slices: Optional[Sequence[int]] = None,
    ):
        self.lattice = lattice
        self.tau_slices = None if tau_slices is None else list(tau_slices)

    def grid(self, n_slices: int) -> List[int]:
        if self.tau_slices is not None:
            return self.tau_slices
        return sorted({0, n_slices // 2 - 1, n_slices - 1})

    def measure(
        self,
        factory: BMatrixFactory,
        field: HSField,
        method: str = "prepivot",
    ) -> dict:
        """One sample: ``{"tau": array, "g_k_tau": (n_tau, N) array,
        "g_loc_tau": (n_tau,) array}`` averaged over spins."""
        slices = self.grid(field.n_slices)
        taus = np.array([(l + 1) * factory.model.dtau for l in slices])
        gk = np.zeros((len(slices), self.lattice.n_sites))
        gloc = np.zeros(len(slices))
        for sigma in (1, -1):
            for j, l in enumerate(slices):
                g_tau = displaced_greens(factory, field, sigma, l, method)
                gk[j] += 0.5 * momentum_greens_tau(self.lattice, g_tau)
                gloc[j] += 0.5 * local_greens_tau(g_tau)
        return {"tau": taus, "g_k_tau": gk, "g_loc_tau": gloc}
