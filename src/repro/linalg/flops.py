"""Floating-point operation and data-movement accounting.

The paper reports kernel performance as GFlops rates (Figs 1, 4, 9, 10).
Wall-clock alone cannot reproduce those plots because a rate needs a flop
count for the *nominal* algorithm, independent of implementation detail.
This module provides the standard dense linear-algebra flop formulas used
throughout LAPACK working notes, plus a lightweight tally that algorithm
implementations feed so benchmark harnesses can convert elapsed time into
the same GFlops figure of merit the paper plots.

Counts follow the conventions of the LAPACK timing routines: one add, one
multiply each count as one flop; an ``n x n`` GEMM is ``2 n^3``.

The tally is intentionally *not* thread-safe per-operation (it is a plain
accumulator); benchmarks drive one engine at a time, and BLAS-internal
threading does not change the nominal count.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = [
    "gemm_flops",
    "qr_flops",
    "qrp_flops",
    "lu_solve_flops",
    "scale_flops",
    "norms_flops",
    "FlopTally",
    "tally",
    "current_tally",
]


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flops of ``C <- A @ B`` with A (m x k), B (k x n)."""
    return 2 * m * n * k


def qr_flops(m: int, n: int) -> int:
    """Flops of an unpivoted Householder QR of an m x n matrix.

    Standard count ``2 n^2 (m - n/3)`` for the factorization plus
    ``4 (m n^2 - n^3 / 3)`` to form Q explicitly, matching how the
    stratification algorithms consume the factor (they always need Q).
    """
    fact = 2 * n * n * (m - n / 3.0)
    formq = 4 * (m * n * n - n**3 / 3.0)
    return int(fact + formq)


def qrp_flops(m: int, n: int) -> int:
    """Flops of a column-pivoted QR (same leading-order count as QR).

    Pivoting adds O(m n) norm updates — negligible in flops, dominant in
    memory traffic; that asymmetry is exactly the paper's point.
    """
    return qr_flops(m, n) + 2 * m * n


def lu_solve_flops(n: int, nrhs: int) -> int:
    """Flops of an LU factorization plus triangular solves for nrhs RHS."""
    return int(2.0 * n**3 / 3.0 + 2.0 * n * n * nrhs)


def scale_flops(m: int, n: int) -> int:
    """Flops of a one-sided diagonal scaling of an m x n matrix."""
    return m * n


def norms_flops(m: int, n: int) -> int:
    """Flops of computing n column 2-norms of an m x n matrix."""
    return 2 * m * n


@dataclass
class FlopTally:
    """Accumulates nominal flops and bytes moved, by named category.

    Categories mirror the phase names used in Table I of the paper so the
    profiler and the flop accounting can be cross-referenced.
    """

    flops: Dict[str, float] = field(default_factory=dict)
    bytes_moved: Dict[str, float] = field(default_factory=dict)

    def add(self, category: str, flops: float, nbytes: float = 0.0) -> None:
        self.flops[category] = self.flops.get(category, 0.0) + flops
        if nbytes:
            self.bytes_moved[category] = (
                self.bytes_moved.get(category, 0.0) + nbytes
            )

    @property
    def total_flops(self) -> float:
        return float(sum(self.flops.values()))

    @property
    def total_bytes(self) -> float:
        return float(sum(self.bytes_moved.values()))

    def merge(self, other: "FlopTally") -> None:
        for k, v in other.flops.items():
            self.flops[k] = self.flops.get(k, 0.0) + v
        for k, v in other.bytes_moved.items():
            self.bytes_moved[k] = self.bytes_moved.get(k, 0.0) + v

    def reset(self) -> None:
        self.flops.clear()
        self.bytes_moved.clear()

    def gflops_rate(self, seconds: float) -> float:
        """Nominal GFlops rate given an elapsed wall-clock time."""
        if seconds <= 0:
            return 0.0
        return self.total_flops / seconds / 1e9


_state = threading.local()


def current_tally() -> FlopTally | None:
    """The tally installed by the innermost :func:`tally` context, if any."""
    return getattr(_state, "tally", None)


def record(category: str, flops: float, nbytes: float = 0.0) -> None:
    """Record flops against the active tally (no-op when none is active)."""
    t = current_tally()
    if t is not None:
        t.add(category, flops, nbytes)


@contextmanager
def tally() -> Iterator[FlopTally]:
    """Context manager installing a fresh :class:`FlopTally`.

    Nested uses stack; the inner tally's totals are merged into the outer
    one on exit so an enclosing benchmark still sees everything.
    """
    outer = current_tally()
    t = FlopTally()
    _state.tally = t
    try:
        yield t
    finally:
        _state.tally = outer
        if outer is not None:
            outer.merge(t)
