"""Stable evaluation of ``(I + Q diag(d) T)^{-1}`` and friends.

The last step of both stratification algorithms (paper Algorithms 2 and 3,
step 4) turns the graded decomposition of the propagator product into the
equal-time Green's function without ever forming the catastrophically
ill-conditioned product itself.

With ``d = ds / db`` from :func:`repro.linalg.graded.split_scales`:

.. math::

    G = (I + Q D T)^{-1}
      = (Q D_b^{-1} (D_b Q^T + D_s T))^{-1}
      = (D_b Q^T + D_s T)^{-1} D_b Q^T

Every matrix inside the solve — ``D_b Q^T`` and ``D_s T`` — has entries of
magnitude O(1), so an ordinary LU solve is accurate. This is algebraically
the paper's step 4 written without the explicit ``T^{-T}``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..contracts import shape_contract
from . import flops
from .graded import GradedDecomposition, split_scales

__all__ = [
    "SOLVE_KWARGS",
    "stable_inverse_from_graded",
    "stable_log_det_from_graded",
    "naive_inverse",
]

#: The package-wide finiteness policy for LAPACK-backed calls. Input
#: checking is O(n^2) per call and redundant here: every operand entering
#: a stable solve is O(1) by construction, and the runtime contracts
#: layer (:mod:`repro.contracts`) validates finiteness at the API
#: boundary when enabled. Spell ``**SOLVE_KWARGS`` instead of repeating
#: ``check_finite=False`` so the policy can be flipped in one place.
SOLVE_KWARGS = {"check_finite": False}


def stable_inverse_from_graded(g: GradedDecomposition) -> np.ndarray:
    """Green's function ``(I + Q diag(d) T)^{-1}`` via the D_b/D_s split."""
    db, ds = split_scales(g.d)
    # Both addends are O(1): db, ds are bounded by 1, Q is orthogonal and
    # T is the well-conditioned graded factor.
    lhs = db[:, None] * g.q.T + ds[:, None] * g.t
    rhs = db[:, None] * g.q.T
    n = g.n
    flops.record("stable_inverse", flops.lu_solve_flops(n, n) + 2 * n * n)
    return sla.solve(lhs, rhs, **SOLVE_KWARGS)


def stable_log_det_from_graded(g: GradedDecomposition) -> tuple:
    """``(sign, log|det(I + Q diag(d) T)|)`` without overflow.

    det(I + QDT) = det(Q) det(D_b^{-1}) det(D_b Q^T + D_s T); the middle
    factor's log is just ``-sum(log db)``. Used by tests to cross-check
    Metropolis ratios against brute-force determinants.
    """
    db, ds = split_scales(g.d)
    lhs = db[:, None] * g.q.T + ds[:, None] * g.t
    n = g.n
    # det (one LU) + lu_factor: two factorizations, no triangular solves.
    flops.record("stable_log_det", 2 * flops.lu_solve_flops(n, 0) + 2 * n * n)
    sign_q = np.sign(sla.det(g.q, **SOLVE_KWARGS))
    lu, piv = sla.lu_factor(lhs, **SOLVE_KWARGS)
    diag = np.diag(lu)
    sign_lu = np.prod(np.sign(diag)) * (-1.0) ** np.count_nonzero(
        piv != np.arange(len(piv))
    )
    logdet = float(np.sum(np.log(np.abs(diag))) - np.sum(np.log(db)))
    return float(sign_q * sign_lu), logdet


@shape_contract("(n,n)", dtype=np.float64, finite=True)  # qmclint: disable=QL008 -- the strawman's breakdown demo is defined at float64
def naive_inverse(product: np.ndarray) -> np.ndarray:
    """``(I + product)^{-1}`` with no stabilization — the strawman.

    Correct only while the product's condition number fits in double
    precision; included so tests and ablations can show exactly where it
    breaks down (large beta*U) and that the stratified result does not.
    """
    n = product.shape[0]
    flops.record("naive_inverse", flops.lu_solve_flops(n, n))
    return sla.solve(
        np.eye(n) + product, np.eye(n), **SOLVE_KWARGS
    )
