"""Graded (UDT) decompositions of long matrix products.

The stratification algorithms represent the running product
``B_i B_{i-1} ... B_1`` as ``Q @ diag(D) @ T`` where

* ``Q`` is orthogonal,
* ``D`` carries the (possibly enormous) dynamic range — the "grading",
* ``T`` is well-conditioned with unit-magnitude-ish rows (``D^{-1} R`` has
  unit diagonal).

Keeping the dynamic range quarantined inside the diagonal is what lets a
product whose condition number overflows double precision be manipulated
stably (Loh et al.; Bai, Lee, Li, Xu 2010).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GradedDecomposition", "split_scales"]


@dataclass
class GradedDecomposition:
    """A product represented as ``Q @ diag(d) @ T``.

    ``d`` is stored as a vector. Instances are value objects: operations
    that advance the chain build new instances.
    """

    q: np.ndarray
    d: np.ndarray
    t: np.ndarray

    def __post_init__(self) -> None:
        n = self.q.shape[0]
        if self.q.shape != (n, n):
            raise ValueError("Q must be square")
        if self.d.shape != (n,):
            raise ValueError("d must be a length-n vector")
        if self.t.shape != (n, n):
            raise ValueError("T must be n x n")

    @property
    def n(self) -> int:
        return self.q.shape[0]

    def dense(self) -> np.ndarray:  # qmclint: disable=QL004
        """Materialize the product. Only safe when the grading is mild —
        benchmark/verification use, never in the stable pipeline (and
        deliberately off the FLOP ledger for the same reason)."""
        return self.q @ (self.d[:, None] * self.t)

    def grading_ratio(self) -> float:
        """max|d| / min|d| — the dynamic range the decomposition absorbs."""
        ad = np.abs(self.d)
        dmin = ad.min()
        if dmin == 0.0:
            return np.inf
        return float(ad.max() / dmin)

    def is_descending(self, rtol: float = 1e-12) -> bool:
        """Whether |d| is (weakly) descending — the *progressive graded
        structure* the pre-pivoting variant exploits."""
        ad = np.abs(self.d)
        return bool(np.all(ad[1:] <= ad[:-1] * (1.0 + rtol)))


def split_scales(d: np.ndarray) -> tuple:
    """The paper's D_b / D_s splitting of the graded diagonal.

    Returns vectors ``(db, ds)`` with ``d = ds / db`` elementwise:

    * where ``|d| > 1``:  ``db = 1/|d|`` and ``ds = sign(d)``;
    * elsewhere:          ``db = 1`` and ``ds = d``.

    ``db`` tames the large scales, ``ds`` keeps the small ones, and both
    stay bounded by 1 in magnitude so the final solve mixes only
    comparable numbers.
    """
    # Width follows the caller's scales: the spine dtype under a policy
    # (float64 except fast32); non-float inputs take the spine default.
    d = np.asarray(d)
    if d.dtype not in (np.dtype("float32"), np.dtype("float64")):
        d = np.asarray(d, dtype=np.float64)  # qmclint: disable=QL008 -- spine default for non-float inputs
    big = np.abs(d) > 1.0
    db = np.ones_like(d)
    ds = d.copy()
    db[big] = 1.0 / np.abs(d[big])
    ds[big] = np.sign(d[big])
    return db, ds
