"""Numerical linear algebra substrate for the DQMC reproduction.

Public surface:

* QR factorizations (:mod:`repro.linalg.qr`) — unpivoted, fully pivoted,
  and the paper's pre-pivoted variant, plus instrumented reference
  Householder implementations.
* Column norms and pre-pivot permutations (:mod:`repro.linalg.norms`).
* Graded (UDT) decompositions (:mod:`repro.linalg.graded`) and the stable
  ``(I + QDT)^{-1}`` evaluation (:mod:`repro.linalg.stable`).
* Flop/byte accounting (:mod:`repro.linalg.flops`) for GFlops reporting.
"""

from .condition import (
    ConditioningReport,
    chain_conditioning_report,
    max_safe_cluster_size,
    slice_condition_bound,
)
from .flops import (
    FlopTally,
    current_tally,
    gemm_flops,
    lu_solve_flops,
    norms_flops,
    qr_flops,
    qrp_flops,
    scale_flops,
    tally,
)
from .graded import GradedDecomposition, split_scales
from .jacobi import jacobi_svd
from .norms import (
    column_norms,
    column_norms_blocked,
    inverse_permutation,
    prepivot_permutation,
)
from .qr import (
    QRResult,
    apply_wy,
    householder_qp3_blocked,
    householder_qr_blocked,
    householder_qrp,
    qr_nopivot,
    qr_pivoted,
    qr_prepivoted,
)
from .stable import (
    SOLVE_KWARGS,
    naive_inverse,
    stable_inverse_from_graded,
    stable_log_det_from_graded,
)

__all__ = [
    "ConditioningReport",
    "FlopTally",
    "SOLVE_KWARGS",
    "chain_conditioning_report",
    "max_safe_cluster_size",
    "slice_condition_bound",
    "GradedDecomposition",
    "QRResult",
    "apply_wy",
    "column_norms",
    "column_norms_blocked",
    "current_tally",
    "gemm_flops",
    "householder_qp3_blocked",
    "householder_qr_blocked",
    "householder_qrp",
    "inverse_permutation",
    "jacobi_svd",
    "lu_solve_flops",
    "naive_inverse",
    "norms_flops",
    "prepivot_permutation",
    "qr_flops",
    "qr_nopivot",
    "qr_pivoted",
    "qr_prepivoted",
    "qrp_flops",
    "scale_flops",
    "split_scales",
    "stable_inverse_from_graded",
    "stable_log_det_from_graded",
    "tally",
]
