"""One-sided Jacobi SVD with high *relative* accuracy (paper ref [30]).

Bidiagonalization-based SVDs (LAPACK ``gesdd``/``gesvd``) compute small
singular values only to *absolute* accuracy ``eps * ||A||`` — on the
strongly column-graded matrices the stratification chain produces, the
tiny singular values (which carry the physics of the low-energy states)
come back as noise. That failure is demonstrated by this package's
``method="svd"`` stratifier on adversarial chains, and it is the deep
reason the DQMC community settled on pivoted-QR stratification.

The one-sided Jacobi algorithm (Drmač & Veselić — the very paper cited
as ref [30] for why QRP resists blocking) is the classical fix: for
``A = W D`` with ``W`` well-conditioned and ``D`` an arbitrary column
scaling, it delivers every singular value with small *relative* error.
Each step orthogonalizes one pair of columns with a plane rotation; the
scaling never mixes across columns.

Cost: O(n^3) per sweep with ~log(n)-ish sweeps — far slower than
``gesdd``, which is why it is a verification tool here (ablations, gold
standards) and not a production kernel.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from . import flops

__all__ = ["jacobi_svd"]


def jacobi_svd(
    a: np.ndarray,
    tol: float = 1e-14,
    max_sweeps: int = 60,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Singular value decomposition ``a = u @ diag(s) @ vt``.

    One-sided Jacobi on the columns: rotations are applied on the right
    until all column pairs are numerically orthogonal
    (``|<a_p, a_q>| <= tol * ||a_p|| ||a_q||``). Singular values are
    returned in descending order.

    Parameters
    ----------
    a:
        Real matrix, m x n with m >= n.
    tol:
        Relative orthogonality threshold (the convergence criterion).
    max_sweeps:
        Safety bound on the number of full column-pair sweeps; failure
        to converge raises (it indicates NaNs or a pathological input,
        not a tolerance problem — Jacobi converges quadratically).
    """
    # Dtype-following for float inputs (matches the Householder paths);
    # non-float inputs promote to the float64 spine default.
    a = np.asarray(a)
    if a.dtype not in (np.dtype("float32"), np.dtype("float64")):
        a = np.asarray(a, dtype=np.float64)  # qmclint: disable=QL008 -- spine default for non-float inputs
    if a.ndim != 2:
        raise ValueError("expected a matrix")
    m, n = a.shape
    if m < n:
        raise ValueError("one-sided Jacobi needs m >= n (transpose first)")

    u = a.copy()
    v = np.eye(n)

    for _ in range(max_sweeps):
        converged = True
        for p in range(n - 1):
            for q in range(p + 1, n):
                up = u[:, p]
                uq = u[:, q]
                app = float(up @ up)
                aqq = float(uq @ uq)
                apq = float(up @ uq)
                if app == 0.0 or aqq == 0.0:
                    continue
                # relative off-diagonal size; computed from the norms
                # separately so app * aqq cannot underflow to zero
                denom = math.sqrt(app) * math.sqrt(aqq)
                if denom == 0.0 or abs(apq) <= tol * denom:
                    continue
                converged = False
                # Jacobi rotation angle zeroing the (p, q) Gram entry.
                zeta = (aqq - app) / (2.0 * apq)
                if abs(zeta) > 1e150:
                    # 1 + zeta^2 would overflow; use the asymptotic
                    # t = 1/(2 zeta) (otherwise t silently becomes 0 and
                    # the rotation is a no-op — an infinite limit cycle).
                    t = 0.5 / zeta
                else:
                    t = math.copysign(
                        1.0 / (abs(zeta) + math.sqrt(1.0 + zeta * zeta)),
                        zeta,
                    )
                c = 1.0 / math.sqrt(1.0 + t * t)
                s = c * t
                new_p = c * up - s * uq
                new_q = s * up + c * uq
                u[:, p] = new_p
                u[:, q] = new_q
                vp = v[:, p].copy()
                v[:, p] = c * vp - s * v[:, q]
                v[:, q] = s * vp + c * v[:, q]
        flops.record("jacobi_svd", 6.0 * m * n * (n - 1) / 2.0)
        if converged:
            break
    else:
        raise np.linalg.LinAlgError(
            f"one-sided Jacobi did not converge in {max_sweeps} sweeps"
        )

    sing = np.sqrt(np.einsum("ij,ij->j", u, u))
    # descending order, stable so graded inputs keep their column order
    order = np.argsort(-sing, kind="stable")
    sing = sing[order]
    v = v[:, order]
    u = u[:, order]
    nonzero = sing > 0
    u[:, nonzero] = u[:, nonzero] / sing[nonzero][None, :]
    # zero singular values: leave the (zero) columns; caller-visible U
    # columns for them are unconstrained, fill orthonormally if needed.
    return u, sing, v.T
