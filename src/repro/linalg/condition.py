"""Chain-conditioning diagnostics and parameter auto-tuning.

The paper fixes k = l = 10 by experience. These helpers make the choice
principled: the grading a chain accumulates per slice is governed by the
*spread* of the B-matrix singular values, which for the Hubbard slice
propagator is bounded through

    cond(B_l) <= exp(2 nu) * cond(exp(-dtau K))
              =  exp(2 nu) * exp(dtau * (e_max - e_min))

so a cluster of k slices (or k consecutive wraps) mixes scales spanning
up to ``cond(B)^k``. Requiring that span to stay a safety margin below
1/eps gives the largest safe k — and the same bound governs the wrap
count, which is why QUEST ties them together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "slice_condition_bound",
    "max_safe_cluster_size",
    "ConditioningReport",
    "chain_conditioning_report",
]

#: Double-precision unit roundoff.
EPS = float(np.finfo(np.float64).eps)


def slice_condition_bound(nu: float, dtau: float, bandwidth: float) -> float:
    """Upper bound on ``cond(B_l)`` for one slice propagator.

    Parameters
    ----------
    nu:
        HS coupling (the V factor spans ``exp(+-nu)``).
    dtau, bandwidth:
        Trotter step and the spectral width ``e_max - e_min`` of K
        (8t for the 2D square lattice at mu = 0).
    """
    return math.exp(2.0 * nu) * math.exp(dtau * bandwidth)


def max_safe_cluster_size(
    nu: float,
    dtau: float,
    bandwidth: float,
    safety_digits: float = 3.0,
) -> int:
    """Largest k with ``cond(B)^k <= eps^{-1} / 10^{safety_digits}``.

    ``safety_digits`` reserves accuracy headroom: with the default 3,
    the intra-cluster dynamic range stays below ~1e13 so the cluster
    product still carries ~3 significant digits in its smallest scales.
    This margin recovers the paper's empirical k = 10 exactly at its
    production parameters (U = 2, dtau = 0.2). Always at least 1.
    """
    per_slice = math.log(slice_condition_bound(nu, dtau, bandwidth))
    budget = -math.log(EPS) - safety_digits * math.log(10.0)
    if per_slice <= 0:
        return 10**6  # free fermions: no grading at all
    return max(1, int(budget / per_slice))


@dataclass(frozen=True)
class ConditioningReport:
    """What the chain's grading looks like and what parameters it allows."""

    nu: float
    dtau: float
    bandwidth: float
    slice_cond_bound: float
    suggested_cluster_size: int

    def describe(self) -> str:
        return (
            f"per-slice cond(B) <= {self.slice_cond_bound:.3g}; "
            f"safe cluster/wrap size k <= {self.suggested_cluster_size}"
        )


def chain_conditioning_report(model) -> ConditioningReport:
    """Conditioning analysis of a :class:`~repro.HubbardModel`.

    The spectral width of K is computed exactly (one eigh of an N x N
    symmetric matrix, done once). The suggested k is capped at the
    paper's empirical 10 — beyond that the QR-count savings flatten
    (see the cluster-size ablation) while the error budget keeps
    shrinking, so there is no reason to push it.
    """
    w = np.linalg.eigvalsh(model.kinetic_matrix())
    bandwidth = float(w[-1] - w[0])
    nu = model.nu
    k = min(10, max_safe_cluster_size(nu, model.dtau, bandwidth))
    # the engine needs k | L; round down to the nearest divisor
    while model.n_slices % k:
        k -= 1
    return ConditioningReport(
        nu=nu,
        dtau=model.dtau,
        bandwidth=bandwidth,
        slice_cond_bound=slice_condition_bound(nu, model.dtau, bandwidth),
        suggested_cluster_size=k,
    )
