"""Column-norm kernels and norm-based pre-pivot permutations.

The pre-pivoting variant (paper Sec. IV-A) needs the column 2-norms of the
intermediate matrix ``C_i`` once per stratification step, followed by a
descending sort. The paper notes (Sec. IV-B) that at DQMC matrix sizes the
BLAS ``dnrm2``-per-column loop has too little work per call to parallelize
well, so QUEST computes several norms per OpenMP task. Here the same idea
maps onto a single vectorized reduction (one pass over the matrix, optimal
memory traffic) with an optional thread-parallel path for large matrices via
:mod:`repro.parallel`.
"""

from __future__ import annotations

import numpy as np

from . import flops

__all__ = [
    "column_norms",
    "column_norms_blocked",
    "prepivot_permutation",
    "inverse_permutation",
]


def column_norms(a: np.ndarray) -> np.ndarray:
    """Column 2-norms of ``a`` in one vectorized pass.

    Uses ``einsum`` so no ``m x n`` temporary is materialized (the square
    and the reduction fuse), then a single sqrt on the length-n result.

    Contract: entries are assumed to have magnitude above
    ``sqrt(min_normal) ~ 1e-154`` (or zero) so the squares do not land in
    the subnormal range — always true for stratification inputs, whose
    graded scales live in the diagonal, never in the matrices themselves.
    (LAPACK's dnrm2 pays an extra scaling pass to lift this restriction;
    the pre-pivot ordering does not need that robustness.)
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got ndim={a.ndim}")
    flops.record("norms", flops.norms_flops(*a.shape))
    sq = np.einsum("ij,ij->j", a, a, optimize=True)
    return np.sqrt(sq)


def column_norms_blocked(a: np.ndarray, block: int = 64) -> np.ndarray:
    """Column 2-norms computed block-of-columns at a time.

    This is the memory-access pattern of the paper's OpenMP implementation
    (each worker owns a contiguous group of columns). On Fortran-ordered
    inputs each block is a contiguous panel; on C-ordered inputs the blocked
    walk is still cache-friendlier than column-at-a-time dnrm2 calls.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got ndim={a.ndim}")
    if block <= 0:
        raise ValueError("block must be positive")
    m, n = a.shape
    out = np.empty(n, dtype=np.result_type(a.dtype, np.float64))
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        panel = a[:, j0:j1]
        out[j0:j1] = np.sqrt(np.einsum("ij,ij->j", panel, panel))
    flops.record("norms", flops.norms_flops(m, n))
    return out


def prepivot_permutation(a: np.ndarray) -> np.ndarray:
    """Permutation ``piv`` sorting columns of ``a`` by descending 2-norm.

    ``a[:, piv]`` has non-increasing column norms. The sort is stable
    (mergesort) so already-graded matrices — the common case inside the
    stratification chain — come back with *no* spurious interchanges,
    which is what makes the pre-pivoted algorithm communication-friendly.
    """
    nrm = column_norms(a)
    # Stable descending sort: negate instead of reversing, so ties keep
    # their original (graded) order.
    return np.argsort(-nrm, kind="stable")


def inverse_permutation(piv: np.ndarray) -> np.ndarray:
    """Inverse of an index permutation: ``inv[piv] = arange(n)``."""
    piv = np.asarray(piv)
    inv = np.empty_like(piv)
    inv[piv] = np.arange(piv.size, dtype=piv.dtype)
    return inv
