"""QR factorizations: LAPACK-backed production paths and reference kernels.

Three factorization flavours appear in the paper:

``qr_nopivot``
    Plain blocked QR (LAPACK ``DGEQRF``). Fully level-3; the fast kernel
    Algorithm 3 is built on.

``qr_pivoted``
    QR with column pivoting (LAPACK ``DGEQP3``). Needed for rigorous
    grading but throttled by the level-2 column-norm *downdates* that the
    pivot choice requires after every reflector — the communication
    bottleneck the paper removes.

``qr_prepivoted``
    The paper's kernel: sort columns by norm *once* up front (a single
    pass + sort, no per-step downdates), then run the unpivoted QR.

Production paths call into scipy/LAPACK. For studying the algorithms —
and for counting the per-step synchronization the paper's argument hinges
on — :func:`householder_qrp` and :func:`householder_qr_blocked` are
self-contained NumPy implementations of the level-2 QP3-style algorithm
(with Drmač–Bujanović-style norm downdating and recomputation guard) and
the blocked WY QR. They produce the same factors as LAPACK up to the usual
sign/permutation freedom and report how many pivot synchronization points
each incurred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.linalg as sla

from ..contracts import shape_contract
from . import flops
from .norms import column_norms, prepivot_permutation

__all__ = [
    "QRResult",
    "qr_nopivot",
    "qr_pivoted",
    "qr_prepivoted",
    "householder_qrp",
    "householder_qp3_blocked",
    "householder_qr_blocked",
    "apply_wy",
]


@dataclass
class QRResult:
    """A (possibly pivoted) QR factorization ``A[:, piv] = Q @ R``.

    Attributes
    ----------
    q, r:
        The orthogonal and upper-triangular factors.
    piv:
        Column permutation as an index vector; identity for unpivoted QR.
    sync_points:
        Number of sequential pivot-selection synchronization points the
        algorithm required (0 for unpivoted, 1 for pre-pivoted, n for
        fully pivoted). This is the "communication cost of pivoting" the
        paper's Sec. IV quantifies.
    """

    q: np.ndarray
    r: np.ndarray
    piv: np.ndarray
    sync_points: int = 0

    @property
    def shape(self) -> tuple:
        return (self.q.shape[0], self.r.shape[1])

    def reconstruct(self) -> np.ndarray:  # qmclint: disable=QL004
        """Rebuild A (in original column order) from the factors.

        Verification-only (tests compare against the input); kept off the
        FLOP ledger so it never inflates a benchmark's nominal count.
        """
        ap = self.q @ self.r
        out = np.empty_like(ap)
        out[:, self.piv] = ap
        return out


def _check_matrix(a: np.ndarray) -> np.ndarray:
    # Dtype-following for the two policy widths (a fast32 spine runs its
    # QR in float32); any other input — ints, object arrays — promotes
    # to the float64 spine default.
    a = np.asarray(a)
    if a.dtype not in (np.dtype("float32"), np.dtype("float64")):
        a = np.asarray(a, dtype=np.float64)  # qmclint: disable=QL008 -- spine default for non-float inputs
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got ndim={a.ndim}")
    return a


@shape_contract("(m,n)", finite=True)
def qr_nopivot(a: np.ndarray) -> QRResult:
    """Unpivoted QR via LAPACK DGEQRF/DORGQR (``mode='economic'``)."""
    a = _check_matrix(a)
    flops.record("qr", flops.qr_flops(*a.shape))
    q, r = sla.qr(a, mode="economic", check_finite=False)
    piv = np.arange(a.shape[1])
    return QRResult(q=q, r=r, piv=piv, sync_points=0)


@shape_contract("(m,n)", finite=True)
def qr_pivoted(a: np.ndarray) -> QRResult:
    """Column-pivoted QR via LAPACK DGEQP3.

    scipy returns ``a[:, piv] = q @ r``; the pivot vector is passed through
    unchanged. Every column step of QP3 is a synchronization point.
    """
    a = _check_matrix(a)
    flops.record("qrp", flops.qrp_flops(*a.shape))
    q, r, piv = sla.qr(a, mode="economic", pivoting=True, check_finite=False)
    return QRResult(q=q, r=r, piv=piv, sync_points=min(a.shape))


@shape_contract("(m,n)", finite=True)
def qr_prepivoted(a: np.ndarray, piv: Optional[np.ndarray] = None) -> QRResult:
    """The paper's kernel: one up-front norm sort, then unpivoted QR.

    Parameters
    ----------
    a:
        Matrix to factor.
    piv:
        Optional externally computed permutation (e.g. from a
        thread-parallel column-norm pass); computed here when omitted.
    """
    a = _check_matrix(a)
    if piv is None:
        piv = prepivot_permutation(a)
    else:
        piv = np.asarray(piv)
        if piv.shape != (a.shape[1],):
            raise ValueError("pre-pivot permutation has wrong length")
    flops.record("qr", flops.qr_flops(*a.shape))
    q, r = sla.qr(a[:, piv], mode="economic", check_finite=False)
    return QRResult(q=q, r=r, piv=piv, sync_points=1)


# ---------------------------------------------------------------------------
# Reference Householder implementations (self-contained, instrumented)
# ---------------------------------------------------------------------------


def _householder_vector(x: np.ndarray) -> tuple:
    """Householder reflector (v, beta) annihilating x[1:].

    Returns v (with v[0] = 1) and beta such that
    ``(I - beta v v^T) x = (-sign(x0) * ||x||) e_1`` — the LAPACK sign
    convention, which keeps the computation of v[0] cancellation-free.
    """
    x = np.asarray(x)  # width follows the (already-checked) matrix
    normx = np.linalg.norm(x)
    v = x.copy()
    if normx == 0.0:
        return v, 0.0
    alpha = -np.copysign(normx, x[0])
    v0 = x[0] - alpha
    v = v / v0
    v[0] = 1.0
    beta = -v0 / alpha
    return v, beta


def householder_qrp(
    a: np.ndarray,
    *,
    downdate_tol: float = 1e-7,
) -> QRResult:
    """Reference level-2 QR with column pivoting (DGEQP3-style).

    At each step k the column of largest *remaining* norm is swapped to
    position k, one Householder reflector is formed and applied to the
    trailing matrix, and the remaining column norms are *downdated*
    (``norm^2 -= r[k, j]^2``) rather than recomputed. When cancellation
    makes a downdated norm untrustworthy (relative to its original value,
    Drmač–Bujanović criterion) it is recomputed from scratch.

    Every iteration is a sequential synchronization point: the pivot
    choice for step k depends on the reflector applied at step k-1. That
    serial dependency is why QP3 cannot be fully blocked — the fact the
    paper's pre-pivoting removes.
    """
    a = _check_matrix(a).copy()
    m, n = a.shape
    kmax = min(m, n)
    piv = np.arange(n)
    vs = np.zeros((m, kmax))
    betas = np.zeros(kmax)

    colnorm = column_norms(a)
    orignorm = colnorm.copy()

    for k in range(kmax):
        # Pivot: bring the largest remaining column to the front.
        j = k + int(np.argmax(colnorm[k:]))
        if j != k:
            a[:, [k, j]] = a[:, [j, k]]
            piv[[k, j]] = piv[[j, k]]
            colnorm[[k, j]] = colnorm[[j, k]]
            orignorm[[k, j]] = orignorm[[j, k]]

        v, beta = _householder_vector(a[k:, k])
        vs[k:, k] = v
        betas[k] = beta
        # Apply the reflector to the trailing matrix (level-2 update).
        w = beta * (v @ a[k:, k:])
        a[k:, k:] -= np.outer(v, w)
        a[k + 1 :, k] = 0.0

        # Downdate the trailing column norms; recompute on cancellation.
        if k + 1 < n:
            r_row = a[k, k + 1 :]
            sq = colnorm[k + 1 :] ** 2 - r_row**2
            sq = np.maximum(sq, 0.0)
            nrm = np.sqrt(sq)
            unsafe = nrm <= downdate_tol * orignorm[k + 1 :]
            if np.any(unsafe) and k + 1 < m:
                idx = np.nonzero(unsafe)[0] + k + 1
                nrm[idx - (k + 1)] = column_norms(a[k + 1 :, idx])
                orignorm[idx] = nrm[idx - (k + 1)]
            colnorm[k + 1 :] = nrm

    r = np.triu(a[:kmax, :])
    q = _form_q(vs, betas, m, kmax)
    flops.record("qrp", flops.qrp_flops(m, n))
    return QRResult(q=q, r=r, piv=piv, sync_points=kmax)


def _form_q(vs: np.ndarray, betas: np.ndarray, m: int, k: int) -> np.ndarray:  # qmclint: disable=QL004
    """Accumulate Q = H_1 H_2 ... H_k applied to the first k identity cols.

    Its work is the explicit form-Q term already inside the callers'
    ``qr_flops``/``qrp_flops`` records — recording here would double count.
    """
    q = np.eye(m, k)
    for i in range(k - 1, -1, -1):
        v = vs[i:, i]
        w = betas[i] * (v @ q[i:, :])
        q[i:, :] -= np.outer(v, w)
    return q


def apply_wy(  # qmclint: disable=QL004
    c: np.ndarray, w: np.ndarray, y: np.ndarray, transpose: bool = False
) -> np.ndarray:
    """Apply a WY-form block reflector ``Q = I - W Y^T`` to C in place.

    ``transpose=True`` applies ``Q^T = I - Y W^T``. Both are two GEMMs —
    the level-3 shape that makes blocked QR fast. The flops are part of
    the factorization count its callers record (qr_flops/qrp_flops).
    """
    if transpose:
        c -= y @ (w.T @ c)
    else:
        c -= w @ (y.T @ c)
    return c


def householder_qp3_blocked(
    a: np.ndarray,
    block: int = 32,
    downdate_tol: float = 1e-7,
) -> QRResult:
    """Reference BLAS-3 QR with column pivoting (Quintana-Orti, Sun &
    Bischof — the paper's ref [25]; the algorithm inside DGEQP3).

    The best one can do *with* true pivoting: reflectors are accumulated
    in WY form and the trailing matrix is updated one block at a time
    with GEMMs — but choosing each pivot still requires the candidate
    columns' norms to be current, which forces a level-2 update of one
    *row* of the trailing matrix per step (here: applying the pending
    block reflectors to the trailing panel row-by-row as pivots are
    chosen). That per-column serialization is exactly why DGEQP3 tops
    out far below DGEQRF in Fig 1, and what pre-pivoting deletes.

    Implementation note: we maintain the trailing matrix lazily — at
    step k within a block starting at k0, only rows k0..k of the
    trailing columns are up to date (enough to compute the next
    reflector after a norm-downdate-guided pivot choice); the bulk of
    each column's update is deferred to the end-of-block GEMM pair.
    """
    a = _check_matrix(a).copy()
    if block <= 0:
        raise ValueError("block must be positive")
    m, n = a.shape
    kmax = min(m, n)
    piv = np.arange(n)
    vs = np.zeros((m, kmax))
    betas = np.zeros(kmax)

    colnorm = column_norms(a)
    orignorm = colnorm.copy()

    for k0 in range(0, kmax, block):
        k1 = min(k0 + block, kmax)
        nb = k1 - k0
        # WY accumulators for this block's reflectors.
        y = np.zeros((m - k0, nb))
        w = np.zeros((m - k0, nb))
        for j, k in enumerate(range(k0, k1)):
            # --- pivot: largest downdated norm among remaining columns.
            p = k + int(np.argmax(colnorm[k:]))
            if p != k:
                # all trailing columns (inside and beyond the block) are
                # stored pre-reflector, so a raw swap is consistent
                a[:, [k, p]] = a[:, [p, k]]
                piv[[k, p]] = piv[[p, k]]
                colnorm[[k, p]] = colnorm[[p, k]]
                orignorm[[k, p]] = orignorm[[p, k]]
            # --- bring column k up to date w.r.t. this block's pending
            # reflectors: x <- (I - W Y^T)^T x = x - Y (W^T x).
            col = a[k0:, k].copy()
            if j > 0:
                col -= y[:, :j] @ (w[:, :j].T @ a[k0:, k])
            # --- new reflector from the updated column.
            v, beta = _householder_vector(col[k - k0 :])
            vs[k:, k] = v
            betas[k] = beta
            # record the updated column's R entries.
            a[k0:k, k] = col[: k - k0]
            a[k, k] = col[k - k0] - beta * (v @ col[k - k0 :]) * v[0]
            a[k + 1 :, k] = 0.0
            # --- extend the WY pair with the new reflector.
            yj = np.zeros(m - k0)
            yj[k - k0 :] = v
            wj = beta * (yj - w[:, :j] @ (y[:, :j].T @ yj))
            y[:, j] = yj
            w[:, j] = wj
            # --- level-2 piece: update row k of the trailing columns so
            # the norm downdate sees true R entries. Row k of
            # (I - W Y^T)^T A = A - Y (W^T A): need (W^T A)[:, k+1:]
            # only through Y's row k.
            if k + 1 < n:
                yrow = y[k - k0, : j + 1]
                wta = w[:, : j + 1].T @ a[k0:, k + 1 :]
                r_row = a[k, k + 1 :] - yrow @ wta
                sq = colnorm[k + 1 :] ** 2 - r_row**2
                sq = np.maximum(sq, 0.0)
                nrm = np.sqrt(sq)
                unsafe = nrm <= downdate_tol * orignorm[k + 1 :]
                if np.any(unsafe) and k + 1 < m:
                    # recompute from the *updated* trailing block
                    idx = np.nonzero(unsafe)[0] + k + 1
                    upd = a[k0:, idx] - y[:, : j + 1] @ (
                        w[:, : j + 1].T @ a[k0:, idx]
                    )
                    nrm[idx - (k + 1)] = column_norms(upd[k + 1 - k0 :, :])
                    orignorm[idx] = nrm[idx - (k + 1)]
                colnorm[k + 1 :] = nrm
        # --- level-3: apply the block's reflectors to the trailing matrix.
        if k1 < n:
            apply_wy(a[k0:, k1:], w, y, transpose=True)

    r = np.triu(a[:kmax, :])
    q = _form_q(vs, betas, m, kmax)
    flops.record("qrp", flops.qrp_flops(m, n))
    return QRResult(q=q, r=r, piv=piv, sync_points=kmax)


def householder_qr_blocked(a: np.ndarray, block: int = 32) -> QRResult:
    """Reference blocked (level-3) unpivoted QR in WY form.

    Panels of ``block`` columns are factored with level-2 Householder
    steps; the trailing matrix is updated with two GEMMs per panel. This
    mirrors DGEQRF's structure and demonstrates *why* no-pivot QR runs at
    a large fraction of GEMM speed while QP3 cannot: the panel is the only
    level-2 work, and nothing inside the trailing update depends on a
    pivot decision.
    """
    a = _check_matrix(a).copy()
    if block <= 0:
        raise ValueError("block must be positive")
    m, n = a.shape
    kmax = min(m, n)
    vs = np.zeros((m, kmax))
    betas = np.zeros(kmax)

    for k0 in range(0, kmax, block):
        k1 = min(k0 + block, kmax)
        # Level-2 factorization of the panel a[k0:, k0:k1].
        for k in range(k0, k1):
            v, beta = _householder_vector(a[k:, k])
            vs[k:, k] = v
            betas[k] = beta
            wrow = beta * (v @ a[k:, k:k1])
            a[k:, k:k1] -= np.outer(v, wrow)
            a[k + 1 :, k] = 0.0
        # Build the WY representation of the panel's reflectors.
        nb = k1 - k0
        y = np.zeros((m - k0, nb))
        for j in range(nb):
            y[k0 + j - k0 :, j] = vs[k0 + j :, k0 + j]
        w = np.zeros_like(y)
        for j in range(nb):
            vj = y[:, j]
            w[:, j] = betas[k0 + j] * (vj - w[:, :j] @ (y[:, :j].T @ vj))
        # Level-3 trailing update: (I - W Y^T)^T C = C - Y (W^T C).
        if k1 < n:
            apply_wy(a[k0:, k1:], w, y, transpose=True)

    r = np.triu(a[:kmax, :])
    q = _form_q(vs, betas, m, kmax)
    flops.record("qr", flops.qr_flops(m, n))
    return QRResult(q=q, r=r, piv=np.arange(n), sync_points=0)
