"""Tuning parameters and candidate-grid generation.

The paper hand-picks three engineering knobs per machine (Sec. III /
Table I): the cluster size k (slice propagators pre-multiplied per QR
step), the wrap interval l (slices between fresh re-stratifications) and
the delayed-update block size. In this package — as in QUEST and the
paper's own runs — k and l are tied: a fresh stratification happens
every ``cluster_size`` wraps, so one :class:`TuningParameters` carries
all three with ``wrap_interval == cluster_size`` enforced.

The candidate grid is bounded by the same conditioning analysis that
backs ``repro info`` (:mod:`repro.linalg.condition`): cluster sizes are
divisors of ``n_slices`` near the largest *safe* k, and delay blocks
come from the :class:`~repro.core.DelayedUpdater` ladder capped at the
site count (a block wider than N flushes at rank N anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "TuningParameters",
    "divisors",
    "divisor_near",
    "cluster_size_candidates",
    "candidate_grid",
]


@dataclass(frozen=True)
class TuningParameters:
    """One point in the (cluster size, wrap interval, delay) space.

    ``wrap_interval`` must equal ``cluster_size``: the engine
    re-stratifies exactly at cluster boundaries (the paper runs
    k = l = 10 for the same reason), so the two knobs move together.
    The field is kept explicit so cached profiles stay honest about what
    was tuned if a future engine decouples them.
    """

    cluster_size: int
    wrap_interval: int
    max_delay: int
    #: precision-policy name to run under, or None to keep whatever the
    #: simulation already uses (the historical three-knob profile).
    precision: Optional[str] = None
    #: kinetic propagator mode (exact / checkerboard), or None to keep
    #: whatever the simulation already uses.
    kinetic: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if self.wrap_interval != self.cluster_size:
            raise ValueError(
                "wrap_interval must equal cluster_size (the engine "
                "re-stratifies at cluster boundaries; k and l are tied)"
            )
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if self.precision is not None:
            from ..precision import resolve_policy

            resolve_policy(self.precision)  # raises on unknown names
        if self.kinetic is not None:
            from ..hamiltonian import resolve_kinetic

            resolve_kinetic(self.kinetic)  # raises on unknown names

    @classmethod
    def make(
        cls,
        cluster_size: int,
        max_delay: int,
        precision: Optional[str] = None,
        kinetic: Optional[str] = None,
    ) -> "TuningParameters":
        """The canonical constructor with the wrap interval tied to k."""
        return cls(
            cluster_size=int(cluster_size),
            wrap_interval=int(cluster_size),
            max_delay=int(max_delay),
            precision=precision,
            kinetic=kinetic,
        )

    def to_dict(self) -> dict:
        d = {
            "cluster_size": self.cluster_size,
            "wrap_interval": self.wrap_interval,
            "max_delay": self.max_delay,
        }
        # Only when set — keeps cached three-knob profiles byte-stable
        # and lets old caches round-trip without precision/kinetic keys.
        if self.precision is not None:
            d["precision"] = self.precision
        if self.kinetic is not None:
            d["kinetic"] = self.kinetic
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TuningParameters":
        return cls(
            cluster_size=int(d["cluster_size"]),
            wrap_interval=int(d.get("wrap_interval", d["cluster_size"])),
            max_delay=int(d["max_delay"]),
            precision=d.get("precision"),
            kinetic=d.get("kinetic"),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        text = (
            f"k={self.cluster_size}, l={self.wrap_interval}, "
            f"delay={self.max_delay}"
        )
        if self.precision is not None:
            text += f", precision={self.precision}"
        if self.kinetic is not None:
            text += f", kinetic={self.kinetic}"
        return text


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n``, ascending."""
    if n < 1:
        raise ValueError("n must be >= 1")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def divisor_near(n: int, target: int, cap: Optional[int] = None) -> int:
    """The divisor of ``n`` nearest ``target`` (ties prefer the smaller,
    better-conditioned choice).

    Divisors are preferred from the window ``2 <= d <= cap`` (``cap``
    is the conditioning-safe bound); only when that window contains no
    divisor at all — prime ``n_slices``, say, where the choices are 1
    and n — does the search fall back to every divisor, so a prime L
    yields L (one big, slightly over-budget cluster) instead of the
    pathological k = 1 the old walk-down produced.
    """
    divs = divisors(n)
    preferred = [d for d in divs if d >= 2 and (cap is None or d <= cap)]
    pool = preferred or divs
    return min(pool, key=lambda d: (abs(d - target), d))


def cluster_size_candidates(
    n_slices: int,
    target: int = 10,
    cap: Optional[int] = None,
    max_candidates: int = 4,
) -> List[int]:
    """Candidate cluster sizes: divisors of ``n_slices`` near ``target``.

    Ranked by distance to the target (ties toward the smaller, safer
    size) and truncated to ``max_candidates``; returned ascending. The
    same preference window as :func:`divisor_near` applies, so k = 1
    only ever appears when nothing else divides ``n_slices``.
    """
    if max_candidates < 1:
        raise ValueError("max_candidates must be >= 1")
    divs = divisors(n_slices)
    preferred = [d for d in divs if d >= 2 and (cap is None or d <= cap)]
    pool = preferred or divs
    ranked = sorted(pool, key=lambda d: (abs(d - target), d))
    return sorted(ranked[:max_candidates])


def candidate_grid(
    n_slices: int,
    n_sites: int,
    baseline: TuningParameters,
    target_cluster: int = 10,
    cluster_cap: Optional[int] = None,
    delays: Optional[Sequence[int]] = None,
    max_candidates: int = 12,
    precisions: Optional[Sequence[Optional[str]]] = None,
    kinetics: Optional[Sequence[Optional[str]]] = None,
) -> List[TuningParameters]:
    """The deterministic candidate list a warmup tune searches.

    The baseline (the run's configured parameters) is always first, so
    the tuner can never choose something slower than the defaults *as
    measured* — the defaults are themselves a candidate. The rest is the
    cartesian product of cluster sizes near the target, the delay
    ladder and (when given) the ``precisions`` / ``kinetics`` axes, in
    sorted order, truncated to ``max_candidates`` total. Both optional
    axes default to "keep the run's configured value" only — tuning
    never silently narrows precision or swaps the kinetic propagator
    unless explicitly asked to (both change the floating-point
    trajectory, which is the user's call).
    """
    from ..core.delayed_update import delay_ladder

    clusters = cluster_size_candidates(
        n_slices, target=target_cluster, cap=cluster_cap
    )
    if baseline.cluster_size not in clusters and (
        n_slices % baseline.cluster_size == 0
    ):
        clusters = sorted(set(clusters) | {baseline.cluster_size})
    delay_list = sorted(set(delays)) if delays else delay_ladder(n_sites)
    if baseline.max_delay not in delay_list:
        delay_list = sorted(set(delay_list) | {baseline.max_delay})
    precision_list: List[Optional[str]] = (
        list(precisions) if precisions else [baseline.precision]
    )
    if baseline.precision not in precision_list:
        precision_list.insert(0, baseline.precision)
    kinetic_list: List[Optional[str]] = (
        list(kinetics) if kinetics else [baseline.kinetic]
    )
    if baseline.kinetic not in kinetic_list:
        kinetic_list.insert(0, baseline.kinetic)

    # The kinetic axis varies fastest: a requested mode swap is the
    # most expensive hypothesis to leave untested, so every (k, delay)
    # point tries all modes before the grid moves on — truncation can
    # shrink the cluster/delay coverage but never starve an explicitly
    # requested kinetics axis.
    grid = [baseline]
    for p in precision_list:
        for k in clusters:
            for m in delay_list:
                for kin in kinetic_list:
                    cand = TuningParameters.make(
                        k, m, precision=p, kinetic=kin
                    )
                    if cand != baseline:
                        grid.append(cand)
                    if len(grid) >= max_candidates:
                        return grid
    return grid
