"""Warmup-time autotuning of the Green's-function pipeline knobs.

The three engineering parameters the paper hand-tunes per machine —
cluster size k, wrap interval l and the delayed-update block size — are
measured here instead: candidate settings run for a few warmup sweeps
each on the live engine, timed through the phase profiler and gated on
the numerical-health watchdog's wrap-drift/dynamic-range signals, and
the fastest healthy candidate is locked for the measurement sweeps.
Winners persist in an atomic per-workload profile cache so campaign
grids tune once and reuse the profile across every job.
"""

from .cache import TuningCache, default_cache_path, profile_key
from .params import (
    TuningParameters,
    candidate_grid,
    cluster_size_candidates,
    divisor_near,
    divisors,
)
from .tuner import (
    AutotuneResult,
    TuningTrial,
    WarmupAutotuner,
    tune_config,
    tune_simulation,
)

__all__ = [
    "AutotuneResult",
    "TuningCache",
    "TuningParameters",
    "TuningTrial",
    "WarmupAutotuner",
    "candidate_grid",
    "cluster_size_candidates",
    "default_cache_path",
    "divisor_near",
    "divisors",
    "profile_key",
    "tune_config",
    "tune_simulation",
]
