"""The warmup-time autotuner: measure the knobs instead of guessing them.

The paper tunes cluster size, wrap interval and delayed-update block
per machine by hand (Sec. III / Table I). This tuner does it inside the
warmup phase of the run being tuned — warmup sweeps are thermalization,
so spending them on different engine configurations costs nothing: the
Markov chain keeps advancing whichever parameters execute it.

Protocol, per candidate:

1. re-partition the live engine to the candidate (cluster size = wrap
   interval; the delayed-update block rides the sweep call),
2. run ``sweeps_per_candidate`` warmup sweeps, timed through the
   simulation's :class:`~repro.profiling.PhaseProfiler` phase data,
3. sample the same numerical-health signals the
   :class:`~repro.telemetry.NumericalHealthWatchdog` watches and reject
   the candidate if its wrap drift exceeds ``drift_tol`` — a
   fast-but-drifting configuration is not a winner, it is a correctness
   bug waiting for a long run. The graded dynamic range is gated
   *relative to the baseline's own measurement* (an order of magnitude
   past it, floored at ``range_tol``): the absolute range is a property
   of the workload — it grows like exp(beta * bandwidth) regardless of
   clustering — so only a candidate that makes it materially *worse*
   than the configuration the user already chose is rejected.

The fastest healthy candidate is locked for the measurement sweeps. The
run's configured parameters are always candidate #0, so the tuner can
never pick something measured slower than the defaults. Every trial and
the final decision stream through the :class:`~repro.telemetry.Telemetry`
facade as ``autotune_*`` events.

Determinism: the choice is a pure function of (candidate order, recorded
timings, recorded drifts). Identical seeds and identical recorded
timings therefore lock identical parameters — the property the tests
pin by injecting a scripted ``timing_source``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..telemetry import (
    NumericalHealthWatchdog,
    Telemetry,
    WatchdogConfig,
    ensure_telemetry,
)
from .cache import TuningCache, profile_key
from .params import TuningParameters, candidate_grid

__all__ = [
    "TuningTrial",
    "AutotuneResult",
    "WarmupAutotuner",
    "tune_simulation",
    "tune_config",
]


@dataclass
class TuningTrial:
    """What one candidate cost and how healthy it was."""

    params: TuningParameters
    sweeps: int
    seconds: float
    sweep_seconds: float
    phase_seconds: dict
    wrap_drift: float
    dynamic_range: float
    accepted: bool
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "params": self.params.to_dict(),
            "sweeps": self.sweeps,
            "seconds": self.seconds,
            "sweep_seconds": self.sweep_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "wrap_drift": self.wrap_drift,
            "dynamic_range": self.dynamic_range,
            "accepted": self.accepted,
            "reason": self.reason,
        }


@dataclass
class AutotuneResult:
    """The locked parameters plus the full decision trace."""

    chosen: TuningParameters
    baseline: TuningParameters
    trials: List[TuningTrial] = field(default_factory=list)
    key: str = ""
    sweeps_used: int = 0
    #: served from the profile cache; no trials ran
    cache_hit: bool = False
    #: every candidate failed the health gate; baseline kept
    fallback: bool = False

    def to_dict(self) -> dict:
        return {
            "chosen": self.chosen.to_dict(),
            "baseline": self.baseline.to_dict(),
            "trials": [t.to_dict() for t in self.trials],
            "key": self.key,
            "sweeps_used": self.sweeps_used,
            "cache_hit": self.cache_hit,
            "fallback": self.fallback,
        }

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        if self.cache_hit:
            return f"autotune: cache hit -> {self.chosen}"
        if self.fallback:
            return (
                f"autotune: no candidate passed the health gate; "
                f"keeping defaults ({self.chosen})"
            )
        rejected = sum(1 for t in self.trials if not t.accepted)
        return (
            f"autotune: {len(self.trials)} trials "
            f"({rejected} rejected) -> {self.chosen} "
            f"in {self.sweeps_used} warmup sweeps"
        )


class WarmupAutotuner:
    """Searches engine parameters during a live simulation's warmup.

    Parameters
    ----------
    sim:
        The :class:`~repro.dqmc.Simulation` being tuned; its engine is
        re-partitioned in place per candidate and left configured with
        the winner.
    candidates:
        Explicit candidate list; ``None`` builds the default grid from
        the model's slice/site counts with the run's configuration as
        candidate #0.
    sweeps_per_candidate:
        Warmup sweeps timed per candidate. These are real thermalization
        sweeps — the field keeps equilibrating throughout the search.
    drift_tol / range_tol:
        The health gate. ``drift_tol`` is absolute (same meaning as
        :class:`~repro.telemetry.WatchdogConfig`): any candidate whose
        wrap drift exceeds it is rejected regardless of speed.
        ``range_tol`` floors the *relative* dynamic-range gate — a
        candidate is rejected only when its graded dynamic range
        exceeds ``max(range_tol, 10 x the baseline trial's range)``.
    telemetry:
        Sink for the ``autotune_*`` decision trace; defaults to the
        simulation's own facade.
    timing_source:
        Zero-argument callable returning cumulative seconds; a trial
        costs the delta across its sweeps. Defaults to the simulation
        profiler's accounted phase time (Table-I phase data). Tests
        inject a scripted source to pin determinism.
    precisions:
        Optional precision-policy axis for the default grid (e.g.
        ``["mixed"]`` to also try the narrowed pipeline). Omitted, the
        search keeps the run's configured policy — tuning never narrows
        precision unless explicitly asked to.
    kinetics:
        Optional kinetic-propagator axis for the default grid (e.g.
        ``["checkerboard"]`` to also try the structured fast path).
        Omitted, the search keeps the run's configured mode — like
        precision, a kinetic swap changes the floating-point trajectory
        (one extra Trotter term), so it is opt-in. Candidates on a mode
        the lattice cannot support (multilayer, general graphs) are
        rejected as inapplicable by the health gate, not crashed on.
    """

    def __init__(
        self,
        sim,
        candidates: Optional[Sequence[TuningParameters]] = None,
        sweeps_per_candidate: int = 3,
        drift_tol: float = 1e-6,
        range_tol: float = 1e14,
        telemetry: Optional[Telemetry] = None,
        timing_source: Optional[Callable[[], float]] = None,
        key: str = "",
        precisions: Optional[Sequence[str]] = None,
        kinetics: Optional[Sequence[str]] = None,
    ):
        if sweeps_per_candidate < 1:
            raise ValueError("sweeps_per_candidate must be >= 1")
        self.sim = sim
        self.baseline = TuningParameters.make(
            sim.engine.cluster_size, sim.max_delay
        )
        # Candidates with precision=None / kinetic=None mean "the run's
        # configured value", pinned here so a trial that narrowed the
        # engine or swapped its propagator can never leak that state
        # into later None-valued trials.
        self._initial_precision = getattr(sim, "precision", None)
        self._initial_kinetic = getattr(sim, "kinetic", None)
        if candidates is None:
            from ..linalg.condition import max_safe_cluster_size

            model = sim.model
            cap = max_safe_cluster_size(
                model.nu, model.dtau, _bandwidth(model)
            )
            candidates = candidate_grid(
                model.n_slices,
                model.n_sites,
                self.baseline,
                target_cluster=min(10, max(1, cap)),
                cluster_cap=cap,
                precisions=precisions,
                kinetics=kinetics,
            )
        elif precisions is not None or kinetics is not None:
            raise ValueError(
                "pass either an explicit candidate list or "
                "precisions/kinetics axes, not both"
            )
        self.candidates = list(candidates)
        self.sweeps_per_candidate = sweeps_per_candidate
        self.drift_tol = drift_tol
        self.range_tol = range_tol
        self.telemetry = ensure_telemetry(
            telemetry if telemetry is not None else sim.telemetry
        )
        self.timing_source = (
            timing_source
            if timing_source is not None
            else lambda: sim.profiler.accounted
        )
        self.key = key
        # promote=False: trials probe possibly-unhealthy candidates on
        # purpose; the gate rejects them instead of letting the sampling
        # watchdog promote the engine's precision mid-search.
        self._watchdog = NumericalHealthWatchdog(
            sim.engine,
            WatchdogConfig(
                check_every=1, drift_tol=drift_tol, range_tol=range_tol
            ),
            self.telemetry,
            promote=False,
        )

    # -- trial machinery -----------------------------------------------------

    def _trial(
        self, params: TuningParameters, range_ref: Optional[float]
    ) -> TuningTrial:
        sim = self.sim
        try:
            if params.precision is None and self._initial_precision is not None:
                sim.set_precision(self._initial_precision)
            if params.kinetic is None and self._initial_kinetic is not None:
                sim.set_kinetic(self._initial_kinetic)
            sim.apply_tuning(params)
        except ValueError as exc:
            return TuningTrial(
                params=params,
                sweeps=0,
                seconds=0.0,
                sweep_seconds=float("inf"),
                phase_seconds={},
                wrap_drift=float("inf"),
                dynamic_range=float("inf"),
                accepted=False,
                reason=f"inapplicable: {exc}",
            )
        phases_before = dict(sim.profiler.seconds)
        t0 = self.timing_source()
        sim.warmup(self.sweeps_per_candidate)
        seconds = max(0.0, self.timing_source() - t0)
        phase_seconds = {
            k: v - phases_before.get(k, 0.0)
            for k, v in sim.profiler.seconds.items()
            if v - phases_before.get(k, 0.0) > 0.0
        }
        report = self._watchdog.check(sim._sweep_index)
        reasons = []
        if report.wrap_drift > self.drift_tol:
            reasons.append(
                f"wrap drift {report.wrap_drift:.3e} exceeds "
                f"tolerance {self.drift_tol:.3e}"
            )
        range_cap = self.range_tol
        if range_ref is not None:
            range_cap = max(range_cap, 10.0 * range_ref)
        if report.dynamic_range > range_cap:
            reasons.append(
                f"graded dynamic range {report.dynamic_range:.3e} exceeds "
                f"{range_cap:.3e} (10x the baseline's)"
            )
        return TuningTrial(
            params=params,
            sweeps=self.sweeps_per_candidate,
            seconds=seconds,
            sweep_seconds=seconds / self.sweeps_per_candidate,
            phase_seconds=phase_seconds,
            wrap_drift=report.wrap_drift,
            dynamic_range=report.dynamic_range,
            accepted=not reasons,
            reason="; ".join(reasons),
        )

    def run(self) -> AutotuneResult:
        """Search every candidate, lock the winner, return the trace."""
        tel = self.telemetry
        tel.event(
            "autotune_started",
            key=self.key,
            candidates=[c.to_dict() for c in self.candidates],
            sweeps_per_candidate=self.sweeps_per_candidate,
            drift_tol=self.drift_tol,
            range_tol=self.range_tol,
        )
        trials: List[TuningTrial] = []
        range_ref: Optional[float] = None
        for params in self.candidates:
            trial = self._trial(params, range_ref)
            if range_ref is None and trial.sweeps:
                # First measurable trial is the baseline (candidate #0):
                # its dynamic range anchors the relative gate.
                range_ref = trial.dynamic_range
            trials.append(trial)
            tel.counter("autotune.trials")
            if not trial.accepted:
                tel.counter("autotune.rejected")
            tel.event("autotune_trial", **trial.to_dict())

        accepted = [
            (t.sweep_seconds, i, t) for i, t in enumerate(trials) if t.accepted
        ]
        if accepted:
            # Fastest healthy candidate; ties resolve to the earliest
            # candidate (the baseline is #0), keeping the decision a
            # pure function of the recorded timings.
            _, _, winner = min(accepted)
            chosen, fallback = winner.params, False
        else:
            chosen, fallback = self.baseline, True
        if chosen.precision is None and self._initial_precision is not None:
            self.sim.set_precision(self._initial_precision)
        if chosen.kinetic is None and self._initial_kinetic is not None:
            self.sim.set_kinetic(self._initial_kinetic)
        self.sim.apply_tuning(chosen)
        result = AutotuneResult(
            chosen=chosen,
            baseline=self.baseline,
            trials=trials,
            key=self.key,
            sweeps_used=sum(t.sweeps for t in trials),
            fallback=fallback,
        )
        tel.gauge("autotune.cluster_size", chosen.cluster_size)
        tel.gauge("autotune.max_delay", chosen.max_delay)
        tel.event(
            "autotune_locked",
            key=self.key,
            chosen=chosen.to_dict(),
            fallback=fallback,
            sweeps_used=result.sweeps_used,
        )
        return result


def _bandwidth(model) -> float:
    """Spectral width of K (one small eigh, matching ``repro info``)."""
    import numpy as np

    w = np.linalg.eigvalsh(model.kinetic_matrix())
    return float(w[-1] - w[0])


def tune_simulation(
    sim,
    cache: Optional[TuningCache] = None,
    key: Optional[str] = None,
    force: bool = False,
    **tuner_kwargs,
) -> AutotuneResult:
    """Cache-aware tuning of a live simulation.

    A cache hit applies the stored profile and returns immediately (no
    warmup sweeps consumed); a miss — or ``force=True`` — runs the
    warmup search and persists the winner so the next job with the same
    workload shape reuses it.
    """
    if key is None:
        key = profile_key(
            sim.model,
            backend=sim.engine.backend.name,
            method=sim.engine.method,
        )
    if cache is not None and not force:
        hit = cache.lookup(key)
        if hit is not None:
            sim.apply_tuning(hit)
            baseline = TuningParameters.make(
                sim.engine.cluster_size, sim.max_delay
            )
            ensure_telemetry(sim.telemetry).event(
                "autotune_locked", key=key, chosen=hit.to_dict(),
                cache_hit=True,
            )
            return AutotuneResult(
                chosen=hit, baseline=baseline, key=key, cache_hit=True
            )
    result = WarmupAutotuner(sim, key=key, **tuner_kwargs).run()
    if cache is not None and not result.fallback:
        best = min(
            (t for t in result.trials if t.accepted),
            key=lambda t: t.sweep_seconds,
            default=None,
        )
        cache.store(
            key,
            result.chosen,
            extra={
                "sweep_seconds": best.sweep_seconds if best else None,
                "wrap_drift": best.wrap_drift if best else None,
            },
        )
    return result


def tune_config(
    cfg,
    cache: Optional[TuningCache] = None,
    backend: Optional[str] = None,
    **tuner_kwargs,
) -> AutotuneResult:
    """Tune a :class:`~repro.dqmc.SimulationConfig` on a throwaway run.

    Used by the campaign scheduler's pre-tune pass: builds a short-lived
    simulation for the config's workload shape, tunes it, persists the
    winner, and discards the simulation — the campaign's real jobs then
    all hit the cache.
    """
    sim = cfg.simulation(backend=backend)
    key = profile_key(
        sim.model, backend=sim.engine.backend.name, method=cfg.method
    )
    return tune_simulation(sim, cache=cache, key=key, **tuner_kwargs)
