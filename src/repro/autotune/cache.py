"""Persistent tuning-profile cache: tune once, reuse across jobs.

A campaign grid re-runs the same (lattice, beta, U, backend) point with
many seeds and mu values; the winning engineering parameters are a
property of the *machine and workload shape*, not of the Markov chain,
so they are tuned once and cached. The cache is a single JSON file
(default ``~/.cache/repro/tuning.json``, overridable per call or via
``$REPRO_TUNE_CACHE``) written atomically — temp file, flush + fsync,
``os.replace`` — so concurrent campaign workers can read it while a
tune is being persisted and a crash mid-write never corrupts it.

Hit/miss counters are persisted in the file itself so ``repro info``
can report how much re-tuning the cache has saved across sessions.
Concurrent stat bumps are last-writer-wins (the counters are advisory;
the profiles themselves are only ever added deterministically).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from .params import TuningParameters

__all__ = ["TuningCache", "default_cache_path", "profile_key"]

_FORMAT_VERSION = 1


def default_cache_path() -> Path:
    """``$REPRO_TUNE_CACHE``, else ``$XDG_CACHE_HOME/repro/tuning.json``,
    else ``~/.cache/repro/tuning.json``."""
    env = os.environ.get("REPRO_TUNE_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "tuning.json"


def profile_key(model, backend: Optional[str] = None, method: str = "prepivot") -> str:
    """The cache key of one workload shape.

    Keyed on everything that changes which engineering parameters win:
    the lattice (matrix size and structure), U and beta (conditioning),
    the slice count (which sizes divide L), the pivoting method and the
    execution backend. Deliberately *not* keyed on mu or seed — a
    chemical-potential calibration sweeps mu at fixed everything-else
    and must reuse one profile across the whole bisection.
    """
    resolved = backend if backend and backend != "auto" else (
        os.environ.get("REPRO_BACKEND") or "numpy"
    )
    return (
        f"{model.lattice}|U={model.u:g}|beta={model.beta:g}"
        f"|L={model.n_slices}|{method}|{resolved}"
    )


class TuningCache:
    """Atomic, fsync'd JSON store of per-workload tuning profiles."""

    def __init__(self, path: Union[str, Path, None] = None):
        self.path = Path(path) if path is not None else default_cache_path()
        #: lookups served from the file this session
        self.session_hits = 0
        #: lookups that found no profile this session
        self.session_misses = 0

    # -- file I/O ------------------------------------------------------------

    def _load(self) -> dict:
        """The parsed cache document, or a fresh one.

        A missing, torn or foreign file degrades to an empty cache: the
        worst outcome of a corrupt cache must be a re-tune, never a
        crash or a bogus profile.
        """
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return self._fresh()
        if not isinstance(doc, dict) or doc.get("version") != _FORMAT_VERSION:
            return self._fresh()
        doc.setdefault("stats", {"hits": 0, "misses": 0})
        doc.setdefault("profiles", {})
        return doc

    @staticmethod
    def _fresh() -> dict:
        return {
            "version": _FORMAT_VERSION,
            "stats": {"hits": 0, "misses": 0},
            "profiles": {},
        }

    def _write(self, doc: dict) -> None:
        """Atomic durable write: temp sibling + fsync + rename."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, indent=1)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- queries -------------------------------------------------------------

    def peek(self, key: str) -> Optional[TuningParameters]:
        """Like :meth:`lookup` but without touching the hit/miss stats
        (scheduler pre-scans use this so they don't inflate the counts
        the actual jobs then earn)."""
        entry = self._load()["profiles"].get(key)
        return TuningParameters.from_dict(entry) if entry else None

    def lookup(self, key: str) -> Optional[TuningParameters]:
        """The cached winner for ``key``, bumping the persisted counters."""
        doc = self._load()
        entry = doc["profiles"].get(key)
        if entry is not None:
            doc["stats"]["hits"] = int(doc["stats"].get("hits", 0)) + 1
            self.session_hits += 1
        else:
            doc["stats"]["misses"] = int(doc["stats"].get("misses", 0)) + 1
            self.session_misses += 1
        try:
            self._write(doc)
        except OSError:
            pass  # read-only cache location: serve the lookup anyway
        return TuningParameters.from_dict(entry) if entry else None

    def store(
        self, key: str, params: TuningParameters, extra: Optional[dict] = None
    ) -> None:
        """Persist the winning parameters (plus decision metadata)."""
        doc = self._load()
        entry = params.to_dict()
        if extra:
            entry.update(extra)
        doc["profiles"][key] = entry
        self._write(doc)

    def entries(self) -> Dict[str, dict]:
        """Every stored profile, keyed by workload."""
        return dict(self._load()["profiles"])

    def stats(self) -> Dict[str, int]:
        """Persisted cumulative hit/miss counters."""
        stats = self._load()["stats"]
        return {
            "hits": int(stats.get("hits", 0)),
            "misses": int(stats.get("misses", 0)),
        }
