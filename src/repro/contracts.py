"""Runtime shape/dtype/finiteness contracts for the hot numerical APIs.

The static pass (``tools/qmclint``) enforces *how* the numerics are
written; this module checks *what actually flows through them*. A
decorated function validates its ndarray arguments — symbolic shapes
shared across arguments, exact dtype, finiteness — whenever the
``REPRO_CONTRACTS`` environment variable is truthy::

    @shape_contract("(n,n)", dtype=np.float64, finite=True)
    def wrap_forward(factory, field, g: np.ndarray, l: int, sigma: int): ...

Positional specs bind, in order, to the parameters annotated
``np.ndarray``; keyword specs (``where={"g": "(n,n)"}``) name parameters
explicitly. Dimension tokens are either integers (exact) or symbols
(consistent across every spec of one call: two ``n`` dims must agree).
Non-ndarray values (lists a function coerces itself) are skipped.

Zero-cost guarantee: when ``REPRO_CONTRACTS`` is unset at import time the
decorator returns the function object *unchanged* — not a pass-through
wrapper — so production call overhead is exactly zero. The test suite
turns contracts on globally via ``tests/conftest.py``.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ENV_VAR",
    "ContractViolation",
    "contracts_enabled",
    "shape_contract",
]

ENV_VAR = "REPRO_CONTRACTS"

_FALSY = ("", "0", "false", "off", "no")

def _declared_compute_dtype(arguments: Dict[str, object]):
    """The compute dtype declared by a policy-carrying argument.

    Policy-aware contracts (``dtype="compute"``) assert the dtype the
    active :class:`~repro.precision.PrecisionPolicy` *declares*, not a
    hard-coded float64. The policy rides on the backend argument
    (``backend.policy``); duck-typed so this module stays import-light.
    Returns None when no carrier is present in the call.
    """
    for value in arguments.values():
        policy = getattr(value, "policy", None)
        compute = getattr(policy, "compute_dtype", None)
        if compute is not None:
            return np.dtype(compute)
    return None


def _ambient_compute_dtype() -> np.dtype:
    """Compute dtype of the ambient (environment-default) policy.

    The contract floor when no call argument carries a policy: resolves
    exactly like an unconfigured simulation would ($REPRO_PRECISION,
    else full64), so with nothing configured anywhere the historical
    exact-float64 check is preserved bit for bit.
    """
    from .precision import resolve_policy

    return resolve_policy(None).compute_dtype


def contracts_enabled() -> bool:
    """Whether contract validation is compiled into decorated functions."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


class ContractViolation(ValueError):
    """A decorated function received an argument violating its contract."""


DimSpec = Tuple[Union[int, str], ...]


def _parse_spec(spec: str) -> DimSpec:
    """``"(n,n)"`` -> ("n", "n"); ``"(4,m)"`` -> (4, "m"); ``"(n,)"`` -> ("n",)."""
    text = spec.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise ValueError(f"malformed shape spec {spec!r}: expected '(...)'")
    inner = text[1:-1].strip()
    if inner.endswith(","):
        inner = inner[:-1]
    dims: list = []
    if inner:
        for tok in inner.split(","):
            tok = tok.strip()
            if not tok:
                raise ValueError(f"malformed shape spec {spec!r}")
            dims.append(int(tok) if tok.lstrip("-").isdigit() else tok)
    return tuple(dims)


def _ndarray_param_names(fn: Callable) -> list:
    """Parameter names annotated as ndarrays, in signature order.

    Annotations are read as strings (the package uses ``from __future__
    import annotations``), so "np.ndarray" and "Optional[np.ndarray]"
    both count.
    """
    out = []
    for name, ann in getattr(fn, "__annotations__", {}).items():
        if name != "return" and "ndarray" in str(ann):
            out.append(name)
    return out


def _check_array(
    qualname: str,
    name: str,
    value: np.ndarray,
    dims: Optional[DimSpec],
    env: Dict[str, int],
    dtype,
    finite: bool,
) -> None:
    if dims is not None:
        if value.ndim != len(dims):
            raise ContractViolation(
                f"{qualname}: argument `{name}` has shape {value.shape}, "
                f"expected {len(dims)}-d {dims}"
            )
        for axis, dim in enumerate(dims):
            size = value.shape[axis]
            if isinstance(dim, int):
                if size != dim:
                    raise ContractViolation(
                        f"{qualname}: argument `{name}` axis {axis} has "
                        f"size {size}, expected {dim}"
                    )
            else:
                bound = env.setdefault(dim, size)
                if size != bound:
                    raise ContractViolation(
                        f"{qualname}: argument `{name}` axis {axis} has "
                        f"size {size}, but symbol `{dim}` is already "
                        f"bound to {bound}"
                    )
    if dtype is not None:
        if isinstance(dtype, tuple):
            if value.dtype not in dtype:
                raise ContractViolation(
                    f"{qualname}: argument `{name}` has dtype "
                    f"{value.dtype}, expected one of "
                    f"{', '.join(str(d) for d in dtype)}"
                )
        elif value.dtype != np.dtype(dtype):
            raise ContractViolation(
                f"{qualname}: argument `{name}` has dtype {value.dtype}, "
                f"expected {np.dtype(dtype)}"
            )
    if finite and not np.all(np.isfinite(value)):
        raise ContractViolation(
            f"{qualname}: argument `{name}` contains non-finite entries "
            "(NaN/Inf) — upstream stratification or wrapping has failed"
        )


def shape_contract(
    *specs: str,
    dtype=None,
    finite: bool = False,
    where: Optional[Dict[str, str]] = None,
) -> Callable[[Callable], Callable]:
    """Validate ndarray arguments of the decorated function.

    Parameters
    ----------
    *specs:
        Shape specs bound in order to the ndarray-annotated parameters,
        e.g. ``"(n,n)", "(n,)"``. Symbols are shared across one call.
    dtype:
        Exact dtype every checked array must have (None: skip). The
        string ``"compute"`` makes the contract precision-policy aware:
        when a call argument carries a policy (``backend.policy``), the
        arrays must match that policy's *declared* compute dtype
        exactly; with no carrier in the call, the ambient
        ($REPRO_PRECISION-resolved, default full64) policy's compute
        dtype applies. Accidental float16/object/complex arrays are
        rejected either way.
    finite:
        Also require every checked entry to be finite.
    where:
        Explicit ``{param_name: spec}`` mapping, merged over (and taking
        precedence against) the positional binding.
    """
    parsed = [_parse_spec(s) for s in specs]
    parsed_where = {k: _parse_spec(v) for k, v in (where or {}).items()}

    def decorate(fn: Callable) -> Callable:
        if not contracts_enabled():
            return fn
        array_params = _ndarray_param_names(fn)
        targets: Dict[str, Optional[DimSpec]] = dict(
            zip(array_params, parsed)
        )
        # Remaining annotated arrays get dtype/finite checks with no
        # shape constraint.
        for name in array_params:
            targets.setdefault(name, None)
        targets.update(parsed_where)
        if len(parsed) > len(array_params):
            raise ValueError(
                f"{fn.__qualname__}: {len(parsed)} shape spec(s) but only "
                f"{len(array_params)} ndarray-annotated parameter(s)"
            )
        sig = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            bound = sig.bind(*args, **kwargs)
            env: Dict[str, int] = {}
            if dtype == "compute":
                eff_dtype = (
                    _declared_compute_dtype(bound.arguments)
                    or _ambient_compute_dtype()
                )
            else:
                eff_dtype = dtype
            for name, dims in targets.items():
                value = bound.arguments.get(name)
                if isinstance(value, np.ndarray):
                    _check_array(
                        fn.__qualname__,
                        name,
                        value,
                        dims,
                        env,
                        eff_dtype,
                        finite,
                    )
            return fn(*args, **kwargs)

        wrapper.__contract__ = {  # introspection hook for tests/docs
            "specs": targets,
            "dtype": dtype,
            "finite": finite,
        }
        return wrapper

    return decorate
