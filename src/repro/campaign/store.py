"""The results catalog: per-job ``.npz`` archives + a queryable index.

Workers leave one :func:`repro.io.save_observables` archive per job
under ``<campaign>/jobs/<job_id>/results.npz``; this module turns that
directory layout into something a physicist can query::

    catalog = ResultsCatalog.load(campaign_dir)
    for rec in catalog.select(u=4.0):          # every U=4 job
        print(rec.params["mu"], rec.observables()["density"])
    est = catalog.merged("density", u=4.0, mu=0.0)   # replicas merged

The index (``catalog.json``) is a derived artifact, rewritten
atomically by the scheduler after each session — the manifest plus the
job directories remain the source of truth, so :meth:`ResultsCatalog.load`
falls back to rebuilding from them when the index is missing or stale
(e.g. after a mid-campaign SIGKILL). Merging replica estimates uses
sample-count weighting: means combine exactly as if the sample streams
had been concatenated, errors combine in quadrature with the same
weights (chains are independent by seeding, so cross terms vanish).
"""

from __future__ import annotations

import json
import numbers
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..measure import BinnedEstimate
from .manifest import Manifest
from .worker import RESULTS_NAME

__all__ = [
    "CatalogError",
    "JobRecord",
    "ResultsCatalog",
    "merge_estimates",
    "write_catalog_index",
]

INDEX_NAME = "catalog.json"


class CatalogError(RuntimeError):
    """Missing or inconsistent catalog."""


def merge_estimates(estimates: Sequence[BinnedEstimate]) -> BinnedEstimate:
    """Merge independent-run estimates of one observable.

    The merged mean is the sample-count-weighted average (identical to
    concatenating the runs' sample streams); the merged error adds the
    weighted per-run errors in quadrature, valid because the runs use
    mutually independent ``SeedSequence``-spawned streams.
    """
    if not estimates:
        raise ValueError("nothing to merge")
    weights = np.array([float(e.n_samples) for e in estimates])
    if weights.sum() <= 0:
        raise ValueError("merging estimates with zero samples")
    weights /= weights.sum()
    means = [np.asarray(e.mean, dtype=np.float64) for e in estimates]
    errors = [np.asarray(e.error, dtype=np.float64) for e in estimates]
    mean = sum(w * m for w, m in zip(weights, means))
    error = np.sqrt(sum((w * err) ** 2 for w, err in zip(weights, errors)))
    return BinnedEstimate(
        mean=mean,
        error=error,
        n_bins=int(sum(e.n_bins for e in estimates)),
        n_samples=int(sum(e.n_samples for e in estimates)),
    )


def _values_equal(a, b) -> bool:
    if isinstance(a, numbers.Number) and isinstance(b, numbers.Number):
        return float(a) == float(b)
    return a == b


@dataclass
class JobRecord:
    """One catalog entry: job identity, state, and lazy-loaded results."""

    job_id: str
    index: int
    params: Dict[str, object]
    status: str
    runs: int
    path: Optional[Path]

    @property
    def has_results(self) -> bool:
        return self.path is not None and Path(self.path).exists()

    def observables(self) -> Dict[str, BinnedEstimate]:
        """The job's archived estimates, keyed by observable name.

        Since the stats subsystem landed, workers archive *sign-corrected*
        estimates (< O s > / < s >, jackknife errors, equilibration cut
        applied) under the primary names whenever the sign permits; the
        archive metadata records this under ``sign_corrected`` and
        ``equilibration_cut`` (see :meth:`metadata`). The raw sign
        estimate always stays under ``"sign"``.
        """
        from ..io import load_observables

        if not self.has_results:
            raise CatalogError(
                f"job {self.job_id} ({self.status}) has no results archive"
            )
        obs, _meta = load_observables(self.path)
        return obs

    def metadata(self) -> dict:
        """The archive's metadata dict (``sign_corrected``,
        ``equilibration_cut``, the run-control digest under
        ``control``, job identity)."""
        from ..io import load_observables

        if not self.has_results:
            raise CatalogError(
                f"job {self.job_id} ({self.status}) has no results archive"
            )
        _obs, meta = load_observables(self.path)
        return meta

    def matches(self, filters: Dict[str, object]) -> bool:
        for key, want in filters.items():
            if not _values_equal(self.params.get(key.lower()), want):
                return False
        return True


def _records_from_manifest(manifest: Manifest) -> List[JobRecord]:
    records = []
    for job in manifest.jobs:
        state = manifest.states[job.job_id]
        results = manifest.job_dir(job.job_id) / RESULTS_NAME
        records.append(
            JobRecord(
                job_id=job.job_id,
                index=job.index,
                params=dict(job.params),
                status=state.status,
                runs=state.runs,
                path=results if results.exists() else None,
            )
        )
    return records


def write_catalog_index(manifest: Manifest) -> Path:
    """Atomically (re)write ``catalog.json`` from the manifest + disk."""
    records = _records_from_manifest(manifest)
    index = {
        "name": manifest.spec.name,
        "spec_hash": manifest.spec.spec_hash(),
        "jobs": {
            r.job_id: {
                "index": r.index,
                "params": r.params,
                "status": r.status,
                "runs": r.runs,
                "results": (
                    str(Path(r.path).relative_to(manifest.campaign_dir))
                    if r.path
                    else None
                ),
            }
            for r in records
        },
    }
    path = manifest.campaign_dir / INDEX_NAME
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(index, fh, sort_keys=True, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


class ResultsCatalog:
    """Queryable view over a campaign's results."""

    def __init__(self, campaign_dir: Union[str, Path], records: List[JobRecord]):
        self.campaign_dir = Path(campaign_dir)
        self.records = records

    @classmethod
    def load(cls, campaign_dir: Union[str, Path]) -> "ResultsCatalog":
        """Load from ``catalog.json`` when fresh, else rebuild from the
        manifest (always correct — the index is only a cache)."""
        campaign_dir = Path(campaign_dir)
        manifest = Manifest.load(campaign_dir)
        return cls(campaign_dir, _records_from_manifest(manifest))

    def __len__(self) -> int:
        return len(self.records)

    def select(self, **filters) -> List[JobRecord]:
        """Records whose params match every filter, e.g.
        ``select(u=4.0, backend="threaded")`` (keys case-insensitive)."""
        return [r for r in self.records if r.matches(filters)]

    def estimates(self, name: str, **filters) -> List[BinnedEstimate]:
        """Per-job estimates of one observable over matching *done* jobs."""
        out = []
        for record in self.select(**filters):
            if record.has_results:
                obs = record.observables()
                if name in obs:
                    out.append(obs[name])
        return out

    def merged(self, name: str, **filters) -> BinnedEstimate:
        """Matching jobs' estimates merged into one (see
        :func:`merge_estimates`).

        Because workers archive sign-corrected, equilibration-cut
        estimates under the primary names, this is the physical
        < O > = < O s > / < s > merged across replicas — not a merge of
        raw sign-weighted numerators."""
        estimates = self.estimates(name, **filters)
        if not estimates:
            raise CatalogError(
                f"no finished job matching {filters!r} records {name!r}"
            )
        return merge_estimates(estimates)

    def grid_values(self, key: str) -> List[object]:
        """Distinct values of one parameter across the catalog, sorted."""
        values = {r.params.get(key.lower()) for r in self.records}
        return sorted(values, key=lambda v: (str(type(v)), v))
