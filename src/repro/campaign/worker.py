"""One campaign job, executed inside an isolated worker process.

The scheduler never runs physics in its own process: each job attempt
is a child process whose only contract with the parent is the job
directory on disk (checkpoint, results archive, summary) plus an exit
code. That makes the failure model honest — a segfault, an OOM kill, or
an injected ``SIGKILL`` all look the same to the scheduler (nonzero
exit / missing summary), and nothing a worker does can corrupt the
manifest, which only the parent writes.

Restartability is delegated to :mod:`repro.dqmc.checkpoint`: a worker
checkpoints every ``checkpoint_every`` measurement sweeps into its job
directory, and any later attempt (retry after a crash, or a
``campaign resume`` after the whole scheduler died) resumes from that
checkpoint bit-exactly. An interrupted-and-resumed job therefore
produces the *same* results archive as an uninterrupted one — the
property the fault-injection tests pin.

:class:`FaultPlan` is the deterministic chaos hook: the scheduler
forwards it into the worker payload, and a matching worker kills
itself (``SIGKILL``), hangs, or raises at a well-defined point
(right after a checkpoint). Production campaigns simply leave it
``None``; tests and the CI smoke leg use it to prove the recovery
paths instead of hoping for real crashes.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["FaultPlan", "run_campaign_job", "WorkerCrash"]

RESULTS_NAME = "results.npz"
CHECKPOINT_NAME = "checkpoint.npz"
SUMMARY_NAME = "summary.json"
TUNING_NAME = "tuning.json"


class WorkerCrash(RuntimeError):
    """A worker process died (crash, kill, or injected fault)."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for scheduler tests.

    Parameters
    ----------
    kill_job:
        Expansion index of the job to fault (``None`` disables the
        plan entirely).
    on_attempt:
        Only this attempt number faults; later attempts run clean —
        so ``on_attempt=1`` exercises exactly one retry. ``0`` faults
        *every* attempt (exhausts the retry budget).
    mode:
        ``"kill"``: the worker SIGKILLs itself (process executor only;
        under the thread executor it degrades to an exception, since a
        thread cannot be killed without taking the scheduler with it).
        ``"exception"``: raise ``RuntimeError`` (works in both
        executors). ``"hang"``: sleep ``hang_seconds`` to trip the
        scheduler's wall-time timeout.
    after_sweeps:
        Fault only once this many measurement sweeps are checkpointed,
        so the retry genuinely resumes mid-job (0 = fault before any
        measurement).
    """

    kill_job: Optional[int] = None
    on_attempt: int = 1
    mode: str = "kill"
    after_sweeps: int = 0
    hang_seconds: float = 3600.0

    def __post_init__(self):
        if self.mode not in ("kill", "exception", "hang"):
            raise ValueError(f"unknown fault mode {self.mode!r}")

    def matches(self, job_index: int, attempt: int) -> bool:
        return self.kill_job == job_index and self.on_attempt in (0, attempt)

    def to_dict(self) -> dict:
        return {
            "kill_job": self.kill_job,
            "on_attempt": self.on_attempt,
            "mode": self.mode,
            "after_sweeps": self.after_sweeps,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> Optional["FaultPlan"]:
        return cls(**d) if d else None


def _trigger_fault(fault: FaultPlan, isolated: bool) -> None:
    if fault.mode == "hang":
        time.sleep(fault.hang_seconds)
        return
    if fault.mode == "kill" and isolated:
        os.kill(os.getpid(), signal.SIGKILL)
    raise RuntimeError(
        f"injected fault (mode={fault.mode}, isolated={isolated})"
    )


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _apply_cached_tuning(sim, cfg, job_dir: Path, cache_path: str):
    """Apply this job's tuning profile; returns a summary dict or None.

    Workers only ever *read* the shared cache (the scheduler pre-tunes
    each workload shape once) — a worker that tuned for itself would
    make retries depend on wall-clock timings. The applied profile is
    additionally pinned into the job directory, so a retry or a resume
    after the shared cache changed still replays the identical engine
    configuration; bit-exact restarts are the campaign contract.
    """
    from ..autotune import TuningCache, TuningParameters, profile_key

    pin = job_dir / TUNING_NAME
    if pin.exists():
        entry = json.loads(pin.read_text())
        params = TuningParameters.from_dict(entry["params"])
        source = "pinned"
    else:
        key = profile_key(
            sim.model, backend=sim.engine.backend.name, method=cfg.method
        )
        params = TuningCache(cache_path).lookup(key)
        if params is None:
            return None
        _write_json_atomic(pin, {"key": key, "params": params.to_dict()})
        source = "cache"
    sim.apply_tuning(params)
    return {"params": params.to_dict(), "source": source}


def run_campaign_job(payload: dict) -> dict:
    """Execute one job attempt; returns the summary dict it also writes.

    ``payload`` is a plain picklable dict (it crosses a spawn boundary):

    * ``job``: a :class:`~repro.campaign.spec.JobSpec` dict,
    * ``job_dir``: directory for checkpoint/results/summary,
    * ``attempt``: 1-based attempt number (for fault matching),
    * ``checkpoint_every``: measurement sweeps between checkpoints
      (0 = checkpoint only implicitly via the final results),
    * ``fault``: optional :class:`FaultPlan` dict,
    * ``isolated``: whether this runs in its own process (enables the
      ``kill`` fault mode),
    * ``tune_cache``: optional tuning-profile cache path; applied
      read-only when the job's config sets ``autotune``.
    * ``extend_round``: 0 for a normal run; round ``r`` multiplies the
      sweep budget to ``npass * (1 + r)`` — the scheduler's follow-up
      attempt for an error-targeted job that exhausted its budget
      before reaching the target (resumes from the job checkpoint).

    When the job's config sets ``target_error``, the attempt runs under
    a :class:`repro.stats.RunController` (equilibration detection +
    error-targeted stopping) and may finish well before ``npass``
    sweeps. The results archive then holds *sign-corrected* estimates
    under the primary observable names (metadata ``sign_corrected``
    records this) — the raw sign estimate stays under ``"sign"``.
    """
    # Imports live here, not at module top: the spawn entry pickles this
    # function by reference and the child pays the import cost once.
    from ..dqmc import Simulation, load_checkpoint, save_checkpoint
    from ..io import save_observables
    from .spec import JobSpec

    job = JobSpec.from_dict(payload["job"])
    job_dir = Path(payload["job_dir"])
    attempt = int(payload.get("attempt", 1))
    checkpoint_every = int(payload.get("checkpoint_every", 0))
    isolated = bool(payload.get("isolated", True))
    fault = FaultPlan.from_dict(payload.get("fault"))
    faulting = fault is not None and fault.matches(job.index, attempt)

    job_dir.mkdir(parents=True, exist_ok=True)
    cfg = job.config()
    sim = cfg.simulation(seed=job.seed_sequence())
    controller = cfg.controller()
    if controller is not None:
        # Before the checkpoint load: a resumed attempt must restore
        # the saved decision state into this controller instance.
        sim.attach_controller(controller)

    # Tuning must be applied before any sweep (and before a checkpoint
    # load) so every attempt of this job runs the same engine shape.
    tuning = None
    if cfg.autotune and payload.get("tune_cache"):
        tuning = _apply_cached_tuning(sim, cfg, job_dir, payload["tune_cache"])

    checkpoint = job_dir / CHECKPOINT_NAME
    measured = 0
    if checkpoint.exists():
        load_checkpoint(checkpoint, sim)
        measured = sim.measured_sweeps
    else:
        sim.warmup(cfg.nwarm)

    if faulting and fault.after_sweeps <= measured:
        _trigger_fault(fault, isolated)

    # Error-targeted jobs may be granted extension rounds by the
    # scheduler: each round adds another npass to the sweep budget.
    extend_round = int(payload.get("extend_round", 0))
    budget = cfg.npass * (1 + extend_round)

    t0 = time.monotonic()
    step = checkpoint_every if checkpoint_every > 0 else budget
    while measured < budget:
        chunk = min(step, budget - measured)
        if sim.controller is not None:
            _, done, _ = sim.measure_until(chunk)
            measured += done
            stopped = done < chunk or sim.controller.stopped
            if measured < budget or checkpoint_every > 0 or stopped:
                save_checkpoint(checkpoint, sim)
            if faulting and fault.after_sweeps <= measured:
                _trigger_fault(fault, isolated)
            if stopped:
                break
        else:
            sim.measure_sweeps(chunk)
            measured += chunk
            if measured < budget or checkpoint_every > 0:
                save_checkpoint(checkpoint, sim)
            if faulting and fault.after_sweeps <= measured:
                _trigger_fault(fault, isolated)

    result = sim.result(n_warmup=cfg.nwarm, n_measurement=measured)
    # Sign-corrected estimates are the archive's primary values — the
    # catalog and reports surface physical < O > = < O s > / < s > with
    # propagated errors, not raw sign-weighted numerators. At half
    # filling (sign identically +1) they coincide with the raw binning
    # analysis. The raw sign estimate stays under "sign"; a hard sign
    # problem falls back to raw numerators with sign_corrected False.
    observables = result.corrected if result.corrected else result.observables
    control = result.control
    save_observables(
        job_dir / RESULTS_NAME,
        observables,
        metadata={
            "job_id": job.job_id,
            "index": job.index,
            "params": job.params,
            "seed_entropy": job.seed_entropy,
            "spawn_key": list(job.spawn_key),
            "sign_corrected": bool(result.corrected),
            "control": control,
            "equilibration_cut": (
                control.get("discarded", 0) if control else 0
            ),
        },
    )
    summary = {
        "job_id": job.job_id,
        "index": job.index,
        "attempt": attempt,
        "measured_sweeps": measured,
        "budget_sweeps": budget,
        "extend_round": extend_round,
        "acceptance": result.sweep_stats.acceptance_rate,
        "mean_sign": result.mean_sign,
        "backend": sim.engine.backend.name,
        "elapsed_s": round(time.monotonic() - t0, 3),
        "tuning": tuning,
        "control": control,
    }
    _write_json_atomic(job_dir / SUMMARY_NAME, summary)
    return summary
