"""Campaign reporting: one JSON-able digest of a campaign directory.

``repro campaign status`` and ``repro campaign report`` both render
from :func:`build_report`, and the CI smoke leg archives the same dict
as an artifact (``campaign_report.json``) — so what a human reads at
the terminal and what the machines diff is one representation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from .manifest import Manifest

__all__ = ["build_report", "render_report", "write_report_json"]


def build_report(campaign_dir: Union[str, Path]) -> dict:
    """Summarize a campaign directory (manifest + job summaries)."""
    manifest = Manifest.load(campaign_dir)
    jobs = []
    for job in manifest.jobs:
        state = manifest.states[job.job_id]
        entry = {
            "id": job.job_id,
            "index": job.index,
            "status": state.status,
            "runs": state.runs,
            "retries": state.retries,
            "params": dict(job.params),
        }
        if state.last_error:
            entry["error"] = state.last_error
        if state.summary:
            entry["summary"] = state.summary
            control = state.summary.get("control")
            if control:
                # Error-targeted jobs: the run-control digest (did the
                # job reach its target, where the equilibration cut
                # landed, the achieved relative error) is first-class
                # report content, not something buried in the summary.
                entry["control"] = control
        jobs.append(entry)
    counts = manifest.counts()
    targeted = [j for j in jobs if j.get("control")]
    report_control = None
    if targeted:
        report_control = {
            "n_targeted": len(targeted),
            "n_target_met": sum(
                1 for j in targeted if j["control"].get("target_met")
            ),
            "total_discarded": sum(
                int(j["control"].get("discarded", 0)) for j in targeted
            ),
        }
    return {
        "name": manifest.spec.name,
        "spec_hash": manifest.spec.spec_hash(),
        "campaign_dir": str(Path(campaign_dir)),
        "n_jobs": len(manifest.jobs),
        "counts": counts,
        "total_runs": sum(s.runs for s in manifest.states.values()),
        "total_retries": manifest.total_retries(),
        "complete": manifest.complete,
        "all_done": manifest.all_done,
        "control": report_control,
        "jobs": jobs,
    }


def render_report(report: dict) -> str:
    """Human-readable view of :func:`build_report`'s dict."""
    counts = report["counts"]
    lines = [
        f"campaign   {report['name']}  [{report['spec_hash']}]",
        f"directory  {report['campaign_dir']}",
        f"jobs       {report['n_jobs']} total: "
        + ", ".join(f"{n} {s}" for s, n in sorted(counts.items()) if n),
        f"attempts   {report['total_runs']} runs, "
        f"{report['total_retries']} retries",
    ]
    if report.get("control"):
        ctl = report["control"]
        lines.append(
            f"targeted   {ctl['n_target_met']}/{ctl['n_targeted']} jobs "
            f"reached target_error "
            f"({ctl['total_discarded']} equilibration sweeps discarded)"
        )
    header = f"{'idx':>4} {'job':<14} {'status':<8} {'runs':>4}  params"
    lines += ["", header, "-" * len(header)]
    for job in report["jobs"]:
        swept = {
            k: v
            for k, v in job["params"].items()
            if k in _swept_keys(report)
        }
        params = ", ".join(f"{k}={v}" for k, v in sorted(swept.items()))
        lines.append(
            f"{job['index']:>4} {job['id']:<14} {job['status']:<8} "
            f"{job['runs']:>4}  {params}"
        )
        if job.get("control"):
            ctl = job["control"]
            rel = ctl.get("relative_error")
            rel_s = f"{rel:.2e}" if isinstance(rel, float) else str(rel)
            lines.append(
                f"{'':>4} {'':<14} control: "
                f"{ctl.get('target_observable')} rel_err {rel_s} "
                f"(target {ctl.get('target_error')}, "
                f"{'met' if ctl.get('target_met') else 'NOT met'}; "
                f"cut {ctl.get('discarded', 0)} sweeps)"
            )
        if job.get("error"):
            lines.append(f"{'':>4} {'':<14} error: {job['error']}")
    return "\n".join(lines)


def _swept_keys(report: dict) -> set:
    """Parameters that actually vary across the campaign's jobs."""
    jobs = report["jobs"]
    if not jobs:
        return set()
    keys = set(jobs[0]["params"])
    return {
        k
        for k in keys
        if len({repr(j["params"].get(k)) for j in jobs}) > 1
    } or keys


def write_report_json(campaign_dir: Union[str, Path], path: Union[str, Path]) -> dict:
    """Build the report and atomically write it as JSON; returns it."""
    report = build_report(campaign_dir)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(report, fh, sort_keys=True, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return report
