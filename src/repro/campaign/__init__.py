"""Campaign orchestration: declarative sweeps over fleets of DQMC runs.

The paper's capability figures (Figs 5-7) are grids of independent runs
— exactly the axis where scaling out pays (the paper found distributed
memory never paid off *within* a chain). This subsystem is that layer:

* :mod:`~repro.campaign.spec` — a declarative grid spec expands to
  deterministic jobs (content-hash ids, ``SeedSequence``-derived seeds);
* :mod:`~repro.campaign.manifest` — an append-only crash-safe JSONL
  journal of job states with run counters;
* :mod:`~repro.campaign.scheduler` — process-isolated workers with
  retry/backoff/timeout and injectable fault plans;
* :mod:`~repro.campaign.worker` — one job per process, checkpointed and
  bit-exactly resumable;
* :mod:`~repro.campaign.store` — the results catalog (per-job ``.npz``
  + queryable index, replica merging);
* :mod:`~repro.campaign.report` — the status/report digest.

:func:`run_campaign` is the one-call entry the CLI wraps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..telemetry import Telemetry
from .manifest import JobState, Manifest, ManifestError
from .report import build_report, render_report, write_report_json
from .scheduler import (
    CampaignScheduler,
    SchedulerConfig,
    WorkerTimeout,
    run_subprocess_task,
    run_tasks,
)
from .spec import CampaignSpec, JobSpec, SpecError
from .store import JobRecord, ResultsCatalog, merge_estimates
from .worker import FaultPlan, WorkerCrash

__all__ = [
    "CampaignScheduler",
    "CampaignSpec",
    "FaultPlan",
    "JobRecord",
    "JobSpec",
    "JobState",
    "Manifest",
    "ManifestError",
    "ResultsCatalog",
    "SchedulerConfig",
    "SpecError",
    "WorkerCrash",
    "WorkerTimeout",
    "build_report",
    "merge_estimates",
    "render_report",
    "run_campaign",
    "run_subprocess_task",
    "run_tasks",
    "write_report_json",
]


def run_campaign(
    spec: CampaignSpec,
    campaign_dir: Union[str, Path],
    config: Optional[SchedulerConfig] = None,
    telemetry: Optional[Telemetry] = None,
    resume: bool = False,
):
    """Create (or resume) a campaign directory and drive it to completion.

    Returns the scheduler's
    :class:`~repro.campaign.scheduler.CampaignRunSummary`. With
    ``resume=True`` an existing manifest is loaded and only non-terminal
    jobs run; without it a fresh manifest is created (and an existing
    one is an error — no accidental double campaigns).
    """
    campaign_dir = Path(campaign_dir)
    if resume:
        manifest = Manifest.load(campaign_dir)
        if spec is not None and manifest.spec.spec_hash() != spec.spec_hash():
            raise ManifestError(
                "resume spec does not match the manifest's spec "
                f"({spec.spec_hash()} vs {manifest.spec.spec_hash()})"
            )
    else:
        manifest = Manifest.create(campaign_dir, spec)
    with manifest:
        scheduler = CampaignScheduler(
            manifest, config=config, telemetry=telemetry
        )
        return scheduler.run()
