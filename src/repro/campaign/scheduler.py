"""Fault-tolerant job scheduling: process workers, retries, timeouts.

Two layers live here:

**The worker layer** — :func:`run_subprocess_task` / :func:`run_tasks`
— runs one picklable ``fn(payload)`` either inline on a thread
(``executor="thread"``) or in a fresh child process executing
:mod:`repro.campaign.child` (``executor="process"``). The process path
is deliberately one process per task rather than a shared
``ProcessPoolExecutor``: a SIGKILL'd or segfaulting worker breaks a
shared pool (``BrokenProcessPool`` fails every queued future), whereas
here it is an isolated, retryable event on exactly one task. Plain
subprocesses also dodge ``multiprocessing`` spawn's re-execution of the
parent's ``__main__`` (which breaks REPL / unguarded-script callers).
Payload and result cross the boundary as pickle files; a wall-time
``timeout`` escalates to ``SIGKILL``. :func:`repro.dqmc.run_ensemble`
rides this same layer for its ``executor="process"`` mode.

**The campaign layer** — :class:`CampaignScheduler` — drives a
:class:`~repro.campaign.manifest.Manifest` to completion: up to
``max_workers`` jobs in flight, each attempt recorded in the journal
before it starts, crashes/timeouts retried with exponential backoff up
to ``max_attempts``, exhausted jobs marked ``failed`` without stopping
the rest of the campaign. ``campaign.*`` gauges and events stream
through the shared :class:`~repro.telemetry.Telemetry` facade, and an
injectable :class:`~repro.campaign.worker.FaultPlan` makes every
recovery path deterministically testable.
"""

from __future__ import annotations

import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..telemetry import Telemetry, ensure_telemetry
from .manifest import Manifest
from .worker import FaultPlan, WorkerCrash, run_campaign_job

__all__ = [
    "CampaignScheduler",
    "SchedulerConfig",
    "WorkerTimeout",
    "run_subprocess_task",
    "run_tasks",
]


class WorkerTimeout(WorkerCrash):
    """A worker exceeded the wall-time budget and was killed."""


# ---------------------------------------------------------------------------
# worker layer
# ---------------------------------------------------------------------------


def _worker_env() -> dict:
    """Child environment with the parent's import paths preserved (the
    parent may run from ``PYTHONPATH=src`` or a pytest-augmented path)."""
    env = dict(os.environ)
    paths = [p for p in sys.path if p]
    if paths:
        env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


def run_subprocess_task(
    fn: Callable[[dict], object],
    payload: dict,
    timeout: Optional[float] = None,
):
    """Run ``fn(payload)`` in an isolated child process; return its result.

    The child executes :mod:`repro.campaign.child`; payload and result
    travel as pickle files in a private temp directory. Raises
    :class:`WorkerTimeout` (child killed) past ``timeout`` seconds,
    :class:`WorkerCrash` if the child died without reporting (segfault,
    OOM kill, injected SIGKILL), and ``RuntimeError`` if the child
    raised. ``fn`` must be an importable module-level function and
    ``payload`` picklable — both cross the process boundary.
    """
    target = f"{fn.__module__}:{fn.__qualname__}"
    workdir = Path(tempfile.mkdtemp(prefix="repro-worker-"))
    payload_path = workdir / "payload.pkl"
    result_path = workdir / "result.pkl"
    try:
        with open(payload_path, "wb") as fh:  # qmclint: disable=QL103 -- transient IPC scratch in a private tempdir, not a durability promise
            pickle.dump(payload, fh)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.campaign.child",
                target, str(payload_path), str(result_path),
            ],
            env=_worker_env(),
        )
        try:
            exitcode = proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise WorkerTimeout(
                f"worker exceeded {timeout:g}s wall-time budget"
            )
        if exitcode == 0:
            if not result_path.exists():
                raise WorkerCrash("worker exited 0 without writing a result")
            with open(result_path, "rb") as fh:
                status, value = pickle.load(fh)
            return value
        if exitcode == 1 and result_path.exists():
            with open(result_path, "rb") as fh:
                status, value = pickle.load(fh)
            if status == "error":
                raise RuntimeError(f"worker failed: {value}")
        raise WorkerCrash(
            f"worker died with exit code {exitcode} before reporting"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_tasks(
    fn: Callable[[dict], object],
    payloads: Sequence[dict],
    *,
    executor: str = "process",
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[object]:
    """Run ``fn`` over ``payloads`` concurrently; results in order.

    ``executor="thread"`` runs each task inline on a thread (cheap, no
    isolation — correct when the work is GIL-releasing BLAS);
    ``"process"`` gives every task its own spawned process (true
    isolation; a dying task raises :class:`WorkerCrash` for that entry
    only). The first failure propagates after all tasks finish
    submitting — callers wanting per-task outcomes should catch inside
    ``fn`` or use :class:`CampaignScheduler`, which adds retries.
    """
    if executor not in ("thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r} (expected 'thread' or 'process')"
        )
    workers = max_workers if max_workers is not None else len(payloads)
    workers = max(1, min(workers, len(payloads) or 1))

    def one(payload: dict):
        if executor == "thread":
            return fn(payload)
        return run_subprocess_task(fn, payload, timeout=timeout)

    if workers == 1 and executor == "thread":
        return [one(p) for p in payloads]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(one, payloads))


# ---------------------------------------------------------------------------
# campaign layer
# ---------------------------------------------------------------------------


@dataclass
class SchedulerConfig:
    """Execution policy for one scheduling session."""

    executor: str = "process"
    max_workers: Optional[int] = None
    #: attempts per job per session (1 = no retries)
    max_attempts: int = 3
    #: first retry delay; attempt ``n`` waits ``base * factor**(n-1)``
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    #: per-attempt wall-time budget in seconds (None = unbounded;
    #: process executor only — threads cannot be killed)
    timeout: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None
    #: retry jobs already marked failed in the manifest (resume --retry-failed)
    retry_failed: bool = False
    #: extra budget rounds for error-targeted jobs that exhaust their
    #: sweep budget before reaching target_error: round r resumes the
    #: job checkpoint with budget npass * (1 + r). 0 = never extend.
    max_extensions: int = 0

    def __post_init__(self):
        if self.executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_extensions < 0:
            raise ValueError("max_extensions must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.timeout is not None and self.executor == "thread":
            raise ValueError(
                "timeout requires executor='process' (threads cannot be "
                "killed when the budget expires)"
            )


@dataclass
class CampaignRunSummary:
    """What one ``CampaignScheduler.run()`` session accomplished."""

    counts: dict
    retries: int
    ran_jobs: int
    elapsed_s: float
    complete: bool = field(default=False)
    all_done: bool = field(default=False)


class CampaignScheduler:
    """Drives a manifest's runnable jobs to terminal states."""

    def __init__(
        self,
        manifest: Manifest,
        config: Optional[SchedulerConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.manifest = manifest
        self.config = config or SchedulerConfig()
        self.telemetry = ensure_telemetry(telemetry)
        self._tel_lock = threading.Lock()

    # -- telemetry helpers (writer is not thread-safe; scheduler is) --------

    def _event(self, kind: str, **fields) -> None:
        if self.telemetry.enabled:
            with self._tel_lock:
                self.telemetry.event(kind, **fields)

    def _publish_gauges(self) -> None:
        if not self.telemetry.enabled:
            return
        counts = self.manifest.counts()
        with self._tel_lock:
            for status, n in counts.items():
                self.telemetry.gauge(f"campaign.jobs_{status}", n)
            self.telemetry.gauge(
                "campaign.jobs_total", len(self.manifest.jobs)
            )
            self.telemetry.gauge(
                "campaign.retries", self.manifest.total_retries()
            )

    # -- job execution -------------------------------------------------------

    def _attempt_payload(self, job, attempt: int, extend_round: int = 0) -> dict:
        cfg = self.config
        fault = cfg.fault_plan
        return {
            "job": job.to_dict(),
            "job_dir": str(self.manifest.job_dir(job.job_id)),
            "attempt": attempt,
            "checkpoint_every": self.manifest.spec.checkpoint_every,
            "fault": fault.to_dict() if fault else None,
            "isolated": cfg.executor == "process",
            "tune_cache": self._tune_cache_path(),
            "extend_round": extend_round,
        }

    # -- autotuning ----------------------------------------------------------

    def _tune_cache_path(self) -> Optional[str]:
        path = getattr(self.manifest.spec, "tune_cache", None)
        return str(path) if path else None

    def _pretune(self, jobs) -> None:
        """Tune each distinct workload shape once, before any job runs.

        Workers never tune — they only *read* the cache — so a retried
        or resumed job deterministically re-applies the same profile
        instead of re-searching with different wall-clock timings. The
        pass is serial on purpose: each tune is a short throwaway
        simulation, and the point is to run it exactly once per shape.
        """
        path = self._tune_cache_path()
        if path is None:
            return
        from ..autotune import TuningCache, profile_key, tune_config

        cache = TuningCache(path)
        seen = set()
        for job in jobs:
            cfg = job.config()
            if not cfg.autotune:
                continue
            key = profile_key(
                cfg.model(), backend=cfg.backend, method=cfg.method
            )
            if key in seen:
                continue
            seen.add(key)
            # peek, not lookup: the scan must not inflate the hit/miss
            # counters the jobs themselves then earn.
            if cache.peek(key) is not None:
                self._event("campaign_tuned", key=key, cache_hit=True)
                continue
            result = tune_config(cfg, cache=cache)
            self._event(
                "campaign_tuned",
                key=result.key,
                cache_hit=False,
                chosen=result.chosen.to_dict(),
                fallback=result.fallback,
                sweeps_used=result.sweeps_used,
            )

    def _run_attempt(self, job, attempt: int, extend_round: int = 0) -> dict:
        payload = self._attempt_payload(job, attempt, extend_round=extend_round)
        if self.config.executor == "process":
            return run_subprocess_task(
                run_campaign_job, payload, timeout=self.config.timeout
            )
        return run_campaign_job(payload)

    def _run_job(self, job) -> None:
        cfg = self.config
        state = self.manifest.states[job.job_id]
        for local_attempt in range(1, cfg.max_attempts + 1):
            attempt = state.runs + 1  # counts across sessions/resumes
            self.manifest.mark_running(
                job.job_id, attempt=attempt, retry=local_attempt > 1
            )
            self._event(
                "job_started",
                job=job.job_id,
                index=job.index,
                attempt=attempt,
                retry=local_attempt > 1,
            )
            self._publish_gauges()
            try:
                summary = self._run_attempt(job, attempt)
            except (WorkerCrash, RuntimeError) as exc:
                error = f"{type(exc).__name__}: {exc}"
                if local_attempt >= cfg.max_attempts:
                    self.manifest.mark_failed(job.job_id, error=error)
                    self._event(
                        "job_failed",
                        job=job.job_id,
                        index=job.index,
                        attempt=attempt,
                        error=error,
                    )
                    self._publish_gauges()
                    return
                delay = cfg.backoff_base * cfg.backoff_factor ** (
                    local_attempt - 1
                )
                self._event(
                    "job_retry",
                    job=job.job_id,
                    index=job.index,
                    attempt=attempt,
                    error=error,
                    backoff_s=round(delay, 3),
                )
                if delay:
                    time.sleep(delay)
                continue
            summary = self._extend_job(job, state, summary)
            self.manifest.mark_done(job.job_id, summary=summary)
            self._event(
                "job_done", job=job.job_id, index=job.index, attempt=attempt
            )
            self._publish_gauges()
            return

    def _extend_job(self, job, state, summary: dict) -> dict:
        """Grant extension rounds to an error-targeted job that exhausted
        its budget without reaching the target; returns the final summary.

        Each round resumes the job's checkpoint with an extra ``npass``
        of budget (the worker honours ``extend_round``). Extensions are
        best-effort: a crash during a round keeps the last good summary
        — the job's base attempt already produced a valid archive.
        """
        cfg = self.config
        for round_ in range(1, cfg.max_extensions + 1):
            control = summary.get("control")
            if not control or control.get("target_met"):
                return summary
            attempt = state.runs + 1
            self.manifest.mark_running(job.job_id, attempt=attempt, retry=False)
            self._event(
                "job_extended",
                job=job.job_id,
                index=job.index,
                attempt=attempt,
                extend_round=round_,
                relative_error=control.get("relative_error"),
                target_error=control.get("target_error"),
            )
            self._publish_gauges()
            try:
                summary = self._run_attempt(job, attempt, extend_round=round_)
            except (WorkerCrash, RuntimeError) as exc:
                self._event(
                    "job_extension_failed",
                    job=job.job_id,
                    index=job.index,
                    attempt=attempt,
                    extend_round=round_,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return summary
        return summary

    # -- session -------------------------------------------------------------

    def run(self) -> CampaignRunSummary:
        """Run every runnable job to a terminal state; returns a summary.

        Interrupted jobs (status ``running`` with no live scheduler —
        i.e. a previous session crashed) are re-queued first, so a
        plain ``run()`` on a loaded manifest *is* a resume.
        """
        t0 = time.monotonic()
        requeued = self.manifest.requeue_interrupted()
        jobs = self.manifest.runnable_jobs(
            retry_failed=self.config.retry_failed
        )
        retries_before = self.manifest.total_retries()
        self._event(
            "campaign_started",
            name=self.manifest.spec.name,
            spec_hash=self.manifest.spec.spec_hash(),
            jobs=len(jobs),
            requeued=requeued,
            executor=self.config.executor,
        )
        self._publish_gauges()
        self._pretune(jobs)
        if jobs:
            workers = self.config.max_workers or len(jobs)
            workers = max(1, min(workers, len(jobs)))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(self._run_job, jobs))

        from .store import write_catalog_index

        write_catalog_index(self.manifest)
        counts = self.manifest.counts()
        summary = CampaignRunSummary(
            counts=counts,
            retries=self.manifest.total_retries() - retries_before,
            ran_jobs=len(jobs),
            elapsed_s=round(time.monotonic() - t0, 3),
            complete=self.manifest.complete,
            all_done=self.manifest.all_done,
        )
        self._event(
            "campaign_done",
            counts=counts,
            retries=summary.retries,
            elapsed_s=summary.elapsed_s,
        )
        if self.telemetry.enabled:
            with self._tel_lock:
                self.telemetry.snapshot()
        return summary
