"""The campaign's crash-safe state journal (JSONL, append-only).

A manifest is the single source of truth for "what has this campaign
done so far". It is an append-only JSONL file — the same torn-line-
tolerant format the telemetry writer uses — with three record kinds:

``campaign``
    First line: spec (verbatim), spec hash, format version.
``job``
    One per expanded job: id, index, resolved params, seed derivation.
``state``
    A transition for one job: ``running`` (a worker attempt started),
    ``done``, ``failed`` (attempts exhausted), or ``requeued`` (an
    interrupted attempt discovered at resume time).

Crash safety comes from the write discipline, not from rewriting:
every record is one ``write + flush + fsync`` of a single line under a
lock, so the file on disk is always a valid prefix of the journal plus
at most one torn final line (a crash mid-append). :meth:`Manifest.load`
tolerates exactly that torn tail and refuses anything else.

Replaying the journal yields each job's current :class:`JobState`,
including ``runs`` — the number of attempts ever *started*. The run
counter is how the resume guarantee is verified: after a mid-campaign
SIGKILL, ``campaign resume`` must finish the missing jobs while every
already-``done`` job keeps its original run count (it was never
re-executed).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .spec import CampaignSpec, JobSpec, SpecError

__all__ = ["Manifest", "ManifestError", "JobState", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.jsonl"
_FORMAT_VERSION = 1

#: terminal + live statuses a state record may carry
_STATUSES = ("running", "done", "failed", "requeued")


class ManifestError(RuntimeError):
    """Missing, corrupt, or mismatched manifest."""


@dataclass
class JobState:
    """Current replayed state of one job."""

    status: str = "pending"
    #: attempts ever started (== number of ``running`` records)
    runs: int = 0
    #: retries recorded by the scheduler (runs beyond each first
    #: attempt within a scheduling session)
    retries: int = 0
    last_error: Optional[str] = None
    summary: Optional[dict] = None

    @property
    def is_terminal(self) -> bool:
        return self.status in ("done", "failed")


class Manifest:
    """One campaign directory's journal: jobs + replayed states.

    Construct via :meth:`create` (new campaign) or :meth:`load`
    (status / resume). All mutation goes through the ``mark_*`` methods,
    each of which appends exactly one fsync'd line; instances are
    thread-safe (scheduler worker threads append concurrently).
    """

    def __init__(
        self,
        campaign_dir: Union[str, Path],
        spec: CampaignSpec,
        jobs: List[JobSpec],
    ):
        self.campaign_dir = Path(campaign_dir)
        self.spec = spec
        self.jobs = jobs
        self.states: Dict[str, JobState] = {
            job.job_id: JobState() for job in jobs
        }
        self._lock = threading.Lock()
        self._fh = None

    # -- construction --------------------------------------------------------

    @property
    def path(self) -> Path:
        return self.campaign_dir / MANIFEST_NAME

    def job_dir(self, job_id: str) -> Path:
        return self.campaign_dir / "jobs" / job_id

    @classmethod
    def create(
        cls, campaign_dir: Union[str, Path], spec: CampaignSpec
    ) -> "Manifest":
        """Expand ``spec`` and write a fresh journal (header + jobs).

        Refuses to overwrite an existing manifest — resuming goes
        through :meth:`load`; starting over means a new directory.
        """
        campaign_dir = Path(campaign_dir)
        manifest = cls(campaign_dir, spec, spec.expand())
        if manifest.path.exists():
            raise ManifestError(
                f"{manifest.path} already exists; use resume (or a fresh "
                "directory for a new campaign)"
            )
        campaign_dir.mkdir(parents=True, exist_ok=True)
        (campaign_dir / "jobs").mkdir(exist_ok=True)
        manifest._append(
            {
                "kind": "campaign",
                "version": _FORMAT_VERSION,
                "name": spec.name,
                "spec": spec.to_dict(),
                "spec_hash": spec.spec_hash(),
            }
        )
        for job in manifest.jobs:
            manifest._append({"kind": "job", **job.to_dict()})
        return manifest

    @classmethod
    def load(cls, campaign_dir: Union[str, Path]) -> "Manifest":
        """Replay an existing journal, tolerating one torn final line."""
        campaign_dir = Path(campaign_dir)
        path = campaign_dir / MANIFEST_NAME
        if not path.exists():
            raise ManifestError(f"no manifest at {path}")
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    break  # torn tail: a crash mid-append; drop it
                raise ManifestError(
                    f"{path}:{lineno}: corrupt journal line: {exc}"
                ) from exc
        if not records or records[0].get("kind") != "campaign":
            raise ManifestError(f"{path}: missing campaign header")
        header = records[0]
        if header.get("version") != _FORMAT_VERSION:
            raise ManifestError(
                f"unsupported manifest version {header.get('version')}"
            )
        try:
            spec = CampaignSpec.from_dict(header["spec"])
        except SpecError as exc:
            raise ManifestError(f"{path}: bad spec in header: {exc}") from exc
        jobs = [
            JobSpec.from_dict(r) for r in records if r.get("kind") == "job"
        ]
        manifest = cls(campaign_dir, spec, jobs)
        for record in records:
            if record.get("kind") != "state":
                continue
            state = manifest.states.get(record.get("id"))
            if state is None:
                raise ManifestError(
                    f"{path}: state record for unknown job {record.get('id')!r}"
                )
            manifest._apply(state, record)
        return manifest

    # -- journal writes ------------------------------------------------------

    def _append(self, record: dict) -> None:
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Manifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _state_record(self, job_id: str, status: str, **extra) -> dict:
        record = {
            "kind": "state",
            "id": job_id,
            "status": status,
            "time": round(time.time(), 3),
        }
        record.update(extra)
        return record

    def _apply(self, state: JobState, record: dict) -> None:
        status = record["status"]
        if status not in _STATUSES:
            raise ManifestError(f"unknown status {status!r} in journal")
        if status == "running":
            state.runs += 1
            if record.get("retry"):
                state.retries += 1
            state.status = "running"
        elif status == "requeued":
            state.status = "pending"
        else:
            state.status = status
            if status == "failed":
                state.last_error = record.get("error")
            if status == "done":
                state.summary = record.get("summary")

    def _transition(self, job_id: str, status: str, **extra) -> None:
        if job_id not in self.states:
            raise ManifestError(f"unknown job {job_id!r}")
        record = self._state_record(job_id, status, **extra)
        self._apply(self.states[job_id], record)
        self._append(record)

    # -- public transitions --------------------------------------------------

    def mark_running(self, job_id: str, attempt: int, retry: bool = False) -> None:
        self._transition(job_id, "running", attempt=attempt, retry=bool(retry))

    def mark_done(self, job_id: str, summary: Optional[dict] = None) -> None:
        self._transition(job_id, "done", summary=summary or {})

    def mark_failed(self, job_id: str, error: str) -> None:
        self._transition(job_id, "failed", error=str(error))

    def requeue_interrupted(self) -> List[str]:
        """Re-queue every job stuck in ``running`` (the scheduler that
        started them is gone — a crash or SIGKILL mid-campaign). The
        worker restarts them from their latest on-disk checkpoint, so
        already-sampled sweeps are not repeated."""
        requeued = []
        for job_id, state in self.states.items():
            if state.status == "running":
                self._transition(job_id, "requeued")
                requeued.append(job_id)
        return requeued

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> JobSpec:
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise ManifestError(f"unknown job {job_id!r}")

    def runnable_jobs(self, retry_failed: bool = False) -> List[JobSpec]:
        """Jobs a scheduler should run now, in expansion order."""
        wanted = ("pending",) + (("failed",) if retry_failed else ())
        return [
            job
            for job in self.jobs
            if self.states[job.job_id].status in wanted
        ]

    def counts(self) -> Dict[str, int]:
        out = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        for state in self.states.values():
            out[state.status] = out.get(state.status, 0) + 1
        return out

    @property
    def complete(self) -> bool:
        return all(s.is_terminal for s in self.states.values())

    @property
    def all_done(self) -> bool:
        return all(s.status == "done" for s in self.states.values())

    def total_retries(self) -> int:
        return sum(s.retries for s in self.states.values())
