"""Worker-process entry point: ``python -m repro.campaign.child``.

The scheduler isolates each job attempt in a plain subprocess running
this module (rather than ``multiprocessing`` spawn workers, whose
children re-execute the parent's ``__main__`` — which breaks REPL and
unguarded-script callers and couples worker startup to whatever the
parent process happens to be). The contract is three argv entries:

``target``
    The task function as ``"module:qualname"`` — imported fresh in the
    child, so it must be a module-level callable.
``payload_path``
    Pickle file holding the single argument passed to the target.
``result_path``
    Where the child writes ``("ok", value)`` or ``("error", message)``
    as a pickle, atomically (tmp + rename). The parent only trusts this
    file when the exit code says to; a SIGKILL'd child leaves either no
    file or a complete error record, never a half-trusted result.

Exit codes: 0 = result written; 1 = the target raised (error record
written); anything else = the process died (crash, OOM, signal).
"""

from __future__ import annotations

import importlib
import os
import pickle
import sys
from pathlib import Path

__all__ = ["main"]


def _write_pickle_atomic(path: Path, payload) -> None:
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def main(argv) -> int:
    if len(argv) != 3:
        print(
            "usage: python -m repro.campaign.child "
            "module:function payload.pkl result.pkl",
            file=sys.stderr,
        )
        return 2
    target, payload_path, result_path = argv
    module_name, _, func_name = target.partition(":")
    fn = importlib.import_module(module_name)
    for part in func_name.split("."):
        fn = getattr(fn, part)
    with open(payload_path, "rb") as fh:
        payload = pickle.load(fh)
    try:
        result = ("ok", fn(payload))
    except BaseException as exc:  # noqa: BLE001 - report, then fail loudly
        _write_pickle_atomic(
            Path(result_path), ("error", f"{type(exc).__name__}: {exc}")
        )
        return 1
    _write_pickle_atomic(Path(result_path), result)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
