"""Declarative sweep specs: a parameter grid becomes a list of jobs.

The paper's capability results (Figs 5-7) are not single runs but
*campaigns*: grids of (U, beta, mu, L) points, each an independent DQMC
run. A :class:`CampaignSpec` captures one such grid declaratively —

* ``base``: fixed :class:`~repro.dqmc.SimulationConfig` keys shared by
  every job (lattice size, dtau, sweep counts, ...),
* ``grid``: keys swept over lists of values (cartesian product), and
* ``replicas``: independent seeds per grid point —

and :meth:`CampaignSpec.expand` turns it into a deterministic list of
:class:`JobSpec`. Determinism is the load-bearing property:

* **Seeds** come from ``np.random.SeedSequence(base_seed).spawn(...)``
  — the documented way to derive mutually independent PCG64 streams.
  Each job stores only its ``spawn_key``; the worker reconstructs the
  identical stream as ``SeedSequence(entropy=base_seed,
  spawn_key=key)``, so a retried or resumed job replays the same
  Markov chain bit-for-bit.
* **Job IDs** are content hashes (sha256 over the canonical JSON of the
  resolved parameters + seed derivation), so the same physics point
  always lands in the same catalog slot and a re-expanded spec can be
  matched against an existing manifest.

The ``backend`` key may ride in ``base`` or ``grid`` like any other —
each job resolves it through the :mod:`repro.backends` registry, so one
campaign can shard its jobs across execution backends.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dqmc.config import SimulationConfig

__all__ = ["CampaignSpec", "JobSpec", "SpecError", "canonical_json", "content_hash"]

#: keys a spec may never set directly — the campaign layer owns them.
_RESERVED_KEYS = ("seed",)


class SpecError(ValueError):
    """Malformed or inconsistent campaign spec."""


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj, length: int = 12) -> str:
    """Stable content hash of a JSON-serializable object."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()[:length]


@dataclass(frozen=True)
class JobSpec:
    """One fully-resolved job: a config point plus its derived seed.

    ``spawn_key`` and ``seed_entropy`` reconstruct the job's
    ``SeedSequence`` exactly; ``job_id`` is a content hash over
    everything the Markov chain depends on, so identical physics always
    hashes identically and any parameter change changes the id.
    """

    index: int
    params: Dict[str, object]
    seed_entropy: int
    spawn_key: Tuple[int, ...]
    job_id: str = ""

    def __post_init__(self):
        if not self.job_id:
            object.__setattr__(self, "job_id", self.compute_id())

    def compute_id(self) -> str:
        return content_hash(
            {
                "params": self.params,
                "seed_entropy": self.seed_entropy,
                "spawn_key": list(self.spawn_key),
            }
        )

    def config(self) -> SimulationConfig:
        """The job's validated :class:`SimulationConfig`."""
        cfg = SimulationConfig(**self.params)
        cfg.validate()
        return cfg

    def seed_sequence(self):
        """Reconstruct the job's independent PCG64 seed stream."""
        import numpy as np

        return np.random.SeedSequence(
            entropy=self.seed_entropy, spawn_key=self.spawn_key
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "id": self.job_id,
            "params": dict(self.params),
            "seed_entropy": self.seed_entropy,
            "spawn_key": list(self.spawn_key),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        return cls(
            index=int(d["index"]),
            params=dict(d["params"]),
            seed_entropy=int(d["seed_entropy"]),
            spawn_key=tuple(d["spawn_key"]),
            job_id=d.get("id", ""),
        )


@dataclass
class CampaignSpec:
    """A declarative sweep: base config x parameter grid x replicas."""

    name: str = "campaign"
    base: Dict[str, object] = field(default_factory=dict)
    grid: Dict[str, Sequence] = field(default_factory=dict)
    replicas: int = 1
    base_seed: int = 0
    #: measurement sweeps between intra-job checkpoints (0 = only
    #: implicit end-of-job state; interrupted jobs then restart clean).
    checkpoint_every: int = 100
    #: tuning-profile cache path for jobs with ``autotune`` set; the
    #: scheduler pre-tunes each distinct workload shape once and the
    #: workers reuse the cached winner (None = package default path).
    tune_cache: Optional[str] = None

    def __post_init__(self):
        if self.replicas < 1:
            raise SpecError("replicas must be >= 1")
        if self.checkpoint_every < 0:
            raise SpecError("checkpoint_every must be >= 0")
        known = {f.name for f in dataclasses.fields(SimulationConfig)}
        for section, keys in (("base", self.base), ("grid", self.grid)):
            for key in keys:
                if key in _RESERVED_KEYS:
                    raise SpecError(
                        f"{section} key {key!r} is campaign-managed: per-job "
                        "seeds derive from base_seed via SeedSequence.spawn"
                    )
                if key not in known:
                    raise SpecError(
                        f"{section} key {key!r} is not a SimulationConfig "
                        f"field (known: {', '.join(sorted(known))})"
                    )
        overlap = set(self.base) & set(self.grid)
        if overlap:
            raise SpecError(
                f"keys in both base and grid: {', '.join(sorted(overlap))}"
            )
        for key, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError(f"grid key {key!r} needs a non-empty list")

    # -- derived -------------------------------------------------------------

    @property
    def n_points(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    @property
    def n_jobs(self) -> int:
        return self.n_points * self.replicas

    def spec_hash(self) -> str:
        return content_hash(self.to_dict())

    def expand(self) -> List[JobSpec]:
        """The deterministic job list: sorted grid keys, cartesian
        product in each key's listed value order, replicas innermost.

        Every job's parameters are validated through
        :meth:`SimulationConfig.validate` (including backend-name and
        backend x method checks) *here*, at expansion time — a bad grid
        point fails before any job is scheduled.
        """
        keys = sorted(self.grid)
        jobs: List[JobSpec] = []
        index = 0
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            point = dict(self.base)
            point.update(dict(zip(keys, combo)))
            # Full resolved parameter set (defaults included) so the
            # job id pins *everything* the run depends on.
            cfg = SimulationConfig(**point)
            cfg.validate()
            params = dataclasses.asdict(cfg)
            del params["seed"]  # campaign-managed (see _RESERVED_KEYS)
            for _ in range(self.replicas):
                jobs.append(
                    JobSpec(
                        index=index,
                        params=params,
                        seed_entropy=self.base_seed,
                        spawn_key=(index,),
                    )
                )
                index += 1
        return jobs

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "replicas": self.replicas,
            "base_seed": self.base_seed,
            "checkpoint_every": self.checkpoint_every,
        }
        # Only serialized when set, so specs predating the tuning layer
        # keep their spec_hash (and manifests keep matching).
        if self.tune_cache is not None:
            d["tune_cache"] = str(self.tune_cache)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignSpec":
        unknown = set(d) - {
            "name", "base", "grid", "replicas", "base_seed",
            "checkpoint_every", "tune_cache",
        }
        if unknown:
            raise SpecError(f"unknown spec keys: {', '.join(sorted(unknown))}")
        tune_cache = d.get("tune_cache")
        return cls(
            name=str(d.get("name", "campaign")),
            base=dict(d.get("base", {})),
            grid=dict(d.get("grid", {})),
            replicas=int(d.get("replicas", 1)),
            base_seed=int(d.get("base_seed", 0)),
            checkpoint_every=int(d.get("checkpoint_every", 100)),
            tune_cache=str(tune_cache) if tune_cache is not None else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError("spec JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())
