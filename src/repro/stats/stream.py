"""Online log-binning: constant-memory Monte Carlo error analysis.

The post-hoc :class:`~repro.measure.Accumulator` keeps every per-sweep
sample in RAM — O(n) scalars and, for the array observables (<n_k>,
C_zz), O(n * N^2) doubles, which at the paper's 32x32 beta=32 scale
(3000 sweeps, N = 1024) is tens of gigabytes. Log-binning makes the
same binning analysis *streaming*: at every power-of-two bin width
``2^k`` keep only a Welford (count, mean, M2) triple plus at most one
pending half-filled bin. Total state per observable is O(log n) copies
of the observable's shape — independent of the run length.

Agreement contract with the post-hoc path (tested in
``tests/test_stats_stream.py``; see ``docs/analysis.md``):

* the **mean** uses every sample (level 0), whereas
  :func:`~repro.measure.binned_statistics` drops the trailing partial
  bin — identical when the bin width divides n, within the dropped
  tail's statistical weight otherwise;
* the **error** is read from the deepest level with at least the
  requested number of complete bins. When ``n = n_bins * 2^k`` the bin
  boundaries coincide exactly with the post-hoc analysis and the error
  matches to floating-point roundoff (Welford vs. two-pass summation);
  otherwise both are estimates of the same plateau and agree
  statistically.

Checkpointability: the full accumulator state round-trips losslessly
through :meth:`LogBinningAccumulator.state_meta` /
:meth:`~LogBinningAccumulator.state_arrays`, so a resumed run continues
the Welford recursions from the exact saved floats — bit-exact with an
uninterrupted run (the property :mod:`repro.dqmc.checkpoint` pins).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..measure.estimators import BinnedEstimate

__all__ = ["LogBinningAccumulator", "StreamingAccumulator", "StreamingError"]

#: 2^48 samples — beyond any conceivable run; bounds the level list.
_MAX_LEVELS = 48


class StreamingError(RuntimeError):
    """An operation that requires retained sample series was asked of a
    streaming (constant-memory) accumulator."""


class _Level:
    """Welford state for one bin width: complete-bin count, running
    mean, running M2, and at most one pending half-filled bin."""

    __slots__ = ("count", "mean", "m2", "pending")

    def __init__(self, shape: Tuple[int, ...]):
        self.count = 0
        self.mean = np.zeros(shape, dtype=np.float64)
        self.m2 = np.zeros(shape, dtype=np.float64)
        self.pending: Optional[np.ndarray] = None


class LogBinningAccumulator:
    """Streaming log-binned statistics of one (scalar or array) observable.

    Level ``k`` sees the series averaged over non-overlapping windows of
    ``2^k`` consecutive samples; its Welford triple yields the standard
    error of those bin means. The level ladder grows logarithmically
    with the sample count; nothing else is retained.
    """

    def __init__(self, shape: Sequence[int] = ()):
        self.shape = tuple(int(s) for s in shape)
        self._levels: List[_Level] = []

    # -- accumulation --------------------------------------------------------

    def add(self, value) -> None:
        """Fold one sample into every bin level it completes."""
        x = np.asarray(value, dtype=np.float64)
        if x.shape != self.shape:
            raise ValueError(
                f"sample shape {x.shape} != accumulator shape {self.shape}"
            )
        carry: Optional[np.ndarray] = x
        level = 0
        while carry is not None and level < _MAX_LEVELS:
            if level == len(self._levels):
                self._levels.append(_Level(self.shape))
            lv = self._levels[level]
            lv.count += 1
            delta = carry - lv.mean
            lv.mean = lv.mean + delta / lv.count
            lv.m2 = lv.m2 + delta * (carry - lv.mean)
            if lv.pending is None:
                lv.pending = carry
                carry = None
            else:
                carry = 0.5 * (lv.pending + carry)
                lv.pending = None
            level += 1

    @property
    def n_samples(self) -> int:
        return self._levels[0].count if self._levels else 0

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    @property
    def mean(self) -> np.ndarray:
        """Mean over *all* samples (level 0 sees every one)."""
        if not self._levels:
            raise ValueError("no samples")
        return self._levels[0].mean.copy()

    def error(self, level: int) -> np.ndarray:
        """Standard error of the mean from level ``level``'s bin means."""
        lv = self._levels[level]
        if lv.count < 2:
            return np.full(self.shape, np.inf, dtype=np.float64)
        return np.sqrt(lv.m2 / (lv.count - 1) / lv.count)

    def estimate(self, n_bins: int = 16) -> BinnedEstimate:
        """The streaming analogue of :func:`~repro.measure.binned_statistics`.

        Reads the error from the deepest level still holding at least
        ``max(2, min(n_bins, n // 2))`` complete bins — the same
        shrink-when-short rule the post-hoc analysis applies.
        """
        n = self.n_samples
        if n == 0:
            raise ValueError("no samples")
        if n == 1:
            return BinnedEstimate(
                mean=self.mean,
                error=np.full(self.shape, np.inf, dtype=np.float64),
                n_bins=1,
                n_samples=1,
            )
        want = max(2, min(n_bins, n // 2))
        k = 0
        while (
            k + 1 < len(self._levels)
            and self._levels[k + 1].count >= want
        ):
            k += 1
        return BinnedEstimate(
            mean=self.mean,
            error=self.error(k),
            n_bins=self._levels[k].count,
            n_samples=n,
        )

    # -- merging (independent chains) ---------------------------------------

    def merge(self, other: "LogBinningAccumulator") -> None:
        """Fold an independent accumulator's levels into this one.

        Per level, Welford triples combine with Chan's parallel update
        (exact). The other accumulator's pending half-bins stay counted
        in the levels that already saw them but are not paired across
        the chain boundary — bins never straddle two independent chains
        (the same guarantee the post-hoc concatenation documents).
        """
        if other.shape != self.shape:
            raise ValueError(
                f"cannot merge shape {other.shape} into {self.shape}"
            )
        for k, olv in enumerate(other._levels):
            if k == len(self._levels):
                self._levels.append(_Level(self.shape))
            lv = self._levels[k]
            na, nb = lv.count, olv.count
            if nb == 0:
                continue
            tot = na + nb
            delta = olv.mean - lv.mean
            lv.mean = lv.mean + delta * (nb / tot)
            lv.m2 = lv.m2 + olv.m2 + delta * delta * (na * nb / tot)
            lv.count = tot
            if lv.pending is None and olv.pending is not None:
                lv.pending = olv.pending.copy()

    # -- checkpoint state ----------------------------------------------------

    def state_meta(self) -> dict:
        """JSON-safe structure (counts and pending flags); the float
        state rides separately in :meth:`state_arrays`."""
        return {
            "shape": list(self.shape),
            "levels": [
                {"count": lv.count, "has_pending": lv.pending is not None}
                for lv in self._levels
            ],
        }

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Exact float64 state, keyed ``l<k>.mean`` / ``l<k>.m2`` /
        ``l<k>.pending`` — lossless, so resume is bit-exact."""
        out: Dict[str, np.ndarray] = {}
        for k, lv in enumerate(self._levels):
            out[f"l{k}.mean"] = lv.mean
            out[f"l{k}.m2"] = lv.m2
            if lv.pending is not None:
                out[f"l{k}.pending"] = lv.pending
        return out

    @classmethod
    def from_state(
        cls, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> "LogBinningAccumulator":
        acc = cls(tuple(meta["shape"]))
        for k, lv_meta in enumerate(meta["levels"]):
            lv = _Level(acc.shape)
            lv.count = int(lv_meta["count"])
            lv.mean = np.array(arrays[f"l{k}.mean"], dtype=np.float64)
            lv.m2 = np.array(arrays[f"l{k}.m2"], dtype=np.float64)
            if lv_meta["has_pending"]:
                lv.pending = np.array(
                    arrays[f"l{k}.pending"], dtype=np.float64
                )
            acc._levels.append(lv)
        return acc


class StreamingAccumulator:
    """Drop-in constant-memory twin of :class:`~repro.measure.Accumulator`.

    Holds one :class:`LogBinningAccumulator` per observable name.
    ``reduce()`` returns the same ``{name: BinnedEstimate}`` mapping the
    post-hoc accumulator produces, so every downstream consumer
    (results archives, campaign catalogs, CLI summaries) is oblivious
    to which mode collected the data.

    ``track(name)`` designates *scalar* observables whose full sample
    series is additionally retained (one float per sample — run-control
    state for equilibration detection and tau_int, not per-observable
    array storage; the O(log n) guarantee concerns the array-valued
    observables that dominate memory). :meth:`series` works for tracked
    names and raises :class:`StreamingError` for everything else.
    """

    streaming = True

    def __init__(self, track: Iterable[str] = ()):
        self._accs: Dict[str, LogBinningAccumulator] = {}
        self._track: List[str] = []
        self._tracked: Dict[str, List[float]] = {}
        for name in track:
            self.track(name)

    # -- tracked scalar series ----------------------------------------------

    def track(self, name: str) -> None:
        """Retain ``name``'s scalar series (idempotent; call before or
        after samples exist — tracking starts from the next sample when
        samples were already folded in untracked)."""
        if name not in self._track:
            self._track.append(name)
            self._tracked.setdefault(name, [])

    @property
    def tracked_names(self) -> Tuple[str, ...]:
        return tuple(self._track)

    # -- Accumulator interface ----------------------------------------------

    def add(self, name: str, value) -> None:
        x = np.asarray(value, dtype=np.float64)
        acc = self._accs.get(name)
        if acc is None:
            acc = self._accs[name] = LogBinningAccumulator(x.shape)
        acc.add(x)
        if x.ndim == 0 and name in self._tracked:
            self._tracked[name].append(float(x))

    def names(self) -> Sequence[str]:
        return tuple(self._accs)

    def n_samples(self, name: str) -> int:
        acc = self._accs.get(name)
        return acc.n_samples if acc is not None else 0

    def series(self, name: str) -> np.ndarray:
        if name in self._tracked and name in self._accs:
            return np.asarray(self._tracked[name], dtype=np.float64)
        if name in self._accs:
            raise StreamingError(
                f"observable {name!r} is streamed (log-binned), its sample "
                "series is not retained; track() it before sampling or use "
                "the post-hoc accumulator (streaming=False)"
            )
        raise KeyError(name)

    def estimate(self, name: str, n_bins: int = 16) -> BinnedEstimate:
        """Log-binned estimate of one observable."""
        if name not in self._accs:
            raise KeyError(name)
        return self._accs[name].estimate(n_bins=n_bins)

    def reduce(self, n_bins: int = 16) -> Dict[str, BinnedEstimate]:
        return {
            name: acc.estimate(n_bins=n_bins)
            for name, acc in self._accs.items()
            if acc.n_samples
        }

    def extend(self, other: "StreamingAccumulator") -> None:
        """Merge an independent chain's streaming state (see
        :meth:`LogBinningAccumulator.merge`)."""
        if not getattr(other, "streaming", False):
            raise StreamingError(
                "cannot extend a streaming accumulator with a post-hoc one"
            )
        for name, oacc in other._accs.items():
            mine = self._accs.get(name)
            if mine is None:
                self._accs[name] = LogBinningAccumulator.from_state(
                    oacc.state_meta(), oacc.state_arrays()
                )
            else:
                mine.merge(oacc)
        for name, vals in other._tracked.items():
            if name in self._tracked:
                self._tracked[name].extend(vals)

    # -- run control ---------------------------------------------------------

    def clear(self) -> None:
        """Drop every observable (checkpoint-restore protocol)."""
        self._accs.clear()
        for name in self._track:
            self._tracked[name] = []

    def reset(self) -> int:
        """Discard all accumulated samples but keep the observable
        registry (names, shapes, tracking). Returns how many samples of
        the first registered observable were dropped.

        This is the streaming spelling of an equilibration cut: a
        log-binned state cannot shed a *prefix*, so the controller drops
        everything collected before the detection point (coarse but
        unbiased — see docs/analysis.md).
        """
        dropped = 0
        for name, acc in self._accs.items():
            dropped = max(dropped, acc.n_samples)
            self._accs[name] = LogBinningAccumulator(acc.shape)
        for name in self._track:
            self._tracked[name] = []
        return dropped

    def discard_prefix(self, n: int) -> None:
        raise StreamingError(
            "a streaming accumulator cannot discard a sample prefix; "
            "use reset() (drops everything collected so far)"
        )

    # -- checkpoint state ----------------------------------------------------

    def state_meta(self) -> dict:
        return {
            "names": list(self._accs),
            "track": list(self._track),
            "accs": {
                name: acc.state_meta() for name, acc in self._accs.items()
            },
        }

    def state_arrays(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for i, (name, acc) in enumerate(self._accs.items()):
            for key, arr in acc.state_arrays().items():
                out[f"s{i}.{key}"] = arr
        for j, name in enumerate(self._track):
            out[f"t{j}"] = np.asarray(
                self._tracked.get(name, []), dtype=np.float64
            )
        return out

    def restore_state(self, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        self._accs.clear()
        self._track = list(meta["track"])
        self._tracked = {}
        for i, name in enumerate(meta["names"]):
            sub = {
                key[len(f"s{i}."):]: arr
                for key, arr in arrays.items()
                if key.startswith(f"s{i}.")
            }
            self._accs[name] = LogBinningAccumulator.from_state(
                meta["accs"][name], sub
            )
        for j, name in enumerate(self._track):
            vals = arrays.get(f"t{j}")
            self._tracked[name] = (
                [float(v) for v in np.asarray(vals).ravel()]
                if vals is not None
                else []
            )
