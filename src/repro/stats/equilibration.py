"""Automated equilibration (warmup-end) detection.

A DQMC chain started from a random HS field takes some number of sweeps
to forget its initial condition; measurements recorded before that
point bias every average. Fixed warmup budgets are guesses — too short
at large beta (exactly the regime of Luu et al.'s large-beta study),
wasteful at small. This module detects the cut from the data:

**MSER-5** (marginal standard error rule on 5-sample batches): choose
the truncation point that minimizes the standard error of the mean of
the *remaining* batch means — the classic output-analysis rule for
steady-state simulation. It is cheap (O(n) with suffix sums), robust to
noise through batching, and errs toward keeping data.

**Geweke z-score** as a cross-check: compare the mean of the first 10%
of the truncated series against the last 50%, normalized by binned
(autocorrelation-aware) standard errors. |z| <= 2 says the truncated
series' head and tail agree — the chain is stationary; a larger |z|
says the MSER cut was not enough and the chain is still drifting.

Both operate on a scalar control series (sign-weighted observable
values as recorded); :class:`~repro.stats.controller.RunController`
runs them online and discards the flagged prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..measure.estimators import binned_statistics

__all__ = [
    "EquilibrationResult",
    "detect_equilibration",
    "geweke_z",
    "mser_cut",
]


@dataclass(frozen=True)
class EquilibrationResult:
    """Outcome of one equilibration check on a control series."""

    #: samples to discard from the front (multiple of ``batch``)
    n_cut: int
    #: Geweke z-score of the post-cut series (NaN when too short)
    z_score: float
    #: cut accepted: z-check passed and the cut is in the first half
    converged: bool
    #: series length the detection ran on
    n_samples: int
    #: MSER batch size
    batch: int

    def describe(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (
            f"equilibration {state}: cut {self.n_cut}/{self.n_samples} "
            f"samples (MSER-{self.batch}), Geweke z = {self.z_score:+.2f}"
        )


def mser_cut(series: np.ndarray, batch: int = 5) -> int:
    """MSER truncation point of a scalar series, in samples.

    Batches the series into means of ``batch`` consecutive samples and
    returns ``batch * argmin_d [ s^2(d) / (m - d) ]`` where ``s^2(d)``
    is the variance of the batch means after dropping the first ``d``
    — the truncation minimizing the (squared) marginal standard error.
    The search is restricted to the first half of the batches, the
    standard guard against the statistic's endpoint instability.
    """
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("equilibration detection needs a scalar series")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    m = x.size // batch
    if m < 4:
        return 0
    b = x[: m * batch].reshape(m, batch).mean(axis=1)
    # Suffix sums: var of b[d:] for every d in one vectorized pass.
    s1 = np.cumsum(b[::-1])[::-1]          # s1[d] = sum b[d:]
    s2 = np.cumsum((b * b)[::-1])[::-1]    # s2[d] = sum b[d:]^2
    d = np.arange(m // 2)                   # candidate cuts (first half)
    remaining = m - d
    mean = s1[d] / remaining
    var = np.maximum(s2[d] / remaining - mean * mean, 0.0)
    score = var / remaining
    return int(np.argmin(score)) * batch


def geweke_z(
    series: np.ndarray, first: float = 0.1, last: float = 0.5
) -> float:
    """Geweke convergence z-score of a scalar series.

    ``(mean of the first `first` fraction - mean of the last `last`
    fraction) / sqrt(se_first^2 + se_last^2)``, with each window's
    standard error from a binning analysis (so autocorrelation inflates
    the denominator instead of inflating |z|). Returns NaN when either
    window is too short to bin (< 4 samples).
    """
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("Geweke diagnostic needs a scalar series")
    if not (0 < first < 1 and 0 < last < 1 and first + last <= 1):
        raise ValueError("window fractions must satisfy 0 < f, l, f+l <= 1")
    n = x.size
    na = max(int(first * n), 1)
    nb = max(int(last * n), 1)
    if na < 4 or nb < 4:
        return float("nan")
    a = binned_statistics(x[:na], n_bins=8)
    b = binned_statistics(x[-nb:], n_bins=8)
    denom = float(np.hypot(float(a.error), float(b.error)))
    if denom == 0.0:
        return 0.0
    return (float(a.mean) - float(b.mean)) / denom


def detect_equilibration(
    series: np.ndarray,
    batch: int = 5,
    z_threshold: float = 2.0,
    max_cut_fraction: float = 0.5,
) -> EquilibrationResult:
    """MSER-5 cut plus Geweke cross-check on a scalar control series.

    The cut *converges* when (a) it lies within ``max_cut_fraction`` of
    the series (an endpoint cut means the chain is still drifting) and
    (b) the post-cut Geweke score satisfies ``|z| <= z_threshold`` (NaN
    — series too short to judge — is not converged).
    """
    x = np.asarray(series, dtype=np.float64)
    cut = mser_cut(x, batch=batch)
    tail = x[cut:]
    z = geweke_z(tail) if tail.size >= 8 else float("nan")
    converged = (
        cut <= max_cut_fraction * x.size
        and np.isfinite(z)
        and abs(z) <= z_threshold
    )
    return EquilibrationResult(
        n_cut=int(cut),
        z_score=float(z),
        converged=bool(converged),
        n_samples=int(x.size),
        batch=batch,
    )
