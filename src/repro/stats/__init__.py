"""Streaming statistical inference and run control for DQMC production.

The paper's capability results (32x32, beta = 32, Figs 5-7) are 36-hour
productions whose value rests entirely on trustworthy error bars. This
package makes that analysis a first-class, *streaming* pipeline stage
(the role binning/jackknife plays in Bauer's SciPost DQMC code) instead
of a post-hoc, memory-unbounded afterthought:

:mod:`~repro.stats.stream`
    Constant-memory online log-binning accumulators — Welford
    mean/variance at every power-of-two bin width, O(log n) state per
    observable — behind the same interface as the post-hoc
    :class:`~repro.measure.Accumulator`.
:mod:`~repro.stats.equilibration`
    Automated warmup-end detection (MSER-5 truncation with a Geweke
    z-score cross-check) so pre-equilibration measurement sweeps are
    flagged and discarded rather than silently biasing averages.
:mod:`~repro.stats.ratio`
    Sign-corrected ratio estimators <O s>/<s> with jackknife error
    propagation, plus split-R-hat cross-chain convergence diagnostics.
:mod:`~repro.stats.controller`
    :class:`RunController` — error-targeted adaptive stopping: measure
    until the chosen observable's relative error reaches the target (or
    the sweep budget runs out), with checkpointable state so a stopped
    run resumes bit-exactly.
:mod:`~repro.stats.analysis`
    The ``repro analyze`` backend: full statistical reports from a
    checkpoint, a results archive, or a campaign directory.

See ``docs/analysis.md`` for the methodology.
"""

from .stream import (
    LogBinningAccumulator,
    StreamingAccumulator,
    StreamingError,
)
from .equilibration import (
    EquilibrationResult,
    detect_equilibration,
    geweke_z,
    mser_cut,
)
from .ratio import (
    propagate_ratio_error,
    rhat_from_estimates,
    sign_corrected_ratio,
    sign_corrected_results,
    split_rhat,
)
from .controller import ControlDecision, RunController
from .analysis import (
    analyze_archive,
    analyze_campaign,
    analyze_checkpoint,
    analyze_path,
    render_analysis,
)

__all__ = [
    "ControlDecision",
    "EquilibrationResult",
    "LogBinningAccumulator",
    "RunController",
    "StreamingAccumulator",
    "StreamingError",
    "analyze_archive",
    "analyze_campaign",
    "analyze_checkpoint",
    "analyze_path",
    "detect_equilibration",
    "geweke_z",
    "mser_cut",
    "propagate_ratio_error",
    "rhat_from_estimates",
    "sign_corrected_ratio",
    "sign_corrected_results",
    "split_rhat",
]
