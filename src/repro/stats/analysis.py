"""Statistical reports from checkpoints, archives, and campaigns.

Backend of the ``repro analyze <path>`` CLI: point it at any artifact
the pipeline produces and get the full inference story — means, errors,
relative errors, integrated autocorrelation times, equilibration cuts,
sign correction, and cross-replica R-hat — without re-running anything.

Three artifact kinds are recognized (:func:`analyze_path` dispatches):

* a **checkpoint** ``.npz`` (has a ``header`` entry): the richest case —
  post-hoc checkpoints carry full sample series, so jackknife
  sign-corrected ratios, tau_int and a fresh equilibration detection
  all run here; streaming checkpoints reconstruct the log-binned state
  and report its estimates plus diagnostics on the tracked series.
* a **results archive** (has ``__meta__``): binned estimates only — the
  report surfaces them with relative errors and whatever provenance the
  producer recorded (controller summary, equilibration cut).
* a **campaign directory** (has ``manifest.jsonl``): per-job estimates
  plus replica-group merges with :func:`~repro.stats.rhat_from_estimates`
  convergence checks.

Reports are plain JSON-able dicts; :func:`render_analysis` turns one
into the human-readable text the CLI prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..measure.estimators import (
    Accumulator,
    BinnedEstimate,
    binned_statistics,
    integrated_autocorrelation_time,
)
from .equilibration import detect_equilibration
from .ratio import rhat_from_estimates, sign_corrected_results
from .stream import StreamingAccumulator, StreamingError

__all__ = [
    "analyze_archive",
    "analyze_campaign",
    "analyze_checkpoint",
    "analyze_path",
    "render_analysis",
]

#: checkpoint payload prefix for streaming accumulator state arrays
STREAM_PREFIX = "stream/"

#: preferred control observable for diagnostics, in order
_CONTROL_PREFERENCE = ("density", "kinetic_energy", "double_occupancy")


def _estimate_entry(
    name: str, est: BinnedEstimate, corrected: bool
) -> Dict[str, object]:
    """JSON-able digest of one observable's estimate."""
    mean = np.asarray(est.mean, dtype=np.float64)
    error = np.asarray(est.error, dtype=np.float64)
    entry: Dict[str, object] = {
        "n_bins": est.n_bins,
        "n_samples": est.n_samples,
        "corrected": bool(corrected),
    }
    if mean.ndim == 0:
        entry["mean"] = float(mean)
        entry["error"] = float(error)
        entry["relative_error"] = float(np.asarray(est.relative_error))
    else:
        # Array-valued (structure factors, momentum distributions):
        # summarize rather than dump the full grid into the report.
        entry["shape"] = list(mean.shape)
        entry["mean"] = float(mean.mean())
        entry["error"] = float(error.max()) if error.size else float("nan")
    return entry


def _control_name(names) -> Optional[str]:
    for name in _CONTROL_PREFERENCE:
        if name in names:
            return name
    for name in names:
        if name != "sign":
            return name
    return None


def _series_diagnostics(acc, report: Dict[str, object]) -> None:
    """Attach tau_int + equilibration for whichever control series the
    accumulator can produce (tracked names only, in streaming mode)."""
    control = _control_name(list(acc.names()))
    if control is None:
        return
    try:
        series = np.asarray(acc.series(control))
    except (StreamingError, KeyError):
        return
    if series.ndim != 1 or series.size < 8:
        return
    eq = detect_equilibration(series)
    report["equilibration"] = {
        "observable": control,
        "n_cut": eq.n_cut,
        "z_score": eq.z_score if np.isfinite(eq.z_score) else None,
        "converged": eq.converged,
        "n_samples": eq.n_samples,
    }
    obs = report["observables"]
    if control in obs:
        obs[control]["tau_int"] = integrated_autocorrelation_time(series)


def _analyze_accumulator(acc, n_bins: int = 16) -> Dict[str, object]:
    corrected = sign_corrected_results(acc, n_bins=n_bins)
    has_sign = "sign" in acc.names() and acc.n_samples("sign") > 0
    observables = {
        name: _estimate_entry(name, est, has_sign and name != "sign")
        for name, est in sorted(corrected.items())
    }
    report: Dict[str, object] = {
        "observables": observables,
        "sign_corrected": has_sign,
    }
    if has_sign:
        sgn = corrected.get("sign")
        if sgn is not None:
            report["mean_sign"] = float(np.asarray(sgn.mean))
    _series_diagnostics(acc, report)
    return report


def analyze_checkpoint(path: Union[str, Path]) -> Dict[str, object]:
    """Full statistical report from a simulation checkpoint."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as npz:
        header = json.loads(str(npz["header"]))
        stream_meta = header.get("streaming")
        if stream_meta is not None:
            arrays = {
                key[len(STREAM_PREFIX):]: np.asarray(npz[key])
                for key in npz.files
                if key.startswith(STREAM_PREFIX)
            }
            acc: object = StreamingAccumulator()
            acc.restore_state(stream_meta, arrays)
            mode = "streaming"
        else:
            acc = Accumulator()
            for i, name in enumerate(header.get("observable_names", [])):
                key = f"obs{i}"
                if key in npz.files:
                    acc.restore_series(name, npz[key])
            mode = "post-hoc"
    report = _analyze_accumulator(acc)
    ctl = header.get("controller")
    if isinstance(ctl, dict) and "target_met" not in ctl:
        # The header carries RunController.state_dict(), whose stop flag
        # is spelled "stopped"; renderers speak the summary() schema.
        ctl = dict(ctl, target_met=bool(ctl.get("stopped")))
    report.update(
        kind="checkpoint",
        path=str(path),
        mode=mode,
        model=header.get("model"),
        precision=header.get("precision"),
        controller=ctl,
    )
    return report


def analyze_archive(path: Union[str, Path]) -> Dict[str, object]:
    """Report from a finished results archive (estimates, no series)."""
    from ..io import load_observables

    path = Path(path)
    observables, meta = load_observables(path)
    already_corrected = bool(meta.get("sign_corrected"))
    entries = {
        name: _estimate_entry(
            name, est, already_corrected and name != "sign"
        )
        for name, est in sorted(observables.items())
    }
    report: Dict[str, object] = {
        "kind": "archive",
        "path": str(path),
        "observables": entries,
        "sign_corrected": already_corrected,
        "metadata": meta,
    }
    control = meta.get("control")
    if isinstance(control, dict):
        report["controller"] = control
    cut = meta.get("equilibration_cut")
    if cut is not None:
        report["equilibration"] = {"n_cut": int(cut)}
    return report


def _replica_key(params: Dict[str, object]) -> str:
    physical = {
        k: v for k, v in params.items() if k not in ("replica", "seed")
    }
    return json.dumps(physical, sort_keys=True, default=str)


def analyze_campaign(path: Union[str, Path]) -> Dict[str, object]:
    """Per-job estimates plus replica-merged values with R-hat checks."""
    from ..campaign.store import ResultsCatalog, merge_estimates

    path = Path(path)
    catalog = ResultsCatalog.load(path)
    jobs: List[Dict[str, object]] = []
    groups: Dict[str, Dict[str, List[BinnedEstimate]]] = {}
    group_params: Dict[str, Dict[str, object]] = {}
    for record in catalog.records:
        job: Dict[str, object] = {
            "job_id": record.job_id,
            "params": record.params,
            "status": record.status,
            "runs": record.runs,
        }
        if record.has_results:
            obs = record.observables()
            job["observables"] = {
                name: _estimate_entry(name, est, name != "sign")
                for name, est in sorted(obs.items())
            }
            key = _replica_key(record.params)
            group_params.setdefault(key, record.params)
            bucket = groups.setdefault(key, {})
            for name, est in obs.items():
                if np.asarray(est.mean).ndim == 0:
                    bucket.setdefault(name, []).append(est)
        jobs.append(job)
    merged: List[Dict[str, object]] = []
    for key, bucket in groups.items():
        params = {
            k: v
            for k, v in group_params[key].items()
            if k not in ("replica", "seed")
        }
        entry: Dict[str, object] = {"params": params, "observables": {}}
        for name, estimates in sorted(bucket.items()):
            combo = _estimate_entry(name, merge_estimates(estimates), True)
            combo["n_replicas"] = len(estimates)
            if len(estimates) >= 2:
                combo["rhat"] = rhat_from_estimates(estimates)
            entry["observables"][name] = combo
        merged.append(entry)
    return {
        "kind": "campaign",
        "path": str(path),
        "n_jobs": len(catalog),
        "jobs": jobs,
        "merged": merged,
    }


def analyze_path(path: Union[str, Path]) -> Dict[str, object]:
    """Dispatch on artifact kind (see module docstring)."""
    path = Path(path)
    if path.is_dir():
        if not (path / "manifest.jsonl").exists():
            raise ValueError(
                f"{path} is a directory but not a campaign "
                "(no manifest.jsonl)"
            )
        return analyze_campaign(path)
    if not path.exists():
        raise FileNotFoundError(str(path))
    with np.load(path, allow_pickle=False) as npz:
        files = set(npz.files)
    if "header" in files:
        return analyze_checkpoint(path)
    if "__meta__" in files:
        return analyze_archive(path)
    raise ValueError(
        f"{path} is neither a checkpoint nor a results archive"
    )


# -- rendering ---------------------------------------------------------------


def _fmt_value(entry: Dict[str, object]) -> str:
    mean = entry.get("mean")
    error = entry.get("error")
    if "shape" in entry:
        shape = "x".join(str(s) for s in entry["shape"])
        return f"array[{shape}] mean {mean:+.6f} (max err {error:.2g})"
    rel = entry.get("relative_error")
    rel_txt = (
        f"  rel {rel:.3g}" if isinstance(rel, float) and np.isfinite(rel)
        else ""
    )
    return f"{mean:+.6f} +- {error:.2g}{rel_txt}"


def _render_observables(lines: List[str], observables: Dict[str, dict]) -> None:
    width = max((len(n) for n in observables), default=0)
    for name, entry in observables.items():
        tags = []
        if entry.get("corrected"):
            tags.append("sign-corrected")
        tau = entry.get("tau_int")
        if isinstance(tau, float):
            tags.append(f"tau_int {tau:.2f}")
        rhat = entry.get("rhat")
        if isinstance(rhat, float) and np.isfinite(rhat):
            tags.append(f"R-hat {rhat:.3f}")
        if entry.get("n_replicas"):
            tags.append(f"{entry['n_replicas']} replicas")
        suffix = f"   [{', '.join(tags)}]" if tags else ""
        lines.append(
            f"  {name:<{width}}  {_fmt_value(entry)}"
            f"  (n={entry['n_samples']}, bins={entry['n_bins']}){suffix}"
        )


def render_analysis(report: Dict[str, object]) -> str:
    """Human-readable text for one analysis report."""
    lines: List[str] = []
    kind = report["kind"]
    lines.append(f"analyze: {report['path']}  [{kind}]")
    if kind == "campaign":
        done = sum(1 for j in report["jobs"] if "observables" in j)
        lines.append(
            f"jobs: {report['n_jobs']} total, {done} with results"
        )
        for group in report["merged"]:
            params = ", ".join(
                f"{k}={v}" for k, v in sorted(group["params"].items())
            )
            lines.append(f"merged [{params}]:")
            _render_observables(lines, group["observables"])
        return "\n".join(lines)
    if kind == "checkpoint":
        lines.append(f"mode: {report['mode']}")
        model = report.get("model")
        if model:
            lines.append(
                "model: U={u} beta={beta} L={n_slices} N={n_sites}".format(
                    **model
                )
            )
    if report.get("sign_corrected"):
        sgn = report.get("mean_sign")
        lines.append(
            "sign correction: on"
            + (f" (mean sign {sgn:+.4f})" if isinstance(sgn, float) else "")
        )
    eq = report.get("equilibration")
    if eq:
        z = eq.get("z_score")
        detail = f"cut {eq['n_cut']}"
        if eq.get("n_samples"):
            detail += f"/{eq['n_samples']}"
        if isinstance(z, float):
            detail += f", Geweke z {z:+.2f}"
        if "converged" in eq:
            detail += ", converged" if eq["converged"] else ", NOT converged"
        lines.append(f"equilibration: {detail}")
    ctl = report.get("controller")
    if isinstance(ctl, dict) and ctl.get("target_error") is not None:
        met = "met" if ctl.get("target_met") else "not met"
        lines.append(
            f"run control: target {ctl.get('target_observable')} rel err "
            f"<= {ctl.get('target_error')} ({met}, "
            f"{ctl.get('discarded', 0)} samples discarded)"
        )
    lines.append("observables:")
    _render_observables(lines, report["observables"])
    return "\n".join(lines)
