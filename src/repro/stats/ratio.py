"""Sign-corrected estimators and cross-chain convergence diagnostics.

Away from half filling the fermion sign is not identically +1 and every
physical expectation value is a *ratio* of Monte Carlo averages,
``<O> = <O s> / <s>``. The measurement layer records the sign-weighted
numerators; this module owns the division and — crucially — the error
propagation, which the old ``MeasurementCollector.results`` docstring
left to the caller ("divide by the sign estimate" with no error bar).

Two propagation paths, matched to the two accumulator modes:

* **jackknife** (:func:`sign_corrected_ratio`): leave-one-bin-out over
  joint (numerator, sign) bins — exact for the nonlinear ratio, the
  method of record when the sample series are retained (post-hoc mode,
  checkpoints, ``repro analyze``). For a constant sign (half filling)
  it reduces *identically* to the plain binning analysis.
* **linear propagation** (:func:`propagate_ratio_error`): combines two
  :class:`~repro.measure.BinnedEstimate` objects without their sample
  series, dropping the numerator-sign covariance term (conservative;
  exact at half filling where the sign variance is zero). This is what
  streaming mode and merged catalogs use.

Cross-chain convergence: :func:`split_rhat` implements the split-R-hat
potential-scale-reduction diagnostic over independent chains'
retained series; :func:`rhat_from_estimates` is the moment-based
variant available when only per-chain binned estimates survive
(streaming chains, campaign replicas).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..measure.estimators import BinnedEstimate

__all__ = [
    "propagate_ratio_error",
    "rhat_from_estimates",
    "sign_corrected_ratio",
    "sign_corrected_results",
    "split_rhat",
]

#: |<s>| below this is a hard sign problem: the ratio is statistically
#: meaningless and we refuse to quote one.
SIGN_FLOOR = 1e-12


def sign_corrected_ratio(
    numerator: np.ndarray,
    sign: np.ndarray,
    n_bins: int = 16,
) -> BinnedEstimate:
    """Jackknife estimate of ``<O s> / <s>`` from joint sample series.

    ``numerator`` holds the sign-weighted samples (Monte Carlo time on
    axis 0, scalar or array valued); ``sign`` the matching sign series.
    Bins both consistently, forms leave-one-bin-out ratios, and returns
    the bias-corrected jackknife mean with the jackknife error.
    """
    num = np.asarray(numerator, dtype=np.float64)
    sgn = np.asarray(sign, dtype=np.float64)
    if sgn.ndim != 1:
        raise ValueError("sign series must be scalar")
    if num.shape[0] != sgn.shape[0]:
        raise ValueError(
            f"numerator has {num.shape[0]} samples but sign has "
            f"{sgn.shape[0]}"
        )
    n = num.shape[0]
    if n == 0:
        raise ValueError("no samples")
    mean_sign = float(sgn.mean())
    if abs(mean_sign) < SIGN_FLOOR:
        raise ValueError(
            f"mean sign {mean_sign:g} is numerically zero; the "
            "sign-corrected ratio is undefined (hard sign problem)"
        )
    if n < 4:
        full = num.mean(axis=0) / mean_sign
        return BinnedEstimate(
            mean=np.asarray(full),
            error=np.full_like(np.asarray(full), np.inf, dtype=np.float64),
            n_bins=1,
            n_samples=n,
        )
    n_bins = max(2, min(n_bins, n // 2))
    per_bin = n // n_bins
    used = n_bins * per_bin
    num_bins = num[:used].reshape((n_bins, per_bin) + num.shape[1:]).sum(axis=1)
    sgn_bins = sgn[:used].reshape(n_bins, per_bin).sum(axis=1)
    num_total = num_bins.sum(axis=0)
    sgn_total = sgn_bins.sum()
    full = num_total / sgn_total
    # Leave-one-bin-out ratios.
    loo_sgn = sgn_total - sgn_bins
    if np.any(np.abs(loo_sgn) < SIGN_FLOOR * used):
        raise ValueError(
            "a leave-one-bin-out sign average is numerically zero; "
            "too few effective samples for a sign-corrected ratio"
        )
    shape_tail = (1,) * (num.ndim - 1)
    thetas = (num_total - num_bins) / loo_sgn.reshape((n_bins,) + shape_tail)
    theta_bar = thetas.mean(axis=0)
    var = (n_bins - 1) / n_bins * np.sum((thetas - theta_bar) ** 2, axis=0)
    bias_corrected = n_bins * full - (n_bins - 1) * theta_bar
    return BinnedEstimate(
        mean=np.asarray(bias_corrected),
        error=np.sqrt(var),
        n_bins=n_bins,
        n_samples=n,
    )


def propagate_ratio_error(
    numerator: BinnedEstimate, sign: BinnedEstimate
) -> BinnedEstimate:
    """Sign-corrected estimate from two binned estimates (no series).

    Linear (delta-method) propagation of ``r = n/s``::

        sigma_r^2 = (sigma_n / s)^2 + (n sigma_s / s^2)^2

    The numerator-sign covariance term is dropped — unavailable without
    the joint series — which makes the error *conservative* for the
    usual positively-correlated case, and exact at half filling where
    ``sigma_s = 0``. Streaming runs and catalog merges use this path.
    """
    s = float(np.asarray(sign.mean))
    if abs(s) < SIGN_FLOOR:
        raise ValueError(
            f"mean sign {s:g} is numerically zero; the sign-corrected "
            "ratio is undefined (hard sign problem)"
        )
    s_err = float(np.asarray(sign.error))
    mean = np.asarray(numerator.mean, dtype=np.float64) / s
    err = np.sqrt(
        (np.asarray(numerator.error, dtype=np.float64) / s) ** 2
        + (mean * s_err / s) ** 2
    )
    return BinnedEstimate(
        mean=mean,
        error=err,
        n_bins=min(numerator.n_bins, sign.n_bins),
        n_samples=numerator.n_samples,
    )


def sign_corrected_results(
    accumulator, n_bins: int = 16
) -> Dict[str, BinnedEstimate]:
    """Sign-corrected estimates of every observable in an accumulator.

    Works on both accumulator modes: post-hoc accumulators get the
    jackknife ratio per observable; streaming accumulators get linear
    propagation from their log-binned estimates. The ``"sign"`` entry
    itself stays the raw sign estimate. Without a recorded sign the
    raw estimates are returned unchanged (nothing to correct).
    """
    names = list(accumulator.names())
    if "sign" not in names or not accumulator.n_samples("sign"):
        return accumulator.reduce(n_bins=n_bins)
    out: Dict[str, BinnedEstimate] = {}
    if getattr(accumulator, "streaming", False):
        sign_est = accumulator.estimate("sign", n_bins=n_bins)
        out["sign"] = sign_est
        for name in names:
            if name == "sign" or not accumulator.n_samples(name):
                continue
            out[name] = propagate_ratio_error(
                accumulator.estimate(name, n_bins=n_bins), sign_est
            )
        return out
    sign_series = accumulator.series("sign")
    from ..measure.estimators import binned_statistics

    out["sign"] = binned_statistics(sign_series, n_bins=n_bins)
    for name in names:
        if name == "sign" or not accumulator.n_samples(name):
            continue
        series = accumulator.series(name)
        if series.shape[0] == sign_series.shape[0]:
            out[name] = sign_corrected_ratio(
                series, sign_series, n_bins=n_bins
            )
        else:
            # Different cadence (e.g. per-sweep dynamic observables vs
            # per-measurement scalars): propagate without the joint bins.
            out[name] = propagate_ratio_error(
                binned_statistics(series, n_bins=n_bins), out["sign"]
            )
    return out


def split_rhat(chains: Sequence[np.ndarray]) -> float:
    """Split-R-hat over independent chains' scalar sample series.

    Each chain is split in half (so intra-chain drift shows up as
    between-"chain" variance), then the classic potential scale
    reduction ``sqrt((W (n-1)/n + B/n) / W)`` is computed over the
    2m half-chains. Values near 1 indicate convergence; > ~1.05 means
    the chains disagree beyond their internal fluctuations. Returns NaN
    when there is not enough data (any half shorter than 4 samples).
    """
    halves = []
    for chain in chains:
        x = np.asarray(chain, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError("split_rhat needs scalar series")
        half = x.size // 2
        if half < 4:
            return float("nan")
        halves.append(x[:half])
        halves.append(x[half: 2 * half])
    n = min(h.size for h in halves)
    halves = [h[:n] for h in halves]
    m = len(halves)
    if m < 2:
        return float("nan")
    means = np.array([h.mean() for h in halves])
    variances = np.array([h.var(ddof=1) for h in halves])
    w = float(variances.mean())
    b = n * float(means.var(ddof=1))
    if w == 0.0:
        return 1.0 if b == 0.0 else float("inf")
    var_plus = (n - 1) / n * w + b / n
    return float(np.sqrt(var_plus / w))


def rhat_from_estimates(estimates: Sequence[BinnedEstimate]) -> float:
    """Moment-based R-hat when only per-chain binned estimates survive.

    Compares the between-chain spread of the chain means against the
    chains' own (autocorrelation-aware) squared standard errors::

        R = sqrt( (W_se + B_mean) / W_se )

    with ``W_se`` the mean squared per-chain standard error and
    ``B_mean`` the variance of the chain means. Like split-R-hat it is
    ~1 for honest chains and grows when chains disagree beyond their
    quoted errors; unlike split-R-hat it cannot see *intra*-chain
    drift, so it complements (not replaces) equilibration detection.
    Scalar estimates only; NaN with fewer than two chains.
    """
    if len(estimates) < 2:
        return float("nan")
    means = np.array([float(np.asarray(e.mean)) for e in estimates])
    ses = np.array([float(np.asarray(e.error)) for e in estimates])
    if not np.all(np.isfinite(ses)):
        return float("nan")
    w = float(np.mean(ses**2))
    b = float(means.var(ddof=1))
    if w == 0.0:
        return 1.0 if b == 0.0 else float("inf")
    return float(np.sqrt((w + b) / w))
