"""Error-targeted run control: measure until the error bar is good enough.

Fixed sweep budgets are always wrong in one direction: too short and
the result is noise, too long and the machine burns hours past the
point of diminishing returns (the paper's 3000-sweep Figs 5-7 budgets
were chosen by hand). A :class:`RunController` replaces the guess with
a statistical contract:

1. **Equilibrate** — until MSER-5 + Geweke agree the control series is
   stationary, keep sweeping; on detection, discard the flagged prefix
   (exact prefix in post-hoc mode, accumulated-so-far in streaming
   mode) and flag the run equilibrated.
2. **Converge** — after equilibration, evaluate the sign-corrected
   relative error of the target observable at a fixed sample cadence
   and stop the moment it reaches the target.

Decisions depend only on the accumulated sample stream and the sample
counter — never on wall clock — so a checkpointed run that is resumed
replays the *same* decisions at the same sweeps and stops at the same
point bit-exactly (tested). Controller state (equilibration flag, cut,
stop record) is serialized into the checkpoint via
:meth:`RunController.state_dict`.

Telemetry: each evaluation publishes ``stats.relative_error``,
``stats.n_samples``, ``stats.tau_int`` and ``stats.equilibration_cut``
gauges; transitions emit ``stats_equilibrated`` and
``stats_target_reached`` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..measure.estimators import (
    binned_statistics,
    integrated_autocorrelation_time,
)
from .equilibration import detect_equilibration
from .ratio import propagate_ratio_error

__all__ = ["ControlDecision", "RunController"]


@dataclass(frozen=True)
class ControlDecision:
    """One controller evaluation's verdict."""

    #: stop measuring now (target met)
    stop: bool
    #: "target" | "equilibrating" | "continue"
    reason: str
    #: samples of the target observable at evaluation time (post-discard)
    n_samples: int
    #: sign-corrected relative error of the target (inf when undefined)
    relative_error: float
    #: has the equilibration stage completed?
    equilibrated: bool
    #: total samples discarded as pre-equilibration so far
    discarded: int

    def describe(self) -> str:
        if self.stop:
            return (
                f"target reached: relative error "
                f"{self.relative_error:.3g} at {self.n_samples} samples "
                f"({self.discarded} discarded as pre-equilibration)"
            )
        if not self.equilibrated:
            return f"equilibrating ({self.n_samples} samples so far)"
        return (
            f"relative error {self.relative_error:.3g} "
            f"at {self.n_samples} samples"
        )


class RunController:
    """Adaptive stopping policy for one simulation's measurement stage.

    Parameters
    ----------
    target_observable:
        Scalar observable whose sign-corrected relative error drives
        the stop decision (default ``"density"``).
    target_error:
        Relative-error target epsilon; the run stops at the first
        evaluation where ``|error / mean| <= target_error``.
    check_every:
        Evaluation cadence in *samples* of the target observable (not
        sweeps — deterministic across checkpoint resume regardless of
        measurement cadence).
    min_samples:
        No evaluation (and no stop) before this many samples.
    equilibrate:
        Run the equilibration stage (default on). When off, the run is
        treated as already equilibrated (the configured warmup is
        trusted).
    z_threshold / batch:
        Forwarded to :func:`~repro.stats.detect_equilibration`.
    """

    def __init__(
        self,
        target_observable: str = "density",
        target_error: float = 0.01,
        check_every: int = 32,
        min_samples: int = 64,
        equilibrate: bool = True,
        z_threshold: float = 2.0,
        batch: int = 5,
    ):
        if target_error <= 0:
            raise ValueError("target_error must be > 0")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if min_samples < 8:
            raise ValueError("min_samples must be >= 8")
        self.target_observable = target_observable
        self.target_error = float(target_error)
        self.check_every = int(check_every)
        self.min_samples = int(min_samples)
        self.equilibrate = bool(equilibrate)
        self.z_threshold = float(z_threshold)
        self.batch = int(batch)
        # -- mutable decision state (checkpointed) --------------------------
        self.equilibrated = not self.equilibrate
        self.cut = 0
        self.discarded = 0
        self.checks = 0
        self.stopped = False
        self.last: Optional[ControlDecision] = None
        self._telemetry = None

    # -- wiring --------------------------------------------------------------

    def bind(self, sim) -> None:
        """Attach to a live simulation (telemetry + streaming tracking).

        Called by :meth:`Simulation.attach_controller`; ensures the
        streaming accumulator retains the scalar control series the
        equilibration detector needs.
        """
        self._telemetry = getattr(sim, "telemetry", None)
        acc = sim.collector.accumulator
        if getattr(acc, "streaming", False):
            acc.track("sign")
            acc.track(self.target_observable)

    def _gauge(self, name: str, value: float) -> None:
        if self._telemetry is not None and self._telemetry.enabled:
            self._telemetry.gauge(name, value)

    def _event(self, kind: str, **fields) -> None:
        if self._telemetry is not None and self._telemetry.enabled:
            self._telemetry.event(kind, **fields)

    # -- checkpoint state ----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "target_observable": self.target_observable,
            "target_error": self.target_error,
            "equilibrated": self.equilibrated,
            "cut": self.cut,
            "discarded": self.discarded,
            "checks": self.checks,
            "stopped": self.stopped,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed decision state (resume path).

        The *policy* fields (target, cadence) come from the live
        configuration; only the decision state is restored — a resumed
        run must not re-discard an already-discarded prefix.
        """
        self.equilibrated = bool(state["equilibrated"])
        self.cut = int(state["cut"])
        self.discarded = int(state["discarded"])
        self.checks = int(state["checks"])
        self.stopped = bool(state["stopped"])

    # -- the decision --------------------------------------------------------

    def relative_error(self, accumulator, n_bins: int = 16) -> float:
        """Current sign-corrected relative error of the target."""
        try:
            if getattr(accumulator, "streaming", False):
                num = accumulator.estimate(self.target_observable, n_bins)
                sgn = accumulator.estimate("sign", n_bins)
            else:
                num = binned_statistics(
                    accumulator.series(self.target_observable), n_bins
                )
                sgn = binned_statistics(accumulator.series("sign"), n_bins)
            est = propagate_ratio_error(num, sgn)
        except (KeyError, ValueError):
            return float("inf")
        return float(np.asarray(est.relative_error))

    def check(self, sim) -> Optional[ControlDecision]:
        """Evaluate after a sweep; ``None`` between cadence points.

        Gates on the target observable's sample count (``min_samples``
        reached and a multiple of ``check_every``), so resumed runs
        evaluate at identical points.
        """
        acc = sim.collector.accumulator
        n = acc.n_samples(self.target_observable)
        if n < self.min_samples or n % self.check_every:
            return None
        return self._evaluate(acc, n)

    def _evaluate(self, acc, n: int) -> ControlDecision:
        self.checks += 1
        if not self.equilibrated:
            decision = self._check_equilibration(acc, n)
            if decision is not None:
                self.last = decision
                return decision
            n = acc.n_samples(self.target_observable)
        rel = self.relative_error(acc)
        self._gauge("stats.relative_error", rel)
        self._gauge("stats.n_samples", n)
        self._gauge("stats.equilibration_cut", self.discarded)
        self._publish_tau(acc)
        stop = (
            np.isfinite(rel)
            and rel <= self.target_error
            and n >= self.min_samples
        )
        if stop and not self.stopped:
            self.stopped = True
            self._event(
                "stats_target_reached",
                observable=self.target_observable,
                relative_error=rel,
                target=self.target_error,
                n_samples=n,
                discarded=self.discarded,
            )
        decision = ControlDecision(
            stop=bool(stop),
            reason="target" if stop else "continue",
            n_samples=n,
            relative_error=rel,
            equilibrated=self.equilibrated,
            discarded=self.discarded,
        )
        self.last = decision
        return decision

    def _check_equilibration(self, acc, n: int) -> Optional[ControlDecision]:
        """Run detection; a returned decision means 'keep sweeping'."""
        series = np.asarray(acc.series(self.target_observable))
        eq = detect_equilibration(
            series, batch=self.batch, z_threshold=self.z_threshold
        )
        self._gauge("stats.geweke_z", eq.z_score)
        if not eq.converged:
            return ControlDecision(
                stop=False,
                reason="equilibrating",
                n_samples=n,
                relative_error=float("inf"),
                equilibrated=False,
                discarded=self.discarded,
            )
        self.equilibrated = True
        self.cut = eq.n_cut
        if eq.n_cut > 0:
            if getattr(acc, "streaming", False):
                self.discarded += acc.reset()
            else:
                acc.discard_prefix(eq.n_cut)
                self.discarded += eq.n_cut
        self._event(
            "stats_equilibrated",
            observable=self.target_observable,
            cut=eq.n_cut,
            discarded=self.discarded,
            geweke_z=eq.z_score,
            n_samples=n,
        )
        return None  # fall through to the target evaluation

    def _publish_tau(self, acc) -> None:
        """Gauge the control series' integrated autocorrelation time."""
        if self._telemetry is None or not self._telemetry.enabled:
            return
        try:
            series = np.asarray(acc.series(self.target_observable))
            if series.size >= 8:
                self._gauge(
                    "stats.tau_int",
                    integrated_autocorrelation_time(series),
                )
        except (KeyError, ValueError, StreamingErrorBase):
            pass

    def summary(self) -> dict:
        """JSON-able digest for result metadata / worker summaries."""
        last = self.last
        return {
            "target_observable": self.target_observable,
            "target_error": self.target_error,
            "target_met": self.stopped,
            "equilibrated": self.equilibrated,
            "equilibration_cut": self.cut,
            "discarded": self.discarded,
            "checks": self.checks,
            "relative_error": (
                last.relative_error if last is not None else None
            ),
        }


# Local alias so _publish_tau can catch the streaming error without a
# hard dependency order between the two modules at import time.
from .stream import StreamingError as StreamingErrorBase  # noqa: E402
