"""Shared-memory (OpenMP-style) parallel substrate."""

from .kernels import (
    parallel_column_norms,
    parallel_prepivot_permutation,
    scale_columns,
    scale_rows,
    scale_two_sided,
)
from .pool import (
    WorkerPool,
    chunk_ranges,
    get_num_threads,
    get_pool,
    parallel_for,
    set_num_threads,
)

__all__ = [
    "WorkerPool",
    "chunk_ranges",
    "get_num_threads",
    "get_pool",
    "parallel_column_norms",
    "parallel_for",
    "parallel_prepivot_permutation",
    "scale_columns",
    "scale_rows",
    "scale_two_sided",
    "set_num_threads",
]
