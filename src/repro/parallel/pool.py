"""OpenMP-like shared-memory parallel substrate.

The paper's Sec. IV-B parallelizes two kinds of work:

* **Level-3 kernels** (GEMM, QR) — delegated to the threaded BLAS that
  backs numpy/scipy, exactly as QUEST delegates to MKL.
* **Fine-grain level-1/2 kernels** (row/column scalings, column norms) —
  too little work per call for BLAS threading, so QUEST provides its own
  OpenMP loops that chunk the work across cores.

This module is the second piece: a process-wide worker pool with an
OpenMP-style ``parallel_for`` over index chunks. Workers execute numpy
slice kernels, which release the GIL inside the C loops, so chunked
elementwise work does scale with threads for matrices beyond the L2-size
crossover (and the benches measure exactly where).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "WorkerPool",
    "get_pool",
    "set_num_threads",
    "get_num_threads",
    "parallel_for",
    "chunk_ranges",
]

_lock = threading.Lock()
_pool: Optional["WorkerPool"] = None


def _default_threads() -> int:
    env = os.environ.get("REPRO_NUM_THREADS") or os.environ.get("OMP_NUM_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def chunk_ranges(n: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into up to ``n_chunks`` contiguous chunks.

    Contiguity matters: each worker touches a contiguous block of rows or
    columns, the cache-friendly access pattern the paper's OpenMP loops
    are written for.
    """
    if n <= 0:
        return []
    n_chunks = max(1, min(n_chunks, n))
    bounds = np.linspace(0, n, n_chunks + 1).astype(np.int64)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


class WorkerPool:
    """A persistent thread pool with an OpenMP-style for-loop primitive.

    Threads are long-lived (pool startup is paid once, like an OpenMP
    runtime) and the pool degrades gracefully to serial execution when
    sized at one thread.
    """

    def __init__(self, n_threads: Optional[int] = None):
        self.n_threads = n_threads if n_threads is not None else _default_threads()
        if self.n_threads < 1:
            raise ValueError("need at least one thread")
        self._executor = (
            ThreadPoolExecutor(max_workers=self.n_threads)
            if self.n_threads > 1
            else None
        )

    def parallel_for(
        self,
        n: int,
        body: Callable[[int, int], None],
        grain: int = 1,
    ) -> None:
        """Run ``body(start, stop)`` over a chunked ``range(n)``.

        ``grain`` is the minimum chunk size; loops smaller than
        ``grain * 2`` run serially (fork/join overhead would dominate —
        the same reason OpenMP schedules have a chunk floor).
        """
        if grain < 1:
            raise ValueError("grain must be >= 1")
        if self._executor is None or n < 2 * grain:
            if n > 0:
                body(0, n)
            return
        chunks = chunk_ranges(n, min(self.n_threads, max(1, n // grain)))
        if len(chunks) == 1:
            body(0, n)
            return
        futures = [self._executor.submit(body, a, b) for a, b in chunks]
        for f in futures:
            f.result()

    def map_reduce(
        self,
        n: int,
        mapper: Callable[[int, int], object],
        reducer: Callable[[Sequence[object]], object],
        grain: int = 1,
    ):
        """Chunked map + single-threaded reduce (for norms/reductions)."""
        if self._executor is None or n < 2 * grain:
            return reducer([mapper(0, n)] if n > 0 else [])
        chunks = chunk_ranges(n, min(self.n_threads, max(1, n // grain)))
        futures = [self._executor.submit(mapper, a, b) for a, b in chunks]
        return reducer([f.result() for f in futures])

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def get_pool() -> WorkerPool:
    """The process-wide pool (created on first use)."""
    global _pool
    with _lock:
        if _pool is None:
            _pool = WorkerPool()
        return _pool


def set_num_threads(n: int) -> WorkerPool:
    """Resize the process-wide pool (shutting the old one down)."""
    global _pool
    with _lock:
        if _pool is not None:
            _pool.shutdown()
        _pool = WorkerPool(n)
        return _pool


def get_num_threads() -> int:
    return get_pool().n_threads


def parallel_for(n: int, body: Callable[[int, int], None], grain: int = 1) -> None:
    """Module-level shorthand for ``get_pool().parallel_for``."""
    get_pool().parallel_for(n, body, grain=grain)
