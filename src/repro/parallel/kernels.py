"""Thread-parallel fine-grain kernels (paper Sec. IV-B).

The operations QUEST had to hand-parallelize with OpenMP because neither
MKL nor (here) numpy threads them at DQMC matrix sizes:

* row scaling ``diag(v) @ A`` (inside every B-matrix application),
* column scaling ``A @ diag(v)`` (stratification steps 3a/3d),
* two-sided scaling ``diag(v) @ A @ diag(v)^{-1}`` (wrapping),
* column 2-norms (the pre-pivot permutation input).

Each kernel has the same signature as its serial counterpart and runs
chunked over the process-wide :class:`~repro.parallel.pool.WorkerPool`.
Numpy's elementwise loops release the GIL, so chunks genuinely overlap.
The ``grain`` floors keep tiny matrices serial, where fork/join overhead
would exceed the work (measured crossover is a few hundred rows).
"""

from __future__ import annotations

import numpy as np

from ..linalg import flops
from .pool import get_pool

__all__ = [
    "scale_rows",
    "scale_columns",
    "scale_two_sided",
    "parallel_column_norms",
    "parallel_prepivot_permutation",
]

#: Minimum rows/columns per chunk before threading engages.
_GRAIN = 128


def scale_rows(
    a: np.ndarray,
    v: np.ndarray,
    out: np.ndarray | None = None,
    category: str = "scaling",
) -> np.ndarray:
    """``diag(v) @ a``, chunked across row blocks (in place into ``out``)."""
    a = np.asarray(a)
    m, n = a.shape
    if v.shape != (m,):
        raise ValueError("v must have one entry per row")
    res = np.empty_like(a) if out is None else out
    flops.record(category, flops.scale_flops(m, n))

    def body(r0: int, r1: int) -> None:
        np.multiply(a[r0:r1], v[r0:r1, None], out=res[r0:r1])

    get_pool().parallel_for(m, body, grain=_GRAIN)
    return res


def scale_columns(
    a: np.ndarray,
    v: np.ndarray,
    out: np.ndarray | None = None,
    category: str = "scaling",
) -> np.ndarray:
    """``a @ diag(v)``, chunked across row blocks (in place into ``out``)."""
    a = np.asarray(a)
    m, n = a.shape
    if v.shape != (n,):
        raise ValueError("v must have one entry per column")
    res = np.empty_like(a) if out is None else out
    flops.record(category, flops.scale_flops(m, n))

    def body(r0: int, r1: int) -> None:
        np.multiply(a[r0:r1], v[None, :], out=res[r0:r1])

    get_pool().parallel_for(m, body, grain=_GRAIN)
    return res


def scale_two_sided(
    a: np.ndarray,
    v: np.ndarray,
    col_v: np.ndarray | None = None,
    out: np.ndarray | None = None,
    category: str = "scaling",
) -> np.ndarray:
    """``diag(v) @ a @ diag(col_v)`` with ``col_v = 1/v`` by default —
    the wrapping scaling (Algorithm 7), in place into ``out``.

    Fused into one pass: each element is multiplied by ``v_i * col_v_j``.
    This is the CPU analogue of the paper's texture-cached CUDA kernel.
    The explicit column factor lets the unwrap pass the original ``v``
    instead of re-reciprocating (``1/(1/v)`` is not bitwise ``v``).
    """
    a = np.asarray(a)
    m, n = a.shape
    if m != n or v.shape != (n,):
        raise ValueError("two-sided scaling needs square a and matching v")
    res = np.empty_like(a) if out is None else out
    inv = (1.0 / v) if col_v is None else col_v
    flops.record(category, 2 * flops.scale_flops(m, n))

    def body(r0: int, r1: int) -> None:
        np.multiply(a[r0:r1], v[r0:r1, None], out=res[r0:r1])
        res[r0:r1] *= inv[None, :]

    get_pool().parallel_for(m, body, grain=_GRAIN)
    return res


def parallel_column_norms(a: np.ndarray) -> np.ndarray:
    """Column 2-norms with chunked partial sums (Sec. IV-B's norm loop).

    Chunks run over *rows* so each worker does one contiguous pass and
    produces a partial sum-of-squares per column; the reduce adds the
    partials. Mathematically identical (up to roundoff reassociation) to
    :func:`repro.linalg.column_norms`.
    """
    a = np.asarray(a)
    m, n = a.shape
    flops.record("norms", flops.norms_flops(m, n))

    def mapper(r0: int, r1: int) -> np.ndarray:
        blk = a[r0:r1]
        return np.einsum("ij,ij->j", blk, blk)

    def reducer(parts) -> np.ndarray:
        if not parts:
            return np.zeros(n)
        total = parts[0].copy()
        for p in parts[1:]:
            total += p
        return np.sqrt(total)

    return get_pool().map_reduce(m, mapper, reducer, grain=_GRAIN)


def parallel_prepivot_permutation(a: np.ndarray) -> np.ndarray:
    """Descending-norm permutation using the thread-parallel norms."""
    nrm = parallel_column_norms(a)
    return np.argsort(-nrm, kind="stable")
