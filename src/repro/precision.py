"""Precision policies: every dtype decision in the pipeline, in one place.

The paper's GPU target (Tesla C2050, Sec. V) has a 2:1 single-to-double
peak-FLOP ratio, and the dominant DQMC cost — clustered B-matrix GEMMs
and Green's-function wrapping — is exactly the work that tolerates
reduced precision *provided the graded QR stabilization stays in
double*. A :class:`PrecisionPolicy` makes that split explicit:

``compute_dtype``
    The dtype of the propagator pipeline's hot path: cluster products,
    wrap/unwrap, the equal-time Green's function between
    re-stratifications, and the delayed-update rank-1 buffers.

``spine_dtype``
    The dtype of the stabilization spine: graded QR factorizations,
    the diagonal scales ``D``, and the stratified inverse that refreshes
    ``G``. Under ``mixed`` this never narrows — the spine is what keeps
    ``exp(beta * bandwidth)`` dynamic range representable at all.

``drift_scale``
    Multiplier applied to the watchdog's wrap-drift tolerance. Reduced
    precision legitimately drifts more between refreshes (float32 eps is
    ~1e-7 against float64's ~2e-16); the scale keeps the default
    tolerance meaningful per policy instead of tripping on healthy runs.

Three policies ship:

========  =============  ===========  ===========
name      compute        spine        drift scale
========  =============  ===========  ===========
full64    float64        float64      1
mixed     float32        float64      100
fast32    float32        float32      10000
========  =============  ===========  ===========

``full64`` is the default and is bit-identical to the historical
pipeline (its coercions are no-ops). ``mixed`` is the paper-motivated
fast path. ``fast32`` narrows the spine too — it exists as the far end
of the ladder for perf experiments and is expected to need watchdog
*promotion* on cold workloads: a ``health_alert`` under ``fast32`` or
``mixed`` promotes the running engine to :attr:`PrecisionPolicy.safer`
in place rather than failing the run.

Everything below deliberately lives *outside* ``core/``, ``linalg/``,
``hamiltonian/`` and ``backends/`` — qmclint rule QL008 flags literal
dtype pins inside those packages so that this module stays the single
choke point for narrowing decisions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

__all__ = [
    "PrecisionPolicy",
    "PrecisionError",
    "POLICIES",
    "PROMOTION_LADDER",
    "DEFAULT_POLICY_NAME",
    "ENV_VAR",
    "resolve_policy",
]

#: environment variable consulted when the precision spec is "auto"
ENV_VAR = "REPRO_PRECISION"

#: policy applied when nothing is configured anywhere
DEFAULT_POLICY_NAME = "full64"

# The two dtypes the pipeline is allowed to narrow between. Spelled via
# np.dtype(<name>) so the policy module itself stays the only place a
# narrow float is ever named.
_F32 = np.dtype("float32")
_F64 = np.dtype("float64")


class PrecisionError(ValueError):
    """Unknown policy name or malformed precision spec."""


@dataclass(frozen=True)
class PrecisionPolicy:
    """An immutable (compute dtype, spine dtype, tolerance scale) triple."""

    name: str
    compute_dtype: np.dtype
    spine_dtype: np.dtype
    drift_scale: float
    description: str = field(default="", compare=False)

    # -- dtype application ---------------------------------------------------

    def compute(self, a) -> np.ndarray:
        """``a`` as an ndarray in the compute dtype (no-op if it already
        is — under ``full64`` this preserves object identity)."""
        return np.asarray(a, dtype=self.compute_dtype)

    def spine(self, a) -> np.ndarray:
        """``a`` as an ndarray in the stabilization-spine dtype."""
        return np.asarray(a, dtype=self.spine_dtype)

    # -- the promotion ladder ------------------------------------------------

    @property
    def safer(self) -> Optional["PrecisionPolicy"]:
        """The next-safer policy, or None if already at ``full64``.

        This is the watchdog's promotion target: ``fast32`` -> ``mixed``
        -> ``full64``.
        """
        i = PROMOTION_LADDER.index(self.name)
        if i + 1 >= len(PROMOTION_LADDER):
            return None
        return POLICIES[PROMOTION_LADDER[i + 1]]

    @property
    def is_narrowed(self) -> bool:
        """True if any part of the pipeline runs below float64."""
        return self.compute_dtype != _F64 or self.spine_dtype != _F64

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.name


#: least-safe first; promotion walks right.
PROMOTION_LADDER = ("fast32", "mixed", "full64")

POLICIES: Dict[str, PrecisionPolicy] = {
    "full64": PrecisionPolicy(
        name="full64",
        compute_dtype=_F64,
        spine_dtype=_F64,
        drift_scale=1.0,
        description="float64 everywhere (historical pipeline, bit-exact)",
    ),
    "mixed": PrecisionPolicy(
        name="mixed",
        compute_dtype=_F32,
        spine_dtype=_F64,
        drift_scale=100.0,
        description=(
            "float32 cluster products / wrapping / delayed updates, "
            "float64 graded-QR stabilization spine and accumulators"
        ),
    ),
    "fast32": PrecisionPolicy(
        name="fast32",
        compute_dtype=_F32,
        spine_dtype=_F32,
        drift_scale=10000.0,
        description=(
            "float32 everywhere including the spine - perf-experiment "
            "endpoint; expect watchdog promotion on hard workloads"
        ),
    ),
}


def resolve_policy(
    spec: Union[None, str, PrecisionPolicy] = None,
) -> PrecisionPolicy:
    """Resolve a precision spec to a policy.

    Accepts a :class:`PrecisionPolicy` (returned unchanged), a policy
    name, ``"auto"``/None/"" (consult ``$REPRO_PRECISION``, then fall
    back to ``full64``). Unknown names raise :class:`PrecisionError`
    listing the valid choices — a typo must not silently run full64.
    """
    if isinstance(spec, PrecisionPolicy):
        return spec
    if spec is None or spec == "" or spec == "auto":
        spec = os.environ.get(ENV_VAR, "") or DEFAULT_POLICY_NAME
    if not isinstance(spec, str):
        raise PrecisionError(
            f"precision spec must be a name or PrecisionPolicy, got "
            f"{type(spec).__name__}"
        )
    try:
        return POLICIES[spec]
    except KeyError:
        raise PrecisionError(
            f"unknown precision policy {spec!r} "
            f"(choose from: {', '.join(PROMOTION_LADDER[::-1])})"
        ) from None
