"""The discrete Hubbard-Stratonovich auxiliary field.

One Ising-like variable ``h_{l,i} = +-1`` per (time slice, site) pair.
The Metropolis sweep (paper Algorithm 1) proposes single-entry flips; the
field also knows how to produce the diagonal interaction factors

    V_{l,sigma} = exp(sigma * nu * diag(h_l))

that enter the B matrices, and the flip ratios

    alpha_{i,sigma} = exp(-2 sigma nu h_{l,i}) - 1.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HSField"]


class HSField:
    """An (L, N) array of +-1 HS spins with DQMC-specific helpers.

    Mutable by design — the Metropolis sweep flips entries in place. Use
    :meth:`copy` to snapshot a configuration.
    """

    def __init__(self, h: np.ndarray):
        h = np.asarray(h, dtype=np.float64)  # qmclint: disable=QL008 -- +-1 spins are exact at any width; float64 is the policy-independent master state
        if h.ndim != 2:
            raise ValueError("HS field must be (L, N)")
        if not np.all(np.abs(h) == 1.0):
            raise ValueError("HS field entries must be +-1")
        self.h = h

    # -- construction ---------------------------------------------------------

    @classmethod
    def random(
        cls, n_slices: int, n_sites: int, rng: np.random.Generator
    ) -> "HSField":
        """A uniformly random configuration (the paper's initial state).

        ``rng`` is required: every random draw in the package must be
        threaded from ``SimulationConfig.seed`` so runs are reproducible
        (qmclint rule QL002 enforces the no-hidden-RNG policy).
        """
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "HSField.random requires an explicit np.random.Generator; "
                "seed one from SimulationConfig.seed"
            )
        h = rng.choice([-1.0, 1.0], size=(n_slices, n_sites))
        return cls(h)

    @classmethod
    def ordered(cls, n_slices: int, n_sites: int, value: float = 1.0) -> "HSField":
        """A uniform configuration — deterministic tests start here."""
        if value not in (-1.0, 1.0):
            raise ValueError("value must be +-1")
        return cls(np.full((n_slices, n_sites), value))

    def copy(self) -> "HSField":
        return HSField(self.h.copy())

    # -- shape ----------------------------------------------------------------

    @property
    def n_slices(self) -> int:
        return self.h.shape[0]

    @property
    def n_sites(self) -> int:
        return self.h.shape[1]

    # -- DQMC helpers -----------------------------------------------------------

    def flip(self, l: int, i: int) -> None:
        """Flip ``h[l, i]`` in place."""
        self.h[l, i] = -self.h[l, i]

    def v_diagonal(self, l: int, sigma: int, nu: float) -> np.ndarray:
        """Diagonal of ``V_{l,sigma} = exp(sigma nu diag(h_l))`` (length N)."""
        if sigma not in (1, -1):
            raise ValueError("sigma must be +-1")
        return np.exp(sigma * nu * self.h[l])

    def alpha(self, l: int, i: int, sigma: int, nu: float) -> float:
        """Flip factor ``alpha = exp(-2 sigma nu h[l, i]) - 1``.

        This is the multiplicative change of the (i, i) entry of
        ``V_{l,sigma}`` under ``h[l,i] -> -h[l,i]``, and the only input the
        O(1) Metropolis ratio needs besides ``G(i, i)``.
        """
        if sigma not in (1, -1):
            raise ValueError("sigma must be +-1")
        return float(np.exp(-2.0 * sigma * nu * self.h[l, i]) - 1.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HSField):
            return NotImplemented
        return self.h.shape == other.h.shape and bool(np.all(self.h == other.h))

    def __hash__(self) -> None:  # mutable container
        raise TypeError("HSField is mutable and unhashable")
