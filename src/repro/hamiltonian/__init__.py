"""Hubbard Hamiltonian, Trotter discretization, HS field and B matrices."""

from .bmatrix import BMatrixFactory
from .checkerboard import CheckerboardPropagator, bond_groups
from .hs_field import HSField
from .hubbard import HubbardModel, hs_coupling
from .kinetic import KineticPropagator, free_dispersion_2d, free_greens_function

__all__ = [
    "BMatrixFactory",
    "CheckerboardPropagator",
    "HSField",
    "bond_groups",
    "HubbardModel",
    "KineticPropagator",
    "free_dispersion_2d",
    "free_greens_function",
    "hs_coupling",
]
