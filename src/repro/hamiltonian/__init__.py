"""Hubbard Hamiltonian, Trotter discretization, HS field and B matrices."""

from .bmatrix import BMatrixFactory, KINETIC_MODES, resolve_kinetic
from .checkerboard import CheckerboardError, CheckerboardPropagator, bond_groups
from .hs_field import HSField
from .hubbard import HubbardModel, hs_coupling
from .kinetic import KineticPropagator, free_dispersion_2d, free_greens_function

__all__ = [
    "BMatrixFactory",
    "CheckerboardError",
    "CheckerboardPropagator",
    "HSField",
    "KINETIC_MODES",
    "bond_groups",
    "resolve_kinetic",
    "HubbardModel",
    "KineticPropagator",
    "free_dispersion_2d",
    "free_greens_function",
    "hs_coupling",
]
