"""Kinetic propagator ``exp(-dtau * K)`` and free-fermion references.

K is real symmetric, so the matrix exponential is computed exactly through
one eigendecomposition — done once per simulation (K never changes during
sampling, paper Sec. III-A) and reused for the inverse propagator
``exp(+dtau K)`` needed by wrapping.

The same eigendecomposition gives the exact non-interacting (U = 0)
equal-time Green's function, the gold-standard reference the test suite
validates the whole DQMC pipeline against.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.linalg as sla

__all__ = ["KineticPropagator", "free_greens_function", "free_dispersion_2d"]


@dataclass(frozen=True)
class KineticPropagator:
    """Holds ``exp(-dtau K)``, its inverse, and the spectrum of K."""

    k_matrix: np.ndarray
    dtau: float

    def __post_init__(self) -> None:
        k = np.asarray(self.k_matrix)
        if k.ndim != 2 or k.shape[0] != k.shape[1]:
            raise ValueError("K must be square")
        if not np.allclose(k, k.T, atol=1e-12):
            raise ValueError("K must be symmetric")
        if self.dtau <= 0:
            raise ValueError("dtau must be positive")

    @cached_property
    def _eig(self) -> tuple:
        w, v = sla.eigh(np.asarray(self.k_matrix, dtype=np.float64))  # qmclint: disable=QL008 -- float64 masters; policy widths are realized via BMatrixFactory.exponentials
        return w, v

    @property
    def eigenvalues(self) -> np.ndarray:
        """Single-particle energies (eigenvalues of K)."""
        return self._eig[0]

    @cached_property
    def expk(self) -> np.ndarray:
        """``exp(-dtau K)`` — the kinetic half of every B matrix."""
        w, v = self._eig
        return (v * np.exp(-self.dtau * w)) @ v.T

    @cached_property
    def inv_expk(self) -> np.ndarray:
        """``exp(+dtau K)`` — used by wrapping's right-multiplication."""
        w, v = self._eig
        return (v * np.exp(self.dtau * w)) @ v.T

    @property
    def n(self) -> int:
        return self.k_matrix.shape[0]


def free_greens_function(k_matrix: np.ndarray, beta: float) -> np.ndarray:
    """Exact U = 0 equal-time Green's function ``<c c^dagger>``.

    ``G = (I + e^{-beta K})^{-1}`` evaluated through the eigenbasis with
    the overflow-free form ``1/(1 + e^{-beta w})`` (the Fermi function of
    ``-w``), valid for any beta.
    """
    w, v = sla.eigh(np.asarray(k_matrix, dtype=np.float64))  # qmclint: disable=QL008 -- exact U=0 reference is a float64 diagnostic by definition
    # Mode occupancy <n_w> = 1/(1 + e^{beta w}), evaluated overflow-free
    # for both signs of the exponent; then <c c^dagger> = 1 - <n_w>.
    # np.where evaluates both branches, so the exponent is clipped to the
    # finite range first; the clipped branch is only selected where the
    # un-clipped value would have under/overflowed to the same limit.
    bw = np.clip(beta * w, -700.0, 700.0)
    eneg = np.exp(-np.abs(bw))
    nw = np.where(bw > 0, eneg / (1.0 + eneg), 1.0 / (1.0 + eneg))
    g_eig = 1.0 - nw
    return (v * g_eig) @ v.T


def free_dispersion_2d(kx: np.ndarray, ky: np.ndarray, t: float = 1.0, mu: float = 0.0) -> np.ndarray:
    """Tight-binding dispersion ``-2t(cos kx + cos ky) - mu``.

    The analytic band structure of the 2D square lattice; tests compare
    the eigenvalues of K against it, and examples use it to locate the
    non-interacting Fermi surface that Fig 5's U = 2 data sharpens around.
    """
    return -2.0 * t * (np.cos(kx) + np.cos(ky)) - mu
