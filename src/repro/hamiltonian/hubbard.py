"""The Hubbard model and its DQMC discretization parameters.

The Hamiltonian (paper Sec. II-A):

.. math::

    H = -t \\sum_{\\langle r,r' \\rangle,\\sigma}
            (c^\\dagger_{r\\sigma} c_{r'\\sigma} + h.c.)
        + U \\sum_r (n_{r+} - 1/2)(n_{r-} - 1/2)
        - \\mu \\sum_r (n_{r+} + n_{r-})

The interaction is written in the particle-hole symmetric form (the
constant shift is dropped): with it, ``mu = 0`` is exactly half filling
(rho = 1) on a bipartite lattice — the density used in all of the paper's
physics figures.

Imaginary time is discretized as ``beta = L * dtau`` (Trotter), and the
on-site interaction is decoupled with the discrete Hubbard-Stratonovich
field ``h_{l,i} = +-1`` with coupling ``nu = arccosh(exp(U*dtau/2))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..lattice import GeneralLattice, MultilayerLattice, SquareLattice

Lattice = Union[SquareLattice, MultilayerLattice, GeneralLattice]

__all__ = ["HubbardModel", "hs_coupling"]


def hs_coupling(u: float, dtau: float) -> float:
    """Discrete HS coupling ``nu = arccosh(exp(U*dtau/2))``.

    Defined for repulsive U >= 0 (the paper's regime). ``U = 0`` gives
    ``nu = 0`` — the field decouples and DQMC reduces to free fermions,
    which tests exploit as an exact reference.
    """
    if u < 0:
        raise ValueError(
            "attractive U < 0 needs the charge-channel HS decoupling, "
            "which this package does not implement"
        )
    if dtau <= 0:
        raise ValueError("dtau must be positive")
    x = math.exp(u * dtau / 2.0)
    return math.acosh(x)


@dataclass(frozen=True)
class HubbardModel:
    """Physical + Trotter parameters of a DQMC run.

    Parameters
    ----------
    lattice:
        A :class:`SquareLattice` or :class:`MultilayerLattice`.
    u:
        On-site repulsion U >= 0 (in units of t).
    t:
        Nearest-neighbor hopping amplitude (sets the energy scale).
    t_perp:
        Inter-layer hopping; only meaningful for multilayer lattices.
    mu:
        Chemical potential; 0 is half filling (rho = 1).
    beta:
        Inverse temperature. Exactly one of (``beta``, ``dtau``) pins the
        Trotter grid given ``n_slices``.
    n_slices:
        Number L of imaginary-time slices.
    """

    lattice: Lattice
    u: float
    t: float = 1.0
    t_perp: float = 1.0
    mu: float = 0.0
    beta: float = 4.0
    n_slices: int = 40

    def __post_init__(self) -> None:
        if self.u < 0:
            raise ValueError("repulsive-U package: require U >= 0")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.n_slices < 1:
            raise ValueError("need at least one time slice")

    @property
    def n_sites(self) -> int:
        return self.lattice.n_sites

    @property
    def dtau(self) -> float:
        """Trotter step ``beta / L``; O(dtau^2) systematic error."""
        return self.beta / self.n_slices

    @property
    def nu(self) -> float:
        """HS coupling for this U and dtau."""
        return hs_coupling(self.u, self.dtau)

    def kinetic_matrix(self) -> np.ndarray:
        """The single-particle matrix K with hoppings and mu on the diagonal.

        ``K[i, j] = -t * (number of bonds i-j)`` and ``K[i, i] = -mu``;
        for multilayers the vertical bonds carry ``-t_perp``. The
        propagator slice is ``exp(-dtau * K)`` (see
        :mod:`repro.hamiltonian.kinetic`).
        """
        lat = self.lattice
        if isinstance(lat, MultilayerLattice):
            k = -self.t * lat.intra_layer_adjacency
            k += -self.t_perp * lat.inter_layer_adjacency
        else:
            k = -self.t * lat.adjacency
        k = k.copy()
        np.fill_diagonal(k, np.diag(k) - self.mu)
        return k

    def with_(self, **changes) -> "HubbardModel":
        """A copy with some fields replaced (dataclasses.replace wrapper)."""
        import dataclasses

        return dataclasses.replace(self, **changes)
