"""Checkerboard (split-bond) approximation of the kinetic propagator.

QUEST supports two kinetic propagators: the exact dense ``exp(-dtau K)``
(this package's default, :mod:`repro.hamiltonian.kinetic`) and the
*checkerboard* method, which partitions the bonds into groups of
non-overlapping pairs and writes

.. math::

    e^{-\\Delta\\tau K} \\approx \\prod_g e^{-\\Delta\\tau K_g}

where each group exponential is *exact and cheap*: a K made of disjoint
2x2 bond blocks exponentiates to independent 2x2 rotations
(``cosh``/``sinh`` pairs), applied in O(N) per group instead of a dense
O(N^2) GEMM. The splitting adds another O(dtau^2) Trotter error of the
same order as the one already accepted in the time discretization.

On a periodic rectangular lattice four groups suffice: even/odd bonds in
x, even/odd bonds in y (for odd extents a fifth wrap group appears).
This module builds the groups, applies the checkerboard propagator, and
quantifies the splitting error against the exact exponential.

Fast application
----------------
The group product factors by direction: all x-groups act within one
lattice row, so their ordered product is block-diagonal with identical
``lx x lx`` blocks, and likewise the y-groups with ``ly x ly`` blocks.
:meth:`CheckerboardPropagator.apply_expk_left` exploits this — the whole
checkerboard product ``B_cb = B_y B_x`` is applied as two *tiny* batched
GEMMs (``2 N (lx + ly)`` flops per column versus ``2 N^2`` for the dense
exponential), which is what makes the structured backend path beat the
dense GEMM pipeline. The blocked form is an exact regrouping of the
bond-group rotations, not an extra approximation: tests assert it equals
the pass-by-pass reference to rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Tuple

import numpy as np

from ..lattice import SquareLattice

__all__ = ["CheckerboardError", "bond_groups", "CheckerboardPropagator"]


class CheckerboardError(ValueError):
    """The lattice cannot be partitioned into disjoint bond groups.

    Raised loudly instead of silently producing overlapping groups (which
    would make the "group exponential is exact" property false and the
    propagator subtly wrong). Multilayer stacks and general bond-list
    lattices need a graph-coloring pass this module does not implement.
    """


def _direction_protos(extent: int) -> List[List[Tuple[int, int]]]:
    """Bond groups along one periodic direction of ``extent`` sites.

    Returns groups of (k, k+1 mod extent) index pairs such that within a
    group no index repeats. Order is even, odd (absorbing the wrap bond
    for even extents), then a standalone wrap group for odd extents; an
    extent-2 direction is the single doubled bond.
    """
    out: List[List[Tuple[int, int]]] = []
    if extent < 2:
        return out
    if extent == 2:
        out.append([(0, 1)])
        return out
    even = [(x, x + 1) for x in range(0, extent - 1, 2)]
    odd = [(x, x + 1) for x in range(1, extent - 1, 2)]
    wrap = (extent - 1, 0)
    if extent % 2 == 0:
        odd.append(wrap)
        out.extend([even, odd])
    else:
        out.extend([even, odd, [wrap]])
    return out


def bond_groups(lattice: SquareLattice) -> List[List[Tuple[int, int]]]:
    """Partition nearest-neighbor bonds into non-overlapping groups.

    Returns groups of (i, j) site pairs such that within a group no site
    appears twice — the property that makes the group exponential exact.
    Groups are even-x, odd-x, even-y, odd-y; odd extents place their
    periodic wrap bond in an extra group per direction. Extent-2
    directions contribute their doubled bond once with doubled weight at
    application time (handled by the caller via the adjacency count).

    Raises
    ------
    CheckerboardError
        If ``lattice`` is not a plain periodic rectangle (multilayer
        stacks and :class:`~repro.lattice.GeneralLattice` bond lists are
        rejected — their bonds need a general graph coloring, and
        pretending otherwise would produce overlapping groups), or if an
        internal group ever fails the disjointness invariant.
    """
    if type(lattice) is not SquareLattice:
        raise CheckerboardError(
            "checkerboard bond partitioning needs a plain periodic "
            f"SquareLattice; got {type(lattice).__name__} — multilayer "
            "stacks and general bond-list lattices are not partitionable "
            "by the even/odd x/y scheme (use kinetic='exact' for these)"
        )
    groups: List[List[Tuple[int, int]]] = []
    lx, ly = lattice.lx, lattice.ly

    # x-direction bonds, replicated down each row
    for proto in _direction_protos(lx):
        group = [
            (lattice.index(x0, y), lattice.index(x1, y))
            for (x0, x1) in proto
            for y in range(ly)
        ]
        groups.append(group)
    # y-direction bonds, replicated across each column
    for proto in _direction_protos(ly):
        group = [
            (lattice.index(x, y0), lattice.index(x, y1))
            for (y0, y1) in proto
            for x in range(lx)
        ]
        groups.append(group)

    for group in groups:
        seen = [i for bond in group for i in bond]
        if len(seen) != len(set(seen)):
            raise CheckerboardError(
                "internal error: a checkerboard bond group touches a site "
                "twice — the group exponential would not be exact"
            )
    return groups


def _chain_block(extent: int, args: Dict[Tuple[int, int], float]) -> np.ndarray:
    """Ordered product of the one-direction group rotations.

    ``args`` maps each proto bond to its rotation argument
    ``dtau * weight``. The returned ``extent x extent`` block, replicated
    along the other direction, is exactly that direction's slice of the
    checkerboard product.
    """
    block = np.eye(max(extent, 1))
    for proto in _direction_protos(extent):
        rot = np.eye(extent)
        for (i, j) in proto:
            arg = args[(i, j)]
            c, s = np.cosh(arg), np.sinh(arg)
            rot[i, i] = c
            rot[j, j] = c
            rot[i, j] = s
            rot[j, i] = s
        block = rot @ block
    return block


@dataclass(frozen=True)
class CheckerboardPropagator:
    """Applies ``prod_g exp(-dtau K_g)`` in O(N) per bond group.

    Parameters
    ----------
    lattice:
        Geometry; bond weights come from its adjacency (so extent-2
        doubled bonds are honoured).
    t:
        Hopping amplitude.
    dtau:
        Trotter step.
    mu:
        Chemical potential — applied as one exact diagonal factor
        ``exp(dtau * mu)`` (it commutes with everything).
    """

    lattice: SquareLattice
    t: float
    dtau: float
    mu: float = 0.0

    @cached_property
    def groups(self) -> List[List[Tuple[int, int]]]:
        return bond_groups(self.lattice)

    @cached_property
    def _group_arrays(self) -> List[Tuple[np.ndarray, np.ndarray, float, float]]:
        """Per group: (i-indices, j-indices, cosh, sinh) of the 2x2 blocks."""
        adj = self.lattice.adjacency
        out = []
        for group in self.groups:
            ii = np.array([b[0] for b in group], dtype=np.int64)
            jj = np.array([b[1] for b in group], dtype=np.int64)
            # all bonds in a group share a weight on these lattices
            w = float(adj[ii[0], jj[0]]) * self.t
            arg = self.dtau * w
            out.append((ii, jj, float(np.cosh(arg)), float(np.sinh(arg))))
        return out

    # -- blocked (separable) representation ---------------------------------

    @cached_property
    def _blocks64(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Float64 masters ``(bx, by, bx_inv, by_inv)`` of the direction blocks.

        ``B_cb = By_big @ Bx_big`` where the big matrices are the blocks
        replicated over the other direction; inverses negate the rotation
        angles and reverse the group order, which is exactly the matrix
        inverse, so ``np.linalg.inv`` never enters.
        """
        lattice = self.lattice
        self.groups  # force the lattice-type / disjointness validation
        adj = self.lattice.adjacency
        lx, ly = lattice.lx, lattice.ly

        def args_along(extent: int, site_of) -> Dict[Tuple[int, int], float]:
            out: Dict[Tuple[int, int], float] = {}
            for proto in _direction_protos(extent):
                for (a, b) in proto:
                    w = float(adj[site_of(a), site_of(b)]) * self.t
                    out[(a, b)] = self.dtau * w
            return out

        x_args = args_along(lx, lambda x: lattice.index(x, 0))
        y_args = args_along(ly, lambda y: lattice.index(0, y))
        bx = _chain_block(lx, x_args)
        by = _chain_block(ly, y_args)
        bx_inv = self._inverse_chain(lx, x_args)
        by_inv = self._inverse_chain(ly, y_args)
        return bx, by, bx_inv, by_inv

    @staticmethod
    def _inverse_chain(extent: int, args: Dict[Tuple[int, int], float]) -> np.ndarray:
        """Reversed product of the negated-angle group rotations."""
        block = np.eye(max(extent, 1))
        for proto in reversed(_direction_protos(extent)):
            rot = np.eye(extent)
            for (i, j) in proto:
                arg = -args[(i, j)]
                c, s = np.cosh(arg), np.sinh(arg)
                rot[i, i] = c
                rot[j, j] = c
                rot[i, j] = s
                rot[j, i] = s
            block = rot @ block
        return block

    @cached_property
    def _dtype_cache(self) -> Dict:
        """dtype -> realized (bx, by, bx_inv, by_inv, matrix, inv_matrix)."""
        return {}

    def blocks(self, dtype=None) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Direction blocks realized in ``dtype`` (float64 masters cached)."""
        if dtype is None:
            return self._blocks64
        dt = np.dtype(dtype)
        if dt == np.dtype(np.float64):
            return self._blocks64
        key = ("blocks", dt)
        cached = self._dtype_cache.get(key)
        if cached is None:
            cached = tuple(np.asarray(b, dtype=dt) for b in self._blocks64)
            self._dtype_cache[key] = cached
        return cached

    @property
    def n_sites(self) -> int:
        return self.lattice.n_sites

    def apply_flops(self, ncols: int) -> int:
        """Flop count of one blocked application to an ``(n, ncols)`` operand."""
        lx, ly = self.lattice.lx, self.lattice.ly
        n = self.n_sites
        count = 2 * n * ncols * (lx + ly)
        if self.mu != 0.0:
            count += n * ncols
        return count

    # -- blocked application (the structured fast path) ----------------------

    def apply_expk_left(self, a: np.ndarray, inverse: bool = False) -> np.ndarray:
        """``B_cb @ a`` (or ``B_cb^{-1} @ a``) via the direction blocks.

        Two small batched GEMMs instead of one dense N x N GEMM; the
        operand's dtype is preserved (blocks realized per dtype, like the
        dense exponentials). Accepts an ``(n,)`` vector, an ``(n, c)``
        matrix, or any stack ``(..., n, c)`` — leading axes broadcast
        through the batched GEMMs, so both spin sectors go through one
        pair of library calls. Always returns a fresh array.
        """
        a = np.ascontiguousarray(a)
        squeeze = a.ndim == 1
        if squeeze:
            a = a[:, None]
        bx, by, bx_inv, by_inv = self.blocks(a.dtype)
        lx, ly = self.lattice.lx, self.lattice.ly
        lead = a.shape[:-2]
        ncols = a.shape[-1]
        if not inverse:
            t = np.matmul(bx, a.reshape(lead + (ly, lx, ncols)))
            t = np.matmul(by, t.reshape(lead + (ly, lx * ncols)))
        else:
            t = np.matmul(by_inv, a.reshape(lead + (ly, lx * ncols)))
            t = np.matmul(bx_inv, t.reshape(lead + (ly, lx, ncols)))
        out = t.reshape(lead + (self.n_sites, ncols))
        if self.mu != 0.0:
            factor = np.exp((-self.dtau if inverse else self.dtau) * self.mu)
            out *= np.asarray(factor, dtype=out.dtype)
        return out[..., 0] if squeeze else out

    def apply_expk_right(self, a: np.ndarray, inverse: bool = False) -> np.ndarray:
        """``a @ B_cb`` (or ``a @ B_cb^{-1}``) via the direction blocks.

        Same stacking contract as :meth:`apply_expk_left`, with the site
        axis last: accepts ``(n,)``, ``(r, n)``, or ``(..., r, n)``.
        """
        a = np.ascontiguousarray(a)
        squeeze = a.ndim == 1
        if squeeze:
            a = a[None, :]
        bx, by, bx_inv, by_inv = self.blocks(a.dtype)
        lx, ly = self.lattice.lx, self.lattice.ly
        lead = a.shape[:-1]
        nrows = lead[-1]
        batch = lead[:-1]
        if not inverse:
            # a @ (By_big @ Bx_big) = (a @ By_big) @ Bx_big
            t = np.matmul(by.T, a.reshape(lead + (ly, lx)))
            t = np.matmul(t.reshape(batch + (nrows * ly, lx)), bx)
        else:
            # a @ (Bx_inv_big @ By_inv_big)
            t = np.matmul(a.reshape(batch + (nrows * ly, lx)), bx_inv)
            t = np.matmul(by_inv.T, t.reshape(lead + (ly, lx)))
        out = t.reshape(lead + (self.n_sites,))
        if self.mu != 0.0:
            factor = np.exp((-self.dtau if inverse else self.dtau) * self.mu)
            out *= np.asarray(factor, dtype=out.dtype)
        return out[0] if squeeze else out

    # -- reference (pass-by-pass) application --------------------------------

    def apply_left(self, a: np.ndarray) -> np.ndarray:
        """``B_cb @ a`` where ``B_cb ~ exp(-dtau K)`` (checkerboard order).

        Pass-by-pass reference: each group applies independent 2x2
        rotations ``[[c, s], [s, c]]`` to the (i, j) row pairs — pure
        gather / fused-multiply work, no GEMM. The blocked fast path
        (:meth:`apply_expk_left`) must agree with this to rounding.
        """
        a = np.array(a, dtype=np.float64, copy=True)  # qmclint: disable=QL008 -- checkerboard reference path applies the float64 master rotations
        for ii, jj, c, s in self._group_arrays:
            rows_i = a[ii]
            rows_j = a[jj]
            a[ii] = c * rows_i + s * rows_j
            a[jj] = s * rows_i + c * rows_j
        if self.mu != 0.0:
            a *= np.exp(self.dtau * self.mu)
        return a

    # -- materialization ------------------------------------------------------

    def as_matrix(self, dtype=None) -> np.ndarray:
        """The checkerboard propagator as a dense matrix, in ``dtype``.

        The float64 master is built once from the blocked application to
        the identity; narrower widths are cast once and cached — the same
        realize-per-dtype discipline as the dense exponentials, so the
        precision policy governs this path too instead of always paying
        (and leaking) float64.
        """
        key = ("matrix", False)
        master = self._dtype_cache.get(key)
        if master is None:
            master = self.apply_expk_left(np.eye(self.n_sites))
            self._dtype_cache[key] = master
        if dtype is None or np.dtype(dtype) == master.dtype:
            return master
        dt = np.dtype(dtype)
        cast_key = ("matrix", False, dt)
        cached = self._dtype_cache.get(cast_key)
        if cached is None:
            cached = np.asarray(master, dtype=dt)
            self._dtype_cache[cast_key] = cached
        return cached

    def inverse_matrix(self, dtype=None) -> np.ndarray:
        """Dense ``B_cb^{-1}`` in ``dtype`` (exact reversed-rotation product)."""
        key = ("matrix", True)
        master = self._dtype_cache.get(key)
        if master is None:
            master = self.apply_expk_left(np.eye(self.n_sites), inverse=True)
            self._dtype_cache[key] = master
        if dtype is None or np.dtype(dtype) == master.dtype:
            return master
        dt = np.dtype(dtype)
        cast_key = ("matrix", True, dt)
        cached = self._dtype_cache.get(cast_key)
        if cached is None:
            cached = np.asarray(master, dtype=dt)
            self._dtype_cache[cast_key] = cached
        return cached

    def dense(self) -> np.ndarray:
        """Materialize the checkerboard propagator as a dense matrix."""
        return self.as_matrix()

    def splitting_error(self) -> float:
        """``||B_cb - exp(-dtau K)|| / ||exp(-dtau K)||`` — the O(dtau^2)
        Trotter cost of the split, measurable and testable."""
        from .kinetic import KineticPropagator

        k = -self.t * self.lattice.adjacency
        np.fill_diagonal(k, -self.mu)
        exact = KineticPropagator(k, self.dtau).expk
        approx = self.as_matrix()
        return float(np.linalg.norm(approx - exact) / np.linalg.norm(exact))
