"""Checkerboard (split-bond) approximation of the kinetic propagator.

QUEST supports two kinetic propagators: the exact dense ``exp(-dtau K)``
(this package's default, :mod:`repro.hamiltonian.kinetic`) and the
*checkerboard* method, which partitions the bonds into groups of
non-overlapping pairs and writes

.. math::

    e^{-\\Delta\\tau K} \\approx \\prod_g e^{-\\Delta\\tau K_g}

where each group exponential is *exact and cheap*: a K made of disjoint
2x2 bond blocks exponentiates to independent 2x2 rotations
(``cosh``/``sinh`` pairs), applied in O(N) per group instead of a dense
O(N^2) GEMM. The splitting adds another O(dtau^2) Trotter error of the
same order as the one already accepted in the time discretization.

On a periodic rectangular lattice four groups suffice: even/odd bonds in
x, even/odd bonds in y (for odd extents a fifth wrap group appears).
This module builds the groups, applies the checkerboard propagator, and
quantifies the splitting error against the exact exponential.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Tuple

import numpy as np

from ..lattice import SquareLattice

__all__ = ["bond_groups", "CheckerboardPropagator"]


def bond_groups(lattice: SquareLattice) -> List[List[Tuple[int, int]]]:
    """Partition nearest-neighbor bonds into non-overlapping groups.

    Returns groups of (i, j) site pairs such that within a group no site
    appears twice — the property that makes the group exponential exact.
    Groups are even-x, odd-x, even-y, odd-y; odd extents place their
    periodic wrap bond in an extra group per direction. Extent-2
    directions contribute their doubled bond once with doubled weight at
    application time (handled by the caller via the adjacency count).
    """
    groups: List[List[Tuple[int, int]]] = []
    lx, ly = lattice.lx, lattice.ly

    def direction_groups(extent: int, make_bond) -> List[List[Tuple[int, int]]]:
        out: List[List[Tuple[int, int]]] = []
        if extent < 2:
            return out
        if extent == 2:
            # single doubled bond per row/column: one group
            out.append([make_bond(0)])
            return out
        even = [make_bond(x) for x in range(0, extent - 1, 2)]
        odd = [make_bond(x) for x in range(1, extent - 1, 2)]
        wrap = make_bond(extent - 1)  # (extent-1) -> 0
        if extent % 2 == 0:
            odd.append(wrap)
            out.extend([even, odd])
        else:
            out.extend([even, odd, [wrap]])
        return out

    # x-direction bonds, replicated down each row
    for proto in direction_groups(
        lx, lambda x: (x, (x + 1) % lx)
    ):
        group = [
            (lattice.index(x0, y), lattice.index(x1, y))
            for (x0, x1) in proto
            for y in range(ly)
        ]
        groups.append(group)
    # y-direction bonds, replicated across each column
    for proto in direction_groups(
        ly, lambda y: (y, (y + 1) % ly)
    ):
        group = [
            (lattice.index(x, y0), lattice.index(x, y1))
            for (y0, y1) in proto
            for x in range(lx)
        ]
        groups.append(group)
    return groups


@dataclass(frozen=True)
class CheckerboardPropagator:
    """Applies ``prod_g exp(-dtau K_g)`` in O(N) per bond group.

    Parameters
    ----------
    lattice:
        Geometry; bond weights come from its adjacency (so extent-2
        doubled bonds are honoured).
    t:
        Hopping amplitude.
    dtau:
        Trotter step.
    mu:
        Chemical potential — applied as one exact diagonal factor
        ``exp(dtau * mu)`` (it commutes with everything).
    """

    lattice: SquareLattice
    t: float
    dtau: float
    mu: float = 0.0

    @cached_property
    def groups(self) -> List[List[Tuple[int, int]]]:
        return bond_groups(self.lattice)

    @cached_property
    def _group_arrays(self) -> List[Tuple[np.ndarray, np.ndarray, float, float]]:
        """Per group: (i-indices, j-indices, cosh, sinh) of the 2x2 blocks."""
        adj = self.lattice.adjacency
        out = []
        for group in self.groups:
            ii = np.array([b[0] for b in group], dtype=np.int64)
            jj = np.array([b[1] for b in group], dtype=np.int64)
            # all bonds in a group share a weight on these lattices
            w = float(adj[ii[0], jj[0]]) * self.t
            arg = self.dtau * w
            out.append((ii, jj, float(np.cosh(arg)), float(np.sinh(arg))))
        return out

    def apply_left(self, a: np.ndarray) -> np.ndarray:
        """``B_cb @ a`` where ``B_cb ~ exp(-dtau K)`` (checkerboard order).

        Each group applies independent 2x2 rotations
        ``[[c, s], [s, c]]`` to the (i, j) row pairs — pure gather /
        fused-multiply work, no GEMM.
        """
        a = np.array(a, dtype=np.float64, copy=True)  # qmclint: disable=QL008 -- checkerboard reference path applies the float64 master rotations
        for ii, jj, c, s in self._group_arrays:
            rows_i = a[ii]
            rows_j = a[jj]
            a[ii] = c * rows_i + s * rows_j
            a[jj] = s * rows_i + c * rows_j
        if self.mu != 0.0:
            a *= np.exp(self.dtau * self.mu)
        return a

    def dense(self) -> np.ndarray:
        """Materialize the checkerboard propagator as a dense matrix."""
        return self.apply_left(np.eye(self.lattice.n_sites))

    def splitting_error(self) -> float:
        """``||B_cb - exp(-dtau K)|| / ||exp(-dtau K)||`` — the O(dtau^2)
        Trotter cost of the split, measurable and testable."""
        from .kinetic import KineticPropagator

        k = -self.t * self.lattice.adjacency
        np.fill_diagonal(k, -self.mu)
        exact = KineticPropagator(k, self.dtau).expk
        approx = self.dense()
        return float(np.linalg.norm(approx - exact) / np.linalg.norm(exact))
