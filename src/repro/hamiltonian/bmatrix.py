"""B-matrix construction: ``B_{l,sigma} = V_{l,sigma} * exp(-dtau K)``.

The single-particle propagator of one Trotter slice (paper Eq. 2).
``V_{l,sigma}`` is diagonal, so forming B is a *row scaling* of the fixed
kinetic exponential — exactly the fine-grain operation the paper's
Algorithm 5 turns into a fused GPU kernel and QUEST OpenMP-parallelizes.
Everything here is expressed as scalings and GEMMs on the cached
``exp(+-dtau K)`` so no matrix exponential is ever recomputed during
sampling.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..linalg import flops
from .checkerboard import CheckerboardPropagator
from .hs_field import HSField
from .hubbard import HubbardModel
from .kinetic import KineticPropagator

__all__ = ["KINETIC_MODES", "resolve_kinetic", "BMatrixFactory"]

#: the two kinetic propagators QUEST supports (paper Sec. II).
KINETIC_MODES = ("exact", "checkerboard")


def resolve_kinetic(name: Optional[str] = None) -> str:
    """Resolve a kinetic-propagator mode name.

    ``None`` falls back to ``$REPRO_KINETIC`` and then to ``"exact"`` —
    the bit-identical default. Unknown names are rejected loudly.
    """
    if name is None:
        name = os.environ.get("REPRO_KINETIC") or "exact"
    name = str(name).lower()
    if name not in KINETIC_MODES:
        raise ValueError(
            f"unknown kinetic mode {name!r}: expected one of {KINETIC_MODES}"
        )
    return name


class BMatrixFactory:
    """Builds and applies slice propagators for a fixed model.

    Parameters
    ----------
    model:
        The Hubbard model; fixes K, dtau and nu.

    Notes
    -----
    All methods take the HS field explicitly so one factory serves the
    whole simulation while the field evolves.
    """

    def __init__(self, model: HubbardModel, kinetic: Optional[str] = None):
        self.model = model
        self.kinetic_mode = resolve_kinetic(kinetic)
        self.kinetic = KineticPropagator(model.kinetic_matrix(), model.dtau)
        self.nu = model.nu
        #: the structured checkerboard operator, or ``None`` under the
        #: exact mode — backends pick this up at bind() time to decide
        #: whether the structured fast path exists.
        self.structured: Optional[CheckerboardPropagator] = None
        if self.kinetic_mode == "checkerboard":
            self.structured = CheckerboardPropagator(
                model.lattice, t=model.t, dtau=model.dtau, mu=model.mu
            )
            # Force the lattice-type / disjointness validation now, so a
            # non-partitionable geometry fails at construction (a typed
            # ValueError the autotuner treats as "candidate inapplicable")
            # rather than mid-sweep.
            self.structured.groups
        # dtype -> (expk, inv_expk) realized for that width; float64
        # masters are shared, narrower widths are cast once and reused
        # across rebinds (and across promotions back down the ladder).
        self._exponentials: dict = {}

    @property
    def n(self) -> int:
        return self.model.n_sites

    @property
    def expk(self) -> np.ndarray:
        if self.structured is not None:
            return self.structured.as_matrix()
        return self.kinetic.expk

    @property
    def inv_expk(self) -> np.ndarray:
        if self.structured is not None:
            return self.structured.inverse_matrix()
        return self.kinetic.inv_expk

    def exponentials(self, dtype=None):
        """``(exp(-dtau K), exp(+dtau K))`` realized in ``dtype``.

        The precision-policy seam of the hamiltonian layer: backends
        bind their compute-dtype exponentials through this cache. The
        eigendecomposition behind the masters is never redone — only
        the final cast is, once per width. Under checkerboard mode the
        pair is the *checkerboard* product and its exact inverse (the
        propagator keeps its own per-dtype cache), so dense fallbacks
        stay consistent with the structured applications.
        """
        if self.structured is not None:
            return (
                self.structured.as_matrix(dtype),
                self.structured.inverse_matrix(dtype),
            )
        if dtype is None:
            return self.expk, self.inv_expk
        dt = np.dtype(dtype)
        if dt == self.expk.dtype:
            return self.expk, self.inv_expk
        cached = self._exponentials.get(dt)
        if cached is None:
            cached = (
                np.asarray(self.expk, dtype=dt),
                np.asarray(self.inv_expk, dtype=dt),
            )
            self._exponentials[dt] = cached
        return cached

    # -- kinetic-factor application (structured seam) ---------------------------

    def apply_expk_left(
        self, a: np.ndarray, inverse: bool = False, category: str = "kinetic"
    ) -> np.ndarray:
        """``exp(-dtau K) @ a`` (``exp(+dtau K) @ a`` when ``inverse``).

        Exact mode spells this as the dense GEMM it always was;
        checkerboard mode routes through the bond-group direction blocks
        in O(N (lx+ly)) flops per column instead of O(N^2).
        """
        ncols = a.shape[1] if a.ndim == 2 else 1
        if self.structured is not None:
            flops.record(category, self.structured.apply_flops(ncols))
            return self.structured.apply_expk_left(a, inverse=inverse)
        flops.record(category, flops.gemm_flops(self.n, ncols, self.n))
        return (self.inv_expk if inverse else self.expk) @ a

    def apply_expk_right(
        self, a: np.ndarray, inverse: bool = False, category: str = "kinetic"
    ) -> np.ndarray:
        """``a @ exp(-dtau K)`` (``a @ exp(+dtau K)`` when ``inverse``)."""
        nrows = a.shape[0] if a.ndim == 2 else 1
        if self.structured is not None:
            flops.record(category, self.structured.apply_flops(nrows))
            return self.structured.apply_expk_right(a, inverse=inverse)
        flops.record(category, flops.gemm_flops(nrows, self.n, self.n))
        return a @ (self.inv_expk if inverse else self.expk)

    # -- single-slice products -------------------------------------------------

    def b_matrix(self, field: HSField, l: int, sigma: int) -> np.ndarray:
        """Dense ``B_{l,sigma} = diag(v) @ exp(-dtau K)`` (row scaling)."""
        v = field.v_diagonal(l, sigma, self.nu)
        flops.record("bmatrix", flops.scale_flops(self.n, self.n))
        return v[:, None] * self.expk

    def b_inverse(self, field: HSField, l: int, sigma: int) -> np.ndarray:
        """Dense ``B^{-1} = exp(+dtau K) @ diag(1/v)`` (column scaling)."""
        v = field.v_diagonal(l, sigma, self.nu)
        flops.record("bmatrix", flops.scale_flops(self.n, self.n))
        return self.inv_expk / v[None, :]

    # -- apply without materializing B ------------------------------------------

    def apply_b_left(
        self, field: HSField, l: int, sigma: int, a: np.ndarray
    ) -> np.ndarray:
        """``B_{l,sigma} @ a`` as GEMM-then-row-scale.

        Matching the paper's Sec. III-A reading of step 3a: multiply by
        the well-behaved ``exp(-dtau K)`` first, then scale rows — the
        diagonal never mixes into the GEMM.
        """
        n = self.n
        flops.record("clustering", n * a.shape[1])
        v = field.v_diagonal(l, sigma, self.nu)
        out = self.apply_expk_left(a, category="clustering")
        out *= v[:, None]
        return out

    def apply_b_inv_right(
        self, field: HSField, l: int, sigma: int, a: np.ndarray
    ) -> np.ndarray:
        """``a @ B_{l,sigma}^{-1}`` as GEMM-then-column-scale.

        ``B^{-1} = exp(+dtau K) diag(1/v)``, so the diagonal acts on the
        *result's* columns: ``(a @ invexpK) / v``.
        """
        n = self.n
        flops.record("wrapping", a.shape[0] * n)
        v = field.v_diagonal(l, sigma, self.nu)
        out = self.apply_expk_right(a, inverse=True, category="wrapping")
        out /= v[None, :]
        return out

    # -- reference (unstabilized) product ---------------------------------------

    def full_product(
        self,
        field: HSField,
        sigma: int,
        slice_order: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Dense ``B_L ... B_1`` (or a custom slice order), for tests.

        ``slice_order`` lists slices from *rightmost* factor to leftmost;
        default is ``[0, 1, ..., L-1]`` giving ``B_{L-1} ... B_0`` in
        0-based indexing. This bypasses all stabilization — only use it
        where the product's condition number is known to be benign.
        """
        order = (
            np.arange(field.n_slices) if slice_order is None else np.asarray(slice_order)
        )
        out = np.eye(self.n)
        for l in order:
            out = self.apply_b_left(field, int(l), sigma, out)
        return out
