"""B-matrix construction: ``B_{l,sigma} = V_{l,sigma} * exp(-dtau K)``.

The single-particle propagator of one Trotter slice (paper Eq. 2).
``V_{l,sigma}`` is diagonal, so forming B is a *row scaling* of the fixed
kinetic exponential — exactly the fine-grain operation the paper's
Algorithm 5 turns into a fused GPU kernel and QUEST OpenMP-parallelizes.
Everything here is expressed as scalings and GEMMs on the cached
``exp(+-dtau K)`` so no matrix exponential is ever recomputed during
sampling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..linalg import flops
from .hs_field import HSField
from .hubbard import HubbardModel
from .kinetic import KineticPropagator

__all__ = ["BMatrixFactory"]


class BMatrixFactory:
    """Builds and applies slice propagators for a fixed model.

    Parameters
    ----------
    model:
        The Hubbard model; fixes K, dtau and nu.

    Notes
    -----
    All methods take the HS field explicitly so one factory serves the
    whole simulation while the field evolves.
    """

    def __init__(self, model: HubbardModel):
        self.model = model
        self.kinetic = KineticPropagator(model.kinetic_matrix(), model.dtau)
        self.nu = model.nu
        # dtype -> (expk, inv_expk) realized for that width; float64
        # masters are shared, narrower widths are cast once and reused
        # across rebinds (and across promotions back down the ladder).
        self._exponentials: dict = {}

    @property
    def n(self) -> int:
        return self.model.n_sites

    @property
    def expk(self) -> np.ndarray:
        return self.kinetic.expk

    @property
    def inv_expk(self) -> np.ndarray:
        return self.kinetic.inv_expk

    def exponentials(self, dtype=None):
        """``(exp(-dtau K), exp(+dtau K))`` realized in ``dtype``.

        The precision-policy seam of the hamiltonian layer: backends
        bind their compute-dtype exponentials through this cache. The
        eigendecomposition behind the masters is never redone — only
        the final cast is, once per width.
        """
        if dtype is None:
            return self.expk, self.inv_expk
        dt = np.dtype(dtype)
        if dt == self.expk.dtype:
            return self.expk, self.inv_expk
        cached = self._exponentials.get(dt)
        if cached is None:
            cached = (
                np.asarray(self.expk, dtype=dt),
                np.asarray(self.inv_expk, dtype=dt),
            )
            self._exponentials[dt] = cached
        return cached

    # -- single-slice products -------------------------------------------------

    def b_matrix(self, field: HSField, l: int, sigma: int) -> np.ndarray:
        """Dense ``B_{l,sigma} = diag(v) @ exp(-dtau K)`` (row scaling)."""
        v = field.v_diagonal(l, sigma, self.nu)
        flops.record("bmatrix", flops.scale_flops(self.n, self.n))
        return v[:, None] * self.expk

    def b_inverse(self, field: HSField, l: int, sigma: int) -> np.ndarray:
        """Dense ``B^{-1} = exp(+dtau K) @ diag(1/v)`` (column scaling)."""
        v = field.v_diagonal(l, sigma, self.nu)
        flops.record("bmatrix", flops.scale_flops(self.n, self.n))
        return self.inv_expk / v[None, :]

    # -- apply without materializing B ------------------------------------------

    def apply_b_left(
        self, field: HSField, l: int, sigma: int, a: np.ndarray
    ) -> np.ndarray:
        """``B_{l,sigma} @ a`` as GEMM-then-row-scale.

        Matching the paper's Sec. III-A reading of step 3a: multiply by
        the well-behaved ``exp(-dtau K)`` first, then scale rows — the
        diagonal never mixes into the GEMM.
        """
        n = self.n
        flops.record("clustering", flops.gemm_flops(n, a.shape[1], n) + n * a.shape[1])
        v = field.v_diagonal(l, sigma, self.nu)
        out = self.expk @ a
        out *= v[:, None]
        return out

    def apply_b_inv_right(
        self, field: HSField, l: int, sigma: int, a: np.ndarray
    ) -> np.ndarray:
        """``a @ B_{l,sigma}^{-1}`` as GEMM-then-column-scale.

        ``B^{-1} = exp(+dtau K) diag(1/v)``, so the diagonal acts on the
        *result's* columns: ``(a @ invexpK) / v``.
        """
        n = self.n
        flops.record("wrapping", flops.gemm_flops(a.shape[0], n, n) + a.shape[0] * n)
        v = field.v_diagonal(l, sigma, self.nu)
        out = a @ self.inv_expk
        out /= v[None, :]
        return out

    # -- reference (unstabilized) product ---------------------------------------

    def full_product(
        self,
        field: HSField,
        sigma: int,
        slice_order: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Dense ``B_L ... B_1`` (or a custom slice order), for tests.

        ``slice_order`` lists slices from *rightmost* factor to leftmost;
        default is ``[0, 1, ..., L-1]`` giving ``B_{L-1} ... B_0`` in
        0-based indexing. This bypasses all stabilization — only use it
        where the product's condition number is known to be benign.
        """
        order = (
            np.arange(field.n_slices) if slice_order is None else np.asarray(slice_order)
        )
        out = np.eye(self.n)
        for l in order:
            out = self.apply_b_left(field, int(l), sigma, out)
        return out
