"""Matrix clustering: pre-multiplying k slice propagators per QR step.

Paper Sec. III-A2: instead of one (pivoted) QR per time slice, multiply
``k`` consecutive B matrices into one dense *cluster*

    Btilde_j = B_{jk} ... B_{(j-1)k+1}

and stratify the chain of ``L/k`` clusters. The QR count drops by k while
the GEMM count is unchanged — a direct trade of slow kernel for fast
kernel. k ~ 10 keeps the intra-cluster product well-conditioned enough
(each B has modest dynamic range at DQMC parameter values).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..hamiltonian import BMatrixFactory, HSField

__all__ = ["cluster_slices", "cluster_product", "build_clusters"]


def cluster_slices(n_slices: int, cluster_size: int) -> List[range]:
    """Slice index ranges of each cluster.

    Requires ``cluster_size`` to divide ``n_slices`` so wrapping re-
    stratification always lands on a cluster boundary (the paper runs
    k = l = 10 with L = 160).
    """
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    if n_slices % cluster_size != 0:
        raise ValueError(
            f"cluster_size={cluster_size} must divide n_slices={n_slices}"
        )
    return [
        range(j * cluster_size, (j + 1) * cluster_size)
        for j in range(n_slices // cluster_size)
    ]


def cluster_product(
    factory: BMatrixFactory, field: HSField, sigma: int, slices: range
) -> np.ndarray:
    """Dense ``B_{last} ... B_{first}`` over the given slice range.

    Built by repeated ``apply_b_left`` so each step is one GEMM against
    the fixed kinetic exponential plus a row scaling (this is the CPU
    analogue of the paper's GPU Algorithm 4).
    """
    out = factory.b_matrix(field, slices[0], sigma)
    for l in slices[1:]:
        out = factory.apply_b_left(field, l, sigma, out)
    return out


def build_clusters(
    factory: BMatrixFactory,
    field: HSField,
    sigma: int,
    cluster_size: int,
) -> List[np.ndarray]:
    """All cluster matrices for one spin species, in cluster order."""
    return [
        cluster_product(factory, field, sigma, r)
        for r in cluster_slices(field.n_slices, cluster_size)
    ]
