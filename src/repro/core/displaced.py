"""Time-displaced Green's functions ``G(tau, 0) = <c(tau) c^dag(0)>``.

QUEST measures "both static and dynamic" quantities (paper Sec. I); the
dynamic ones need the unequal-time Green's function

.. math::

    G(\\tau_l, 0) = B_l \\cdots B_1 (I + B_L \\cdots B_1)^{-1}
                  = (A_1^{-1} + A_2)^{-1}

with ``A_1 = B_l ... B_1`` (the 0..tau chain) and ``A_2 = B_L ...
B_{l+1}`` (the tau..beta chain). The naive right-hand side is hopeless at
large tau — ``A_1`` alone overflows — so this module implements the
stable sum-inverse of Bai, Lee, Li & Xu (the paper's reference [24]):
stratify both chains into graded forms ``A_i = U_i D_i T_i``, then

.. math::

    A_1^{-1} + A_2 = T_1^{-1} \\, \\bar D_{b}^{-1}
        \\underbrace{\\big[ \\bar D_s (U_1^T T_2^{-1}) D_{2b}
                     + \\bar D_b (T_1 U_2) D_{2s} \\big]}_{M}
        D_{2b}^{-1} \\, T_2

where ``D_1^{-1} = \\bar D_b^{-1} \\bar D_s`` and ``D_2 = D_{2b}^{-1}
D_{2s}`` are the usual big/small splittings: every matrix inside ``M`` is
O(1), so

.. math::

    G(\\tau, 0) = T_2^{-1} D_{2b} M^{-1} \\bar D_b T_1

is evaluated with two well-conditioned solves.
"""

from __future__ import annotations

# qmclint: disable-file=QL007 — the stable sum-inverse works on graded
# big/small splittings whose scalings and solves are pinned to this exact
# rounding-sensitive composition (Bai et al.); it is deliberately not a
# backend-dispatched propagator pipeline.

from typing import List, Optional

import numpy as np
import scipy.linalg as sla

from ..hamiltonian import BMatrixFactory, HSField
from ..linalg import SOLVE_KWARGS, GradedDecomposition, flops, split_scales
from .stratification import StratificationMethod, stratified_decomposition

__all__ = [
    "stable_sum_inverse",
    "displaced_greens",
    "displaced_greens_reverse",
    "displaced_greens_series",
    "displaced_series_fast",
]


def _identity_decomposition(n: int) -> GradedDecomposition:
    return GradedDecomposition(q=np.eye(n), d=np.ones(n), t=np.eye(n))


def stable_sum_inverse(
    a1: GradedDecomposition, a2: GradedDecomposition
) -> np.ndarray:
    """``(A_1^{-1} + A_2)^{-1}`` from two graded decompositions.

    Both inputs are ``U D T`` factorizations; neither product is ever
    formed. The special case ``A_1 = I`` reproduces the equal-time
    stable inverse (tested).
    """
    if a1.n != a2.n:
        raise ValueError("mismatched decomposition sizes")
    n = a1.n
    d1b_bar, d1s_bar = split_scales(1.0 / a1.d)  # splitting of D1^{-1}
    d2b, d2s = split_scales(a2.d)

    # All O(1) building blocks.
    u1t_t2inv = sla.solve(
        a2.t.T, a1.q, **SOLVE_KWARGS
    ).T  # U1^T T2^{-1} via T2^T X^T = U1
    t1_u2 = a1.t @ a2.q
    m = (
        d1s_bar[:, None] * u1t_t2inv * d2b[None, :]
        + d1b_bar[:, None] * t1_u2 * d2s[None, :]
    )

    # G = T2^{-1} D2b M^{-1} D1b_bar T1, evaluated as two solves.
    rhs = d1b_bar[:, None] * a1.t
    inner = sla.solve(m, rhs, **SOLVE_KWARGS)
    flops.record(
        "displaced_greens",
        2 * flops.lu_solve_flops(n, n) + flops.gemm_flops(n, n, n),
    )
    return sla.solve(a2.t, d2b[:, None] * inner, **SOLVE_KWARGS)


def displaced_greens(
    factory: BMatrixFactory,
    field: HSField,
    sigma: int,
    l: int,
    method: StratificationMethod = "prepivot",
) -> np.ndarray:
    """``G(tau_{l+1}, 0)``: the displaced function with ``l+1`` slices
    folded into the left chain (0-based ``l``; ``l = -1`` gives the
    equal-time ``G(0, 0)``).

    Both partial chains are stratified slice-by-slice under ``method``.
    """
    n_slices = field.n_slices
    if not -1 <= l < n_slices:
        raise IndexError(f"slice {l} out of range")
    n = factory.n
    if l >= 0:
        left = stratified_decomposition(
            (factory.b_matrix(field, ll, sigma) for ll in range(l + 1)),
            method=method,
        )
    else:
        left = _identity_decomposition(n)
    if l + 1 < n_slices:
        right = stratified_decomposition(
            (
                factory.b_matrix(field, ll, sigma)
                for ll in range(l + 1, n_slices)
            ),
            method=method,
        )
    else:
        right = _identity_decomposition(n)
    return stable_sum_inverse(left, right)


def displaced_greens_reverse(
    factory: BMatrixFactory,
    field: HSField,
    sigma: int,
    l: int,
    method: StratificationMethod = "prepivot",
) -> np.ndarray:
    """``G(0, tau_{l+1}) = -<c^dagger(tau) c(0)>`` (the reverse ordering).

    Algebra: ``G(0, tau) = -(I - G(0,0)) A_1^{-1} = -(A_2^{-1} + A_1)^{-1}``
    with the same two chains as :func:`displaced_greens` — evaluated by
    the identical stable sum-inverse with the chain roles swapped.
    Antiperiodicity check (tested): ``G(0, beta) = -G(0, 0)``.
    """
    n_slices = field.n_slices
    if not -1 <= l < n_slices:
        raise IndexError(f"slice {l} out of range")
    n = factory.n
    if l >= 0:
        left = stratified_decomposition(
            (factory.b_matrix(field, ll, sigma) for ll in range(l + 1)),
            method=method,
        )
    else:
        left = _identity_decomposition(n)
    if l + 1 < n_slices:
        right = stratified_decomposition(
            (
                factory.b_matrix(field, ll, sigma)
                for ll in range(l + 1, n_slices)
            ),
            method=method,
        )
    else:
        right = _identity_decomposition(n)
    return -stable_sum_inverse(right, left)


def displaced_series_fast(
    factory: BMatrixFactory,
    field: HSField,
    sigma: int,
    cluster_size: int,
    method: StratificationMethod = "prepivot",
) -> tuple:
    """``G(tau, 0)`` at every cluster boundary in O(L) QR steps total.

    The naive per-tau evaluation stratifies both chains from scratch —
    O(L^2 / k) QR steps for a full tau grid. This routine builds all
    *prefix* decompositions (``A_1`` chains, grown leftward) and all
    *suffix* decompositions (``A_2`` chains, grown via their transposes,
    since a suffix gains factors on the *right*) incrementally — O(L/k)
    QR steps each — then pairs them per boundary.

    The transpose trick: ``(B_q ... B_c)^T = B_c^T ... B_q^T`` grows
    leftward in c, so an :class:`IncrementalStratifier` over transposed
    clusters yields ``A_2^T = Q D T``; hence ``A_2 = T^T D Q^T``, a valid
    graded triple for :func:`stable_sum_inverse` (which needs bounded,
    well-conditioned outer factors — not orthogonality).

    Returns
    -------
    (taus, greens):
        ``taus[j] = (j + 1) * cluster_size * dtau`` and ``greens[j]`` the
        corresponding displaced function, for j = 0 .. L/k - 1.
    """
    from .clustering import cluster_product, cluster_slices
    from .stratification import IncrementalStratifier

    ranges = cluster_slices(field.n_slices, cluster_size)
    nc = len(ranges)
    n = factory.n
    clusters = [
        cluster_product(factory, field, sigma, r) for r in ranges
    ]

    # prefix[c] = decomposition of clusters c-1 ... 0 (A_1 at boundary c)
    prefix: List[GradedDecomposition] = []
    inc = IncrementalStratifier(method)
    for c in range(nc):
        inc.push(clusters[c])
        prefix.append(inc.decomposition())

    # suffix[c] = decomposition of clusters nc-1 ... c (A_2 at boundary c),
    # built from transposes so each step adds a leftmost factor
    suffix: List[Optional[GradedDecomposition]] = [None] * nc
    inc_t = IncrementalStratifier(method)
    for c in range(nc - 1, -1, -1):
        inc_t.push(clusters[c].T)
        dec_t = inc_t.decomposition()
        suffix[c] = GradedDecomposition(
            q=dec_t.t.T, d=dec_t.d, t=dec_t.q.T
        )

    dtau = factory.model.dtau
    taus = np.array([(c + 1) * cluster_size * dtau for c in range(nc)])
    greens = []
    for c in range(nc):
        a1 = prefix[c]
        a2 = (
            suffix[c + 1] if c + 1 < nc else _identity_decomposition(n)
        )
        greens.append(stable_sum_inverse(a1, a2))
    return taus, greens


def displaced_greens_series(
    factory: BMatrixFactory,
    field: HSField,
    sigma: int,
    slices: Optional[List[int]] = None,
    method: StratificationMethod = "prepivot",
) -> List[np.ndarray]:
    """``G(tau, 0)`` at a list of displacement slices (default: all).

    Returns one N x N matrix per requested slice index ``l`` (meaning
    ``tau = (l + 1) * dtau``). Each entry costs two stratified chains —
    O(L N^3) — so callers measuring every tau should subsample (the
    cluster boundaries are the natural grid).
    """
    if slices is None:
        slices = list(range(field.n_slices))
    return [
        displaced_greens(factory, field, sigma, l, method=method)
        for l in slices
    ]
