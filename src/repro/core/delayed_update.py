"""Delayed (block) rank-1 updates of the Green's function.

Paper Sec. II-B final remark: QUEST postpones accepted-flip updates so a
batch of rank-1 modifications is applied as one rank-m GEMM (Jarrell's
delayed-update trick). Between flushes the *effective* Green's function is

    G_eff = G + U @ W

with one column of U / row of W per accepted flip. Proposals only need
single rows/columns of G_eff, which cost O(n m) against the pending
buffers — far better cache behaviour than n^2 rank-1 touches per flip.

Update algebra (leftmost-B_l convention used throughout the package): an
accepted flip at site i with factor alpha and denominator
``d = 1 + alpha (1 - G_eff[i, i])`` transforms

    G  <-  G_eff - (alpha / d) * G_eff[:, i] (e_i - G_eff[i, :])^T
"""

from __future__ import annotations

import numpy as np

from ..linalg import flops

__all__ = ["DelayedUpdater", "delay_ladder"]


def delay_ladder(n_sites: int, rungs=(8, 16, 32, 64)) -> list:
    """Candidate delayed-update block sizes for an N-site system.

    The natural block sizes are powers of two up the GEMM-efficiency
    curve, capped at N: a block wider than the matrix flushes at rank N
    anyway, so larger values only waste buffer memory. This is the
    delay axis of the autotuner's candidate grid; the sweet spot the
    paper (and QUEST) quote sits in the 16-64 range, workload-dependent.
    """
    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    return sorted({min(int(r), n_sites) for r in rungs if r >= 1})


class DelayedUpdater:
    """Accumulates pending rank-1 Green's-function updates for one spin.

    Parameters
    ----------
    g:
        The dense Green's function, modified in place on :meth:`flush`.
    max_delay:
        Flush automatically once this many updates are pending. 1
        degenerates to plain rank-1 updates (the ablation baseline).
    backend:
        Optional :class:`~repro.backends.PropagatorBackend` executing the
        rank-m flush GEMM (and counting it in the dispatch telemetry);
        ``None`` keeps the plain in-process GEMM.
    """

    def __init__(self, g: np.ndarray, max_delay: int = 32, backend=None):
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        n = g.shape[0]
        if g.shape != (n, n):
            raise ValueError("G must be square")
        self.g = g
        self.n = n
        self.max_delay = max_delay
        self.backend = backend
        # Buffers follow G's dtype: under a narrowed precision policy
        # the rank-1 blocks accumulate in the compute dtype and the
        # rank-m flush GEMM runs at single-precision GEMM rates.
        self._u = np.empty((n, max_delay), dtype=g.dtype)
        self._w = np.empty((max_delay, n), dtype=g.dtype)
        # The effective diagonal is maintained incrementally (one
        # vectorized axpy per accepted flip) so each *proposal* — the
        # overwhelmingly common operation — reads it in O(1). This is the
        # same bookkeeping QUEST's delayed update keeps hot.
        self._diag = np.ascontiguousarray(np.diag(g))
        self.pending = 0
        self.flushes = 0
        self.updates = 0

    # -- reads against G_eff = G + U W --------------------------------------

    def diag_element(self, i: int) -> float:
        """``G_eff[i, i]`` — the only number a Metropolis proposal needs."""
        return float(self._diag[i])

    def column(self, i: int) -> np.ndarray:
        """``G_eff[:, i]`` (fresh array)."""
        col = self.g[:, i].copy()
        if self.pending:
            flops.record("delayed_update", 2.0 * self.n * self.pending)
            col += self._u[:, : self.pending] @ self._w[: self.pending, i]
        return col

    def row(self, i: int) -> np.ndarray:
        """``G_eff[i, :]`` (fresh array)."""
        row = self.g[i, :].copy()
        if self.pending:
            flops.record("delayed_update", 2.0 * self.n * self.pending)
            row += self._u[i, : self.pending] @ self._w[: self.pending, :]
        return row

    # -- writes ----------------------------------------------------------------

    def accept(self, i: int, alpha: float, d: float) -> None:
        """Record an accepted flip at site i.

        ``d`` must be the caller's Metropolis denominator
        ``1 + alpha * (1 - G_eff[i, i])`` — passed in rather than
        recomputed so the update uses exactly the accepted ratio.
        """
        if d == 0.0:
            raise ZeroDivisionError("singular Metropolis denominator")
        col = self.column(i)
        row = self.row(i)
        m = self.pending
        # column()/row() record their own G_eff reads; this covers the
        # scaled writes and the incremental-diagonal axpy.
        flops.record("delayed_update", 4.0 * self.n)
        self._u[:, m] = (-alpha / d) * col
        self._w[m, :] = -row
        self._w[m, i] += 1.0  # e_i - G_eff[i, :]
        self._diag += self._u[:, m] * self._w[m, :]
        self.pending = m + 1
        self.updates += 1
        if self.pending >= self.max_delay:
            self.flush()

    def flush(self) -> None:
        """Fold pending updates into G with one rank-m GEMM."""
        m = self.pending
        if m == 0:
            return
        if self.backend is not None:
            self.g += self.backend.gemm(
                self._u[:, :m], self._w[:m, :], category="delayed_update"
            )
        else:
            flops.record("delayed_update", flops.gemm_flops(self.n, self.n, m))
            self.g += self._u[:, :m] @ self._w[:m, :]
        # Re-anchor the incremental diagonal on the freshly updated G so
        # roundoff never accumulates across flushes.
        np.copyto(self._diag, np.diag(self.g))
        self.pending = 0
        self.flushes += 1

    def dense(self) -> np.ndarray:
        """``G_eff`` as a dense matrix (flushing first)."""
        self.flush()
        return self.g
