"""Wrapping: advancing the equal-time Green's function between slices.

Paper Sec. III-B1. With the slice-l Green's function

    G_l = (I + B_l B_{l-1} ... B_0 B_{L-1} ... B_{l+1})^{-1}

(leftmost factor B_l — the orientation the Metropolis ratio at slice l
needs), the next slice's function is the similarity transform

    G_{l+1} = B_{l+1} G_l B_{l+1}^{-1}.

Each wrap is four GEMM-sized operations (two dense products against the
fixed kinetic exponentials plus two diagonal scalings) and slowly loses
accuracy; after ``l_wrap`` wraps the engine re-stratifies from scratch.

Both transforms execute through a
:class:`~repro.backends.PropagatorBackend`, whose ``wrap``/``unwrap``
methods pin one canonical operation order (GEMMs on the well-scaled
matrix first, diagonal scalings after — the paper's GPU Algorithm 6/7
shape) so every backend produces bit-identical Green's functions.
"""

from __future__ import annotations

import numpy as np

from ..contracts import shape_contract
from ..hamiltonian import BMatrixFactory, HSField

__all__ = ["wrap_forward", "wrap_backward"]


def _bound_backend(factory: BMatrixFactory, backend):
    """The backend executing a wrap: the caller's, bound to ``factory``
    if not already, or a fresh serial backend when none is supplied (a
    fresh instance per call — no hidden module-level singleton that
    threaded ensembles would race on)."""
    if backend is None:
        from ..backends import NumpyBackend

        return NumpyBackend().bind(factory)
    # Identity is tracked on the *factory*, not the exponentials: under
    # a narrowed precision policy the bound expk is a realized copy, not
    # the factory's float64 master.
    if getattr(backend, "bound_factory", None) is not factory:
        backend.bind(factory)
    return backend


@shape_contract("(n,n)", dtype="compute", finite=True)
def wrap_forward(
    factory: BMatrixFactory,
    field: HSField,
    g: np.ndarray,
    l: int,
    sigma: int,
    backend=None,
) -> np.ndarray:
    """``B_l G B_l^{-1}`` — move the Green's function from slice l-1 to l.

    Expanded as ``V_l (expK @ G @ invexpK) V_l^{-1}`` so the two GEMMs act
    on well-scaled matrices and the diagonal factors are pure row/column
    scalings (the shape of the paper's GPU Algorithm 6/7).
    """
    v = field.v_diagonal(l, sigma, factory.nu)
    return _bound_backend(factory, backend).wrap(g, v)


@shape_contract("(n,n)", dtype="compute", finite=True)
def wrap_backward(
    factory: BMatrixFactory,
    field: HSField,
    g: np.ndarray,
    l: int,
    sigma: int,
    backend=None,
) -> np.ndarray:
    """``B_l^{-1} G B_l`` — the inverse transform (undo a wrap through l).

    Used by reverse-order sweeps and by tests (a forward wrap followed by
    a backward wrap must be the identity up to rounding). The backend's
    ``unwrap`` composes the exact inverse of ``wrap``: the two-sided
    scaling (rows by the host-formed ``1/v``, columns by the original
    ``v``) first, then the two GEMMs.
    """
    v = field.v_diagonal(l, sigma, factory.nu)
    return _bound_backend(factory, backend).unwrap(g, v)
