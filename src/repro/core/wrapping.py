"""Wrapping: advancing the equal-time Green's function between slices.

Paper Sec. III-B1. With the slice-l Green's function

    G_l = (I + B_l B_{l-1} ... B_0 B_{L-1} ... B_{l+1})^{-1}

(leftmost factor B_l — the orientation the Metropolis ratio at slice l
needs), the next slice's function is the similarity transform

    G_{l+1} = B_{l+1} G_l B_{l+1}^{-1}.

Each wrap is four GEMM-sized operations (two dense products against the
fixed kinetic exponentials plus two diagonal scalings) and slowly loses
accuracy; after ``l_wrap`` wraps the engine re-stratifies from scratch.
"""

from __future__ import annotations

import numpy as np

from ..contracts import shape_contract
from ..hamiltonian import BMatrixFactory, HSField

__all__ = ["wrap_forward", "wrap_backward"]


@shape_contract("(n,n)", dtype=np.float64, finite=True)
def wrap_forward(
    factory: BMatrixFactory,
    field: HSField,
    g: np.ndarray,
    l: int,
    sigma: int,
) -> np.ndarray:
    """``B_l G B_l^{-1}`` — move the Green's function from slice l-1 to l.

    Expanded as ``V_l (expK @ G @ invexpK) V_l^{-1}`` so the two GEMMs act
    on well-scaled matrices and the diagonal factors are pure row/column
    scalings (the shape of the paper's GPU Algorithm 6/7).
    """
    out = factory.apply_b_left(field, l, sigma, g)  # B_l @ G
    return factory.apply_b_inv_right(field, l, sigma, out)  # ... @ B_l^{-1}


@shape_contract("(n,n)", dtype=np.float64, finite=True)
def wrap_backward(
    factory: BMatrixFactory,
    field: HSField,
    g: np.ndarray,
    l: int,
    sigma: int,
) -> np.ndarray:
    """``B_l^{-1} G B_l`` — the inverse transform (undo a wrap through l).

    Used by reverse-order sweeps and by tests (a forward wrap followed by
    a backward wrap must be the identity up to rounding).
    """
    v = field.v_diagonal(l, sigma, factory.nu)
    n = factory.n
    # B^{-1} @ G = invexpK @ (V^{-1} G): row scaling then GEMM.
    out = factory.inv_expk @ (g / v[:, None])
    # ... @ B = (out @ V... careful: G @ B = (G V) expK — column scale then GEMM.
    out = (out * v[None, :]) @ factory.expk
    from ..linalg import flops

    flops.record("wrapping", 2 * flops.gemm_flops(n, n, n) + 2 * n * n)
    return out
