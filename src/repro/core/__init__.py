"""The paper's core contribution: stable, fast Green's function evaluation.

* :mod:`repro.core.stratification` — Algorithms 2 (QRP) and 3
  (pre-pivoted QR, the paper's kernel), plus a no-pivot ablation.
* :mod:`repro.core.clustering` / :mod:`repro.core.recycling` — k-slice
  matrix clustering and the cross-sweep cluster cache.
* :mod:`repro.core.wrapping` — slice-to-slice similarity transforms.
* :mod:`repro.core.delayed_update` — block rank-1 Metropolis updates.
* :mod:`repro.core.greens` — the engine tying all of the above together.
"""

from .clustering import build_clusters, cluster_product, cluster_slices
from .delayed_update import DelayedUpdater, delay_ladder
from .displaced import (
    displaced_greens,
    displaced_greens_reverse,
    displaced_greens_series,
    displaced_series_fast,
    stable_sum_inverse,
)
from .greens import GreensFunctionEngine
from .recycling import ClusterCache
from .stratification import (
    METHODS,
    IncrementalStratifier,
    StratificationMethod,
    StratificationStats,
    stratified_decomposition,
    stratified_inverse,
)
from .wrapping import wrap_backward, wrap_forward

__all__ = [
    "METHODS",
    "ClusterCache",
    "IncrementalStratifier",
    "DelayedUpdater",
    "GreensFunctionEngine",
    "StratificationMethod",
    "StratificationStats",
    "build_clusters",
    "cluster_product",
    "cluster_slices",
    "delay_ladder",
    "displaced_greens",
    "displaced_greens_reverse",
    "displaced_greens_series",
    "displaced_series_fast",
    "stable_sum_inverse",
    "stratified_decomposition",
    "stratified_inverse",
    "wrap_backward",
    "wrap_forward",
]
