"""Stratified evaluation of long B-matrix products (paper Algorithms 2 & 3).

Both algorithms turn a chain of slice propagators

    B_L * B_{L-1} * ... * B_1      (rightmost factor applied first)

into a graded decomposition ``Q diag(D) T`` step by step, keeping the
enormous dynamic range of the product inside the diagonal ``D`` at every
intermediate stage so nothing small is ever added to anything large.

Three pivoting policies are offered:

``"qrp"``
    Algorithm 2 (Loh et al.) — full column-pivoted QR at every step. The
    numerically canonical method, bottlenecked by DGEQP3's level-2 pivot
    updates.

``"prepivot"``
    Algorithm 3 — **the paper's contribution**. One column-norm sort
    *before* each factorization (a single synchronization point), then a
    fully blocked unpivoted QR. Valid because the chain's ``D_i`` is
    already in descending order, so the matrix ``C_i`` arrives almost
    column-graded and true pivoting would barely move anything.

``"nopivot"``
    No grading control at all beyond the diagonal split — an ablation
    that exposes why some pivoting is required at strong coupling.

``"svd"``
    The historical alternative (Sugiyama & Koonin; Sorella et al. — the
    paper's refs [28], [29]): a LAPACK singular value decomposition per
    step. **Caveat measured and tested here:** bidiagonalization SVDs
    are only *absolutely* accurate, so on adversarially graded chains
    (ordered HS fields at large beta*U) this method silently loses the
    small scales where QRP does not — a concrete reason the DQMC
    community standardized on pivoted-QR stratification.

``"jacobi"``
    The relative-accuracy repair of "svd": a one-sided Jacobi SVD
    (Drmac & Veselic — the paper's ref [30]) per step. Matches QRP even
    on the adversarial chains, at many times the cost; the gold
    standard for verification, never a production kernel.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

import numpy as np

from ..linalg import (
    GradedDecomposition,
    flops,
    qr_nopivot,
    qr_pivoted,
    qr_prepivoted,
    stable_inverse_from_graded,
)

__all__ = [
    "StratificationMethod",
    "METHODS",
    "IncrementalStratifier",
    "stratified_decomposition",
    "stratified_inverse",
    "StratificationStats",
]


StratificationMethod = Literal["qrp", "prepivot", "nopivot", "svd", "jacobi"]

METHODS = ("qrp", "prepivot", "nopivot", "svd", "jacobi")

_FACTORIZERS: dict = {
    "qrp": qr_pivoted,
    "prepivot": qr_prepivoted,
    "nopivot": qr_nopivot,
}


def _resolve_backend(backend, threaded_norms: bool):
    """Map the (deprecated) ``threaded_norms`` flag and ``backend`` spec
    to a live backend instance; the strat chain's scalings/GEMMs and the
    pre-pivot norm pass dispatch through it."""
    from ..backends import BaseBackend, get_backend, serial_backend

    if threaded_norms:
        warnings.warn(
            "threaded_norms is deprecated; pass backend='threaded' "
            "(or any registered backend) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if backend is not None:
            raise ValueError(
                "pass either backend= or the deprecated threaded_norms, "
                "not both"
            )
        return get_backend("threaded")
    if backend is None:
        return serial_backend()
    if isinstance(backend, str):
        return get_backend(backend)
    if not isinstance(backend, BaseBackend):
        raise TypeError(f"backend must be a name or backend, got {backend!r}")
    return backend


def _step_factorize(method: str, c: np.ndarray, backend=None):
    """One chain step's factorization: ``c = q @ diag(d) @ t_factor``
    with ``t_factor`` well-conditioned; returns
    ``(q, d, t_factor, piv, sync_points)`` where ``piv`` is the row
    permutation to apply to the accumulated T (``P^T T = T[piv]``).

    ``backend`` supplies the pre-pivot column-norm pass (paper
    Sec. IV-B: "our implementation uses OpenMP to compute several norms
    simultaneously" — same permutation, different execution).
    """
    if method == "svd":
        import scipy.linalg as sla

        u, s, vt = sla.svd(c, check_finite=False)  # qmclint: disable=QL007 -- SVD path has no backend kernel; serial by design
        flops.record("svd", 22 * c.shape[0] ** 3)  # LAPACK gesdd-ish count
        _check_diag(s)
        # the implicit QR iteration inside the SVD is at least as
        # serial as pivoting
        return u, s, vt, np.arange(c.shape[1]), min(c.shape)
    if method == "jacobi":
        from ..linalg.jacobi import jacobi_svd

        u, s, vt = jacobi_svd(c)
        _check_diag(s)
        return u, s, vt, np.arange(c.shape[1]), min(c.shape)
    if method == "prepivot" and backend is not None:
        res = qr_prepivoted(c, piv=backend.prepivot_permutation(c))
    else:
        res = _FACTORIZERS[method](c)
    d = np.diag(res.r).copy()
    _check_diag(d)
    # The graded split of R is pinned to this exact division so every
    # backend shares one rounding of the T factor.
    return res.q, d, res.r / d[:, None], res.piv, res.sync_points  # qmclint: disable=QL007 -- pinned graded split; one rounding shared by all backends


@dataclass
class StratificationStats:
    """Diagnostics of one stratified chain evaluation."""

    n_factors: int = 0
    sync_points: int = 0
    #: max over steps of (number of columns the pivot permutation moved)
    max_pivot_displacement: int = 0
    #: grading ratio max|D|/min|D| of the final decomposition
    grading_ratio: float = 1.0


def _check_diag(d: np.ndarray) -> np.ndarray:
    if np.any(d == 0.0):
        raise np.linalg.LinAlgError(
            "exactly singular factor in the stratified chain "
            "(zero diagonal in R)"
        )
    return d


def _pivot_displacement(piv: np.ndarray) -> int:
    return int(np.max(np.abs(piv - np.arange(piv.size)), initial=0))


def stratified_decomposition(
    factors: Iterable[np.ndarray],
    method: StratificationMethod = "prepivot",
    stats: StratificationStats | None = None,
    threaded_norms: bool = False,
    backend=None,
) -> GradedDecomposition:
    """Graded decomposition of ``F_L ... F_2 F_1``.

    Parameters
    ----------
    factors:
        The chain, *rightmost factor first* (the order it is applied to a
        vector). Items may be individual B matrices or pre-multiplied
        clusters; each must be square of the same size.
    method:
        One of :data:`METHODS`. Both "qrp" and "prepivot" pivot the very
        first factor fully (paper Algorithm 3 step 1); they differ in the
        L-1 chain steps.
    stats:
        Optional mutable diagnostics accumulator.
    threaded_norms:
        Deprecated spelling of ``backend="threaded"``.
    backend:
        A :class:`~repro.backends.PropagatorBackend` (or registry name)
        executing the chain's GEMMs, diagonal scalings, and the
        pre-pivot norm pass; ``None`` uses the serial numpy backend.

    Returns
    -------
    GradedDecomposition
        ``Q diag(D) T`` equal to the product, with T carried in original
        (unpermuted) column order.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    backend = _resolve_backend(backend, threaded_norms)

    # The stabilization spine runs in the policy's spine dtype — float64
    # under full64 *and* mixed (compute-dtype cluster factors are
    # promoted here, before anything graded is formed), float32 only
    # under fast32.
    spine = backend.policy.spine

    it = iter(factors)
    try:
        first = spine(next(it))
    except StopIteration:
        raise ValueError("empty factor chain") from None
    n = first.shape[0]
    if first.shape != (n, n):
        raise ValueError("factors must be square")

    # Step 1-2: the first factor is fully pivoted under both QR policies
    # (paper Algorithm 3 keeps QRP there); svd/nopivot use themselves.
    first_method = "qrp" if method in ("qrp", "prepivot") else method
    q, d, tf, piv, sync = _step_factorize(first_method, first, backend=backend)
    t = np.empty((n, n), dtype=tf.dtype)
    t[:, piv] = tf  # T = (graded factor) P^T: scatter columns back

    n_factors = 1
    sync_points = sync
    max_disp = _pivot_displacement(piv)

    # Step 3: fold in the remaining factors left-to-right.
    for f in it:
        f = spine(f)
        if f.shape != (n, n):
            raise ValueError("factors must all be square of the same size")
        # 3a: C = (F @ Q) * D  — GEMM first, diagonal column scaling after,
        # so nothing graded enters the GEMM.
        c = backend.gemm(f, q, category="stratification")
        c = backend.scale_columns(c, d, out=c, category="stratification")
        # 3b/3c: factor C under the chosen policy.
        q, d, tf, piv, sync = _step_factorize(method, c, backend=backend)
        sync_points += sync
        max_disp = max(max_disp, _pivot_displacement(piv))
        # 3d: T <- (graded factor)(P^T T); P^T permutes T's *rows* by piv.
        t = backend.gemm(tf, t[piv, :], category="stratification")
        n_factors += 1

    out = GradedDecomposition(q=q, d=d, t=t)
    if stats is not None:
        stats.n_factors = n_factors
        stats.sync_points = sync_points
        stats.max_pivot_displacement = max_disp
        stats.grading_ratio = out.grading_ratio()
    return out


def stratified_inverse(
    factors: Sequence[np.ndarray],
    method: StratificationMethod = "prepivot",
    stats: StratificationStats | None = None,
    threaded_norms: bool = False,
    backend=None,
) -> np.ndarray:
    """``(I + F_L ... F_1)^{-1}`` via stratification + the stable solve.

    This is the full Algorithm 2 (``method="qrp"``) or Algorithm 3
    (``method="prepivot"``) including step 4; ``backend`` executes the
    chain's GEMMs/scalings (``threaded_norms`` is the deprecated
    spelling of ``backend="threaded"``).
    """
    g = stratified_decomposition(
        factors,
        method=method,
        stats=stats,
        threaded_norms=threaded_norms,
        backend=backend,
    )
    return stable_inverse_from_graded(g)


class IncrementalStratifier:
    """Stratified chain built one factor at a time, snapshot-able.

    The batch entry point :func:`stratified_decomposition` consumes a
    whole chain; algorithms that need the decomposition of *every prefix*
    (e.g. the fast time-displaced series, which pairs prefix and suffix
    decompositions at each cluster boundary) push factors incrementally
    and snapshot after each push — O(1) QR steps per prefix instead of
    restratifying from scratch.
    """

    def __init__(self, method: StratificationMethod = "prepivot", backend=None):
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        self.method = method
        self.backend = _resolve_backend(backend, threaded_norms=False)
        self._q: np.ndarray | None = None
        self._d: np.ndarray | None = None
        self._t: np.ndarray | None = None

    @property
    def n_factors(self) -> int:
        return 0 if self._q is None else self._n_factors

    def push(self, factor: np.ndarray) -> None:
        """Fold one more (leftmost) factor into the chain."""
        f = self.backend.policy.spine(factor)
        n = f.shape[0]
        if f.shape != (n, n):
            raise ValueError("factors must be square")
        if self._q is None:
            first_method = (
                "qrp" if self.method in ("qrp", "prepivot") else self.method
            )
            q, d, tf, piv, _ = _step_factorize(
                first_method, f, backend=self.backend
            )
            t = np.empty((n, n), dtype=tf.dtype)
            t[:, piv] = tf
            self._q, self._d, self._t = q, d, t
            self._n_factors = 1
            return
        if f.shape != self._q.shape:
            raise ValueError("factors must all be square of the same size")
        b = self.backend
        c = b.gemm(f, self._q, category="stratification")
        c = b.scale_columns(c, self._d, out=c, category="stratification")
        q, d, tf, piv, _ = _step_factorize(self.method, c, backend=b)
        self._t = b.gemm(tf, self._t[piv, :], category="stratification")
        self._q, self._d = q, d
        self._n_factors += 1

    def decomposition(self) -> GradedDecomposition:
        """A snapshot of the current chain (copies; safe to keep)."""
        if self._q is None:
            raise ValueError("no factors pushed yet")
        return GradedDecomposition(
            q=self._q.copy(), d=self._d.copy(), t=self._t.copy()
        )
