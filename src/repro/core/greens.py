"""The Green's function engine: stratification + clustering + wrapping.

This is the component the paper spends Secs. III-IV on. One engine owns,
for a fixed model and a live HS field:

* a :class:`~repro.core.recycling.ClusterCache` of dense k-slice products,
* fresh (stratified) evaluation of the equal-time Green's function at any
  cluster boundary, under any pivoting policy,
* wrapping between adjacent slices,
* drift diagnostics (wrapped vs. freshly stratified G).

Orientation convention: ``boundary_greens(sigma, c)`` returns

    G = (I + Btilde_{c-1} ... Btilde_0 Btilde_{Lk-1} ... Btilde_c)^{-1}

i.e. the Green's function *before* slice ``c*k`` is wrapped through. The
sweep then wraps through each slice of cluster c in turn, updating sites
after each wrap (see :mod:`repro.dqmc.sweep`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hamiltonian import BMatrixFactory, HSField
from ..profiling import PhaseProfiler, ensure_profiler
from ..telemetry import Telemetry, ensure_telemetry
from .recycling import ClusterCache
from .stratification import (
    StratificationMethod,
    StratificationStats,
    stratified_inverse,
)
from .wrapping import wrap_backward, wrap_forward

__all__ = ["GreensFunctionEngine"]


class GreensFunctionEngine:
    """Computes and advances equal-time Green's functions for both spins.

    Parameters
    ----------
    factory:
        B-matrix factory (fixes model, K exponentials, nu).
    field:
        The live HS field; mutated externally by the sweep, which must
        call :meth:`invalidate_slice` after any change.
    method:
        Stratification pivoting policy ("prepivot" is the paper's
        Algorithm 3 and the default; "qrp" is Algorithm 2).
    cluster_size:
        k — slices pre-multiplied per stratification step. The paper (and
        default here) ties the wrap count to it: a fresh stratification
        happens every ``cluster_size`` wraps.
    profiler:
        Optional :class:`PhaseProfiler`; phases "clustering",
        "stratification" and "wrapping" are reported.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; the engine counts
        fresh stratifications into it and registers the cluster cache's
        hit/miss stats and the backend's dispatch counters as snapshot
        sources. ``None`` costs nothing (shared no-op instance).
    backend:
        Execution backend (registry name or
        :class:`~repro.backends.PropagatorBackend` instance) every
        propagator operation dispatches through; ``None`` consults
        ``$REPRO_BACKEND`` (default: the serial numpy backend).
        ``threaded_norms=True`` is the deprecated spelling of
        ``backend="threaded"``.
    precision:
        Precision policy (name or
        :class:`~repro.precision.PrecisionPolicy`) applied to the
        backend: compute dtype for cluster products / wrapping / the
        running G, spine dtype for stratification. ``None`` keeps the
        backend's own policy (constructor option, ``$REPRO_PRECISION``,
        default ``full64``).
    """

    def __init__(
        self,
        factory: BMatrixFactory,
        field: HSField,
        method: StratificationMethod = "prepivot",
        cluster_size: int = 10,
        profiler: Optional[PhaseProfiler] = None,
        threaded_norms: bool = False,
        telemetry: Optional[Telemetry] = None,
        backend=None,
        precision=None,
    ):
        from ..backends import resolve_backend, validate_backend_method
        from .stratification import _resolve_backend

        self.factory = factory
        self.field = field
        self.method = method
        if backend is None and not threaded_norms:
            # The engine is the user-facing entry point, so (unlike the
            # library-level chain functions) its default is env-aware.
            self.backend = resolve_backend(None)
        else:
            self.backend = _resolve_backend(backend, threaded_norms)
        if precision is not None:
            # An explicit policy overrides whatever the backend carries
            # (constructor option or $REPRO_PRECISION); None keeps it —
            # a passed-in backend instance arrives policy-complete.
            self.backend.set_policy(precision)
        self.backend.bind(factory)
        validate_backend_method(self.backend, method)
        self.threaded_norms = self.backend.name == "threaded"
        self.profiler = ensure_profiler(profiler)
        self.telemetry = ensure_telemetry(telemetry)
        self.cache = ClusterCache(
            factory, field, cluster_size, backend=self.backend
        )
        self._register_cache_stats()
        self.last_stats = StratificationStats()

    def _register_cache_stats(self) -> None:
        """Expose cluster-cache and backend stats to telemetry snapshots.

        The sources read ``self.cache`` / ``self.backend`` at snapshot
        time, so subclasses that swap in their own (the hybrid GPU
        engine) are covered without re-registration."""
        if not self.telemetry.enabled:
            return

        def export(registry, engine=self) -> None:
            for name, value in engine.cache.stats().items():
                registry.set_gauge(name, value)
            for name, value in engine.backend.stats().items():
                registry.set_gauge(name, value)

        self.telemetry.add_snapshot_source(export)

    @property
    def device(self):
        """The simulated device of a GPU-offload backend.

        Raises AttributeError on backends without one, matching the old
        hybrid-engine attribute surface.
        """
        device = getattr(self.backend, "device", None)
        if device is None:
            raise AttributeError(
                f"backend {self.backend.name!r} has no device"
            )
        return device

    @property
    def policy(self):
        """The active :class:`~repro.precision.PrecisionPolicy` (carried
        by the backend — the protocol owns the dtype decisions)."""
        return self.backend.policy

    @property
    def n(self) -> int:
        return self.factory.n

    @property
    def n_clusters(self) -> int:
        return self.cache.n_clusters

    @property
    def cluster_size(self) -> int:
        return self.cache.cluster_size

    # -- cache maintenance -------------------------------------------------

    def invalidate_slice(self, l: int) -> None:
        """Must be called after the HS field changes at slice l."""
        self.cache.invalidate_slice(l)

    def invalidate_all(self) -> None:
        self.cache.invalidate_all()

    def repartition(self, cluster_size: int) -> None:
        """Adopt a new cluster size (= wrap interval) on the live engine.

        Everything downstream of the tiling is derived state: the
        cluster cache re-tiles itself (dropping its products) and the
        next ``boundary_greens`` stratifies the new chain from scratch,
        so a repartitioned engine is indistinguishable from one
        constructed with the new size over the same field. Safe between
        sweeps only — a sweep iterates the tiling it started with.
        """
        if cluster_size == self.cluster_size:
            return
        self.cache.repartition(cluster_size)
        self.telemetry.counter("engine.repartitions")

    def set_precision(self, policy) -> bool:
        """Adopt a new precision policy on the live engine, in place.

        The watchdog's promotion path (and checkpoint resume). The
        backend re-realizes the kinetic exponentials in the new compute
        dtype and every cached cluster product is dropped — the products
        are compute-dtype state, so the next ``boundary_greens`` rebuilds
        and re-stratifies under the new policy, leaving the engine
        indistinguishable from one constructed with it. Safe between
        sweeps only (same contract as :meth:`repartition`). Returns True
        when the policy actually changed.
        """
        from ..precision import resolve_policy

        policy = resolve_policy(policy)
        if policy is self.backend.policy:
            return False
        self.backend.set_policy(policy)
        self.invalidate_all()
        self.telemetry.counter("engine.precision_switches")
        return True

    def set_kinetic(self, kinetic) -> bool:
        """Adopt a new kinetic-propagator mode on the live engine.

        Rebuilds the B-matrix factory in the requested mode
        (``"exact"`` or ``"checkerboard"``), re-binds the backend (which
        picks up or drops the structured operator) and invalidates every
        cached cluster product — the caller owns refreshing any Green's
        function it holds, exactly as for :meth:`set_precision`. Safe
        between sweeps only. Returns True when the mode actually changed.

        Raises
        ------
        ValueError
            Unknown mode name, or a checkerboard request on a lattice
            the bond partitioner rejects (the autotuner treats that as
            "candidate inapplicable").
        """
        from ..hamiltonian.bmatrix import BMatrixFactory, resolve_kinetic

        mode = resolve_kinetic(kinetic)
        if mode == self.factory.kinetic_mode:
            return False
        self.factory = BMatrixFactory(self.factory.model, kinetic=mode)
        self.backend.bind(self.factory)
        self.cache.factory = self.factory
        self.invalidate_all()
        self.telemetry.counter("engine.kinetic_switches")
        return True

    # -- fresh evaluation ----------------------------------------------------

    def boundary_greens(self, sigma: int, start_cluster: int = 0) -> np.ndarray:
        """Freshly stratified G at the boundary before cluster ``start_cluster``.

        Cluster products come from the recycling cache (phase
        "clustering" inside the cache's misses); the chain itself is
        phase "stratification".
        """
        with self.profiler.phase("clustering"):
            chain = self.cache.chain(sigma, start_cluster)
        with self.profiler.phase("stratification"):
            stats = StratificationStats()
            g = stratified_inverse(
                chain,
                method=self.method,
                stats=stats,
                backend=self.backend,
            )
            self.last_stats = stats
        self.telemetry.counter("engine.stratifications")
        # The refresh is computed on the float64 spine; the running G
        # that wraps and delayed updates consume lives in the policy's
        # compute dtype (no-op passthrough under full64).
        return self.backend.policy.compute(g)

    def greens_at_slice(self, sigma: int, l: int) -> np.ndarray:
        """G_l (leftmost factor B_l) built fresh: boundary G + wraps.

        Stratifies at the cluster boundary at-or-before slice l, then
        wraps forward through slices ``c*k .. l``. Used for measurements
        at arbitrary slices and by tests; the sweep itself keeps a
        running wrapped G instead.
        """
        c = self.cache.cluster_of_slice(l)
        g = self.boundary_greens(sigma, c)
        for ll in range(c * self.cluster_size, l + 1):
            g = self.wrap(g, ll, sigma)
        return g

    def greens_at_slice_direct(self, sigma: int, l: int) -> np.ndarray:
        """G_l stratified slice-by-slice (no clustering, no wrapping).

        The most conservative evaluation available: one QR step per time
        slice over individual B matrices, chain order
        ``[l+1, ..., L-1, 0, ..., l]`` (rightmost first). Serves as the
        independent reference for wrap-drift and clustering-accuracy
        diagnostics.
        """
        nl = self.field.n_slices
        if not 0 <= l < nl:
            raise IndexError(f"slice {l} out of range")
        order = [(l + 1 + j) % nl for j in range(nl)]
        factors = (
            self.factory.b_matrix(self.field, ll, sigma) for ll in order
        )
        with self.profiler.phase("stratification"):
            return stratified_inverse(
                factors, method=self.method, backend=self.backend
            )

    # -- wrapping -----------------------------------------------------------

    def wrap(self, g: np.ndarray, l: int, sigma: int) -> np.ndarray:
        """``B_l G B_l^{-1}``: advance so slice l becomes the leftmost factor."""
        with self.profiler.phase("wrapping"):
            return wrap_forward(
                self.factory, self.field, g, l, sigma, backend=self.backend
            )

    def unwrap(self, g: np.ndarray, l: int, sigma: int) -> np.ndarray:
        """Inverse of :meth:`wrap` (used by reverse sweeps and tests)."""
        with self.profiler.phase("wrapping"):
            return wrap_backward(
                self.factory, self.field, g, l, sigma, backend=self.backend
            )

    def wrap_pair(self, gs: dict, l: int) -> dict:
        """Wrap both spin sectors through slice ``l`` in one batched call.

        ``gs`` maps spin (+1/-1) to its Green's function; the two sectors
        are stacked so stacked-GEMM backends run them as single batched
        products. Per-sector results are bit-identical to :meth:`wrap`.
        """
        nu = self.factory.nu
        spins = (1, -1)
        with self.profiler.phase("wrapping"):
            vs = np.stack(
                [self.field.v_diagonal(l, s, nu) for s in spins]
            )
            stacked = np.stack([np.asarray(gs[s]) for s in spins])
            out = self.backend.wrap_batched(stacked, vs)
        return {s: out[i] for i, s in enumerate(spins)}

    def unwrap_pair(self, gs: dict, l: int) -> dict:
        """Batched inverse of :meth:`wrap_pair` for both spin sectors."""
        nu = self.factory.nu
        spins = (1, -1)
        with self.profiler.phase("wrapping"):
            vs = np.stack(
                [self.field.v_diagonal(l, s, nu) for s in spins]
            )
            stacked = np.stack([np.asarray(gs[s]) for s in spins])
            out = self.backend.unwrap_batched(stacked, vs)
        return {s: out[i] for i, s in enumerate(spins)}

    def configuration_sign(self) -> float:
        """Sign of ``det M_+ det M_-`` for the current field.

        Computed through the graded decomposition (no overflow). The
        simulation seeds its running sign with this once; sweeps then
        track it incrementally through Metropolis ratio signs.
        """
        from ..linalg import stable_log_det_from_graded
        from .stratification import stratified_decomposition

        sign = 1.0
        for sigma in (1, -1):
            with self.profiler.phase("clustering"):
                chain = self.cache.chain(sigma, 0)
            with self.profiler.phase("stratification"):
                dec = stratified_decomposition(
                    chain, method=self.method, backend=self.backend
                )
            s, _ = stable_log_det_from_graded(dec)
            sign *= s
        return sign

    # -- diagnostics -----------------------------------------------------------

    def grading_profile(self, sigma: int, start_cluster: int = 0) -> np.ndarray:
        """The graded scales |D| of the current chain, sorted descending.

        The spectrum whose dynamic range the whole stratification
        machinery exists to tame: its spread is exp(O(beta * (U + W))).
        Under QR-based methods these are diag(R) magnitudes — singular
        values up to modest factors; run the engine with
        ``method="jacobi"`` for the exact singular spectrum. Useful for
        diagnosing why a parameter point needs a smaller cluster size
        (see :func:`repro.linalg.chain_conditioning_report`).
        """
        from .stratification import stratified_decomposition

        with self.profiler.phase("clustering"):
            chain = self.cache.chain(sigma, start_cluster)
        with self.profiler.phase("stratification"):
            dec = stratified_decomposition(
                chain, method=self.method, backend=self.backend
            )
        return np.sort(np.abs(dec.d))[::-1]

    def wrap_drift(self, sigma: int, n_wraps: Optional[int] = None) -> float:
        """Relative error accumulated by ``n_wraps`` consecutive wraps.

        Starting from a fresh G at boundary 0, wraps through the first
        ``n_wraps`` slices and compares against the freshly stratified
        G at the same position: ``||G_wrap - G_fresh||_F / ||G_fresh||_F``.
        This is the quantity that justifies the choice of l_wrap ~ 10
        (ablation bench).
        """
        n_wraps = self.cluster_size if n_wraps is None else n_wraps
        if not 1 <= n_wraps <= self.field.n_slices:
            raise ValueError("n_wraps out of range")
        g = self.boundary_greens(sigma, 0)
        for l in range(n_wraps):
            g = self.wrap(g, l, sigma)
        fresh = self.greens_at_slice_direct(sigma, n_wraps - 1)
        # Diagnostic Frobenius norms, not a propagator operation — no
        # backend dispatch wanted here.
        denom = np.linalg.norm(fresh)  # qmclint: disable=QL007 -- diagnostic norm, not a propagator op
        return float(np.linalg.norm(g - fresh) / denom)  # qmclint: disable=QL007 -- diagnostic norm, not a propagator op
