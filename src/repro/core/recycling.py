"""Cluster recycling: cache the dense cluster products across sweeps.

Paper Sec. III-B2: within a sweep, each fresh stratification consumes the
same ``L/k`` cluster matrices in a rotated order, and between consecutive
stratifications only *one* cluster (the one just swept) has changed. The
dense products are therefore cached and rebuilt only on invalidation —
storage is ``L/k`` matrices per spin (< 100 matrices of <= 8 MB in the
paper's largest runs, trivially affordable).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hamiltonian import BMatrixFactory, HSField
from .clustering import cluster_product, cluster_slices

__all__ = ["ClusterCache"]


class ClusterCache:
    """Per-spin cache of dense cluster matrices with slice-level invalidation.

    The sweep notifies the cache whenever it mutates the HS field at a
    slice (``invalidate_slice``); the owning cluster's cached product is
    dropped for both spins and lazily rebuilt on next access.
    """

    def __init__(
        self,
        factory: BMatrixFactory,
        field: HSField,
        cluster_size: int,
        product_fn=None,
        backend=None,
    ):
        """``product_fn(sigma, slices) -> ndarray`` overrides how a dense
        cluster product is built — the legacy hook the GPU offload layer
        used to route rebuilds through Algorithm 4/5 instead of the CPU
        path. ``backend`` is the modern form: rebuilds go through
        ``backend.cluster_product_batched`` and a miss on one spin
        prefetches *both* spin sectors in one stacked call (both spins
        are invalidated together, so the partner access is otherwise a
        guaranteed second miss). ``product_fn`` wins when both are given.
        """
        self.factory = factory
        self.field = field
        self.cluster_size = cluster_size
        self.ranges = cluster_slices(field.n_slices, cluster_size)
        self._product_fn = product_fn
        self.backend = backend
        # Bound-factory identity, not exponential identity: a narrowed
        # precision policy realizes expk as a compute-dtype copy.
        if backend is not None and getattr(backend, "bound_factory", None) is not factory:
            backend.bind(factory)
        # (sigma, cluster_index) -> dense product, or absent if stale.
        self._cache: Dict[Tuple[int, int], np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.batched_builds = 0

    @property
    def n_clusters(self) -> int:
        return len(self.ranges)

    def cluster_of_slice(self, l: int) -> int:
        """Index of the cluster owning time slice ``l``."""
        if not 0 <= l < self.field.n_slices:
            raise IndexError(f"slice {l} out of range")
        return l // self.cluster_size

    def invalidate_slice(self, l: int) -> None:
        """Drop cached products (both spins) of the cluster owning slice l."""
        j = self.cluster_of_slice(l)
        self._cache.pop((1, j), None)
        self._cache.pop((-1, j), None)

    def invalidate_all(self) -> None:
        self._cache.clear()

    def repartition(self, cluster_size: int) -> None:
        """Re-tile the time axis into clusters of a new size, in place.

        The autotuner's entry point for trying cluster sizes on a live
        run: the slice ranges are recomputed (``cluster_size`` must
        divide ``n_slices``, validated by :func:`cluster_slices`) and
        every cached product is dropped — the products themselves are
        shaped by the tiling. Hit/miss counters keep accumulating across
        repartitions so the telemetry story stays continuous.
        """
        if cluster_size == self.cluster_size:
            return
        self.ranges = cluster_slices(self.field.n_slices, cluster_size)
        self.cluster_size = cluster_size
        self._cache.clear()

    def get(self, sigma: int, j: int) -> np.ndarray:
        """The dense product of cluster ``j`` for spin ``sigma``.

        Returned arrays are owned by the cache — callers must not mutate
        them (the stratification chain only reads its factors).
        """
        key = (sigma, j)
        cached: Optional[np.ndarray] = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if self._product_fn is not None:
            prod = self._product_fn(sigma, self.ranges[j])
        elif self.backend is not None:
            prod = self._build_batched(sigma, j)
        else:
            prod = cluster_product(self.factory, self.field, sigma, self.ranges[j])
        self._cache[key] = prod
        return prod

    def _build_batched(self, sigma: int, j: int) -> np.ndarray:
        """Rebuild cluster ``j`` for both spins in one stacked call.

        Invalidation always drops both spin sectors of a cluster, so the
        other spin's rebuild is coming; stacking the two V-chains into one
        ``cluster_product_batched`` call halves the kernel launches (and
        on stacked-GEMM backends runs both sectors in single GEMMs).
        """
        nu = self.factory.nu
        spins = (sigma, -sigma)
        v_stack = np.stack(
            [
                [self.field.v_diagonal(l, s, nu) for l in self.ranges[j]]
                for s in spins
            ]
        )
        prods = self.backend.cluster_product_batched(v_stack)
        self.batched_builds += 1
        # The partner sector is cached directly (not via get()) so its
        # later access counts as the hit it now is.
        self._cache[(-sigma, j)] = prods[1]
        return prods[0]

    def stats(self) -> Dict[str, float]:
        """Hit/miss totals in telemetry-snapshot form.

        Registered by the simulation driver as a telemetry snapshot
        source, so the recycling effectiveness (paper Sec. III-B2's
        whole point) is archived alongside the phase timings without the
        cache itself carrying any per-access instrumentation.
        """
        accesses = self.hits + self.misses
        return {
            "cluster_cache.hits": float(self.hits),
            "cluster_cache.misses": float(self.misses),
            "cluster_cache.hit_rate": (
                self.hits / accesses if accesses else 0.0
            ),
            "cluster_cache.entries": float(len(self._cache)),
            "cluster_cache.batched_builds": float(self.batched_builds),
        }

    def chain(self, sigma: int, start_cluster: int) -> List[np.ndarray]:
        """Cluster chain rightmost-first starting at ``start_cluster``.

        ``chain(sigma, c)`` lists the factors of
        ``Btilde_{c-1} ... Btilde_0 Btilde_{Lk-1} ... Btilde_c`` in the
        order stratification consumes them — the rotation pattern of the
        paper's sequence (5).
        """
        nc = self.n_clusters
        if not 0 <= start_cluster < nc:
            raise IndexError(f"cluster {start_cluster} out of range")
        order = [(start_cluster + j) % nc for j in range(nc)]
        return [self.get(sigma, j) for j in order]
