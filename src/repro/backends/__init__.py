"""Pluggable execution backends for the Green's-function pipeline.

One protocol (:class:`PropagatorBackend`), four implementations:

* ``"numpy"`` — serial reference (:class:`NumpyBackend`);
* ``"threaded"`` — worker-pool fine-grain kernels, paper Sec. IV-B
  (:class:`ThreadedBackend`);
* ``"gpu-sim"`` — simulated-GPU offload of clustering and wrapping,
  paper Sec. VI (:class:`SimulatedGPUBackend`);
* ``"cupy"`` — real-GPU execution, active only when cupy imports
  (:class:`CupyBackend`).

Select by name anywhere a ``backend=`` knob exists (engine, Simulation,
input files, ``repro run --backend``) or via ``$REPRO_BACKEND``; see
``docs/architecture.md`` for the protocol and how to add a backend.
"""

from .base import (
    BackendError,
    BackendUnavailableError,
    BaseBackend,
    PropagatorBackend,
)
from .cupy_backend import CupyBackend, cupy_available
from .gpu_sim import SimulatedGPUBackend
from .numpy_backend import NumpyBackend
from .registry import (
    available_backends,
    default_backend_name,
    get_backend,
    known_backends,
    register_backend,
    resolve_backend,
    serial_backend,
    validate_backend_method,
)
from .threaded import ThreadedBackend

__all__ = [
    "BackendError",
    "BackendUnavailableError",
    "BaseBackend",
    "CupyBackend",
    "NumpyBackend",
    "PropagatorBackend",
    "SimulatedGPUBackend",
    "ThreadedBackend",
    "available_backends",
    "cupy_available",
    "default_backend_name",
    "get_backend",
    "known_backends",
    "register_backend",
    "resolve_backend",
    "serial_backend",
    "validate_backend_method",
]
