"""Multicore backend over the worker-pool kernels (paper Sec. IV-B).

GEMMs stay with the (already multithreaded) BLAS; what this backend adds
is exactly what QUEST added with OpenMP — thread-parallel execution of
the fine-grain operations BLAS does not thread at DQMC sizes: diagonal
scalings and the pre-pivot column-norm pass.

Bit-identity contract: the chunked scalings are elementwise (no
reductions), so they match the numpy backend exactly at every size. The
column-norm pass reduces per-chunk partial sums; below the pool's grain
size (128 rows) it runs in one chunk and is bit-identical, above it the
reassociation differs in the last ulp — same guarantee the paper's
OpenMP norm loop gives relative to serial dnrm2.
"""

from __future__ import annotations

import numpy as np

from ..parallel import (
    parallel_column_norms,
    parallel_prepivot_permutation,
    scale_columns,
    scale_rows,
    scale_two_sided,
)
from .numpy_backend import NumpyBackend

__all__ = ["ThreadedBackend"]


class ThreadedBackend(NumpyBackend):
    """Worker-pool execution of the fine-grain propagator ops."""

    name = "threaded"

    def scale_rows(self, a, v, out=None, category: str = "scaling"):
        self._count("scale_rows")
        return scale_rows(a, v, out=out, category=category)

    def scale_columns(self, a, v, out=None, category: str = "scaling"):
        self._count("scale_columns")
        return scale_columns(a, v, out=out, category=category)

    def scale_two_sided(self, a, v, col_v=None, out=None, category: str = "scaling"):
        self._count("scale_two_sided")
        return scale_two_sided(a, v, col_v=col_v, out=out, category=category)

    def column_norms(self, a):
        self._count("column_norms")
        return parallel_column_norms(a)

    def prepivot_permutation(self, a):
        """Descending-norm order from the thread-parallel norm pass."""
        self._count("prepivot_permutation")
        return parallel_prepivot_permutation(a)

    def cluster_product(self, v_diagonals):
        """Algorithm 4/5 order with pooled row scalings."""
        self._count("cluster_product")
        self._require_bound()
        if len(v_diagonals) == 0:
            raise ValueError("empty cluster")
        compute = self.policy.compute
        out = self.scale_rows(
            self.expk, compute(v_diagonals[0]), category="clustering"
        )
        for v in v_diagonals[1:]:
            if self.structured is not None:
                t = self.apply_structured(out, side="left", category="clustering")
            else:
                t = self.gemm(self.expk, out, category="clustering")
            out = self.scale_rows(t, compute(v), out=t, category="clustering")
        return out

    # wrap/unwrap inherit the numpy composition, which routes the
    # scalings back through the overrides above — pooled automatically.
    # The *batched* variants fall back to per-sector loops here: the
    # stacked elementwise pass would serialize the pool's row chunking.

    def wrap_batched(self, gs, vs):
        self._count("wrap_batched")
        return np.stack([self.wrap(g, v) for g, v in zip(gs, vs)])

    def unwrap_batched(self, gs, vs):
        self._count("unwrap_batched")
        return np.stack([self.unwrap(g, v) for g, v in zip(gs, vs)])

    def cluster_product_batched(self, v_stack):
        self._count("cluster_product_batched")
        return np.stack([self.cluster_product(list(vs)) for vs in v_stack])
