"""Optional real-GPU backend over cupy (activates only when importable).

This is the seam the simulated-GPU work has been pointing at: the same
canonical kernel orders as every other backend, executed by cuBLAS and
cupy elementwise kernels on an actual device. The module imports
lazily — constructing :class:`CupyBackend` on a machine without cupy
raises :class:`~repro.backends.base.BackendUnavailableError`, and the
registry reports it as unavailable rather than failing at import time
(the project installs no GPU dependencies itself).

Interface contract: host ndarrays in, host ndarrays out — each op pays
its own H2D/D2H transfers, like the paper's Algorithm 4/6 listings. A
production port would keep G device-resident across wraps; that
optimization belongs in a follow-up backend, not in the protocol.

Numerical note: cuBLAS GEMM is *not* bitwise-identical to host BLAS
(different blocking/FMA contraction), so this backend is excluded from
the bit-identity equivalence class and tested to tolerances instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg import flops
from .base import BackendUnavailableError
from .numpy_backend import NumpyBackend

__all__ = ["CupyBackend", "cupy_available"]


def cupy_available() -> bool:
    """True when cupy imports and reports at least one device."""
    try:
        import cupy  # noqa: F401
    except Exception:  # pragma: no cover - environment-dependent
        return False
    try:
        return int(cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:  # pragma: no cover - driver present, no device
        return False


class CupyBackend(NumpyBackend):
    """Real-GPU execution of the propagator ops via cupy."""

    name = "cupy"

    def __init__(self, **options):
        super().__init__(**options)
        if not cupy_available():
            raise BackendUnavailableError(
                "backend 'cupy' needs an importable cupy with a CUDA "
                "device; install cupy or pick numpy/threaded/gpu-sim"
            )
        import cupy

        self._cp = cupy
        self._d_expk = None
        self._d_inv_expk = None

    def bind(self, factory) -> "CupyBackend":
        super().bind(factory)
        self._d_expk = self._cp.asarray(self.expk)
        self._d_inv_expk = self._cp.asarray(self.inv_expk)
        return self

    # -- ops (host in / host out) ------------------------------------------

    def gemm(self, a, b, category: str = "gemm"):
        self._count("gemm")
        cp = self._cp
        m, k = a.shape[0], a.shape[1]
        n = b.shape[1] if b.ndim == 2 else 1
        self._record_gemm(category, m, n, k)
        return cp.asnumpy(cp.asarray(a) @ cp.asarray(b))

    def cluster_product(self, v_diagonals: Sequence[np.ndarray]):
        self._count("cluster_product")
        self._require_bound()
        if len(v_diagonals) == 0:
            raise ValueError("empty cluster")
        cp, n = self._cp, self.n
        self._record_scale("clustering", n, n)
        out = self._d_expk * cp.asarray(v_diagonals[0])[:, None]
        for v in v_diagonals[1:]:
            self._record_gemm("clustering", n, n, n)
            self._record_scale("clustering", n, n)
            out = self._d_expk @ out
            out *= cp.asarray(v)[:, None]
        return cp.asnumpy(out)

    def wrap(self, g, v):
        self._count("wrap")
        self._require_bound()
        cp, n = self._cp, self.n
        flops.record(
            "wrapping",
            2 * flops.gemm_flops(n, n, n) + 2 * flops.scale_flops(n, n),
        )
        dv = cp.asarray(v)
        t = self._d_expk @ cp.asarray(g)
        t = t @ self._d_inv_expk
        t *= dv[:, None]
        t *= (1.0 / dv)[None, :]
        return cp.asnumpy(t)

    def unwrap(self, g, v):
        self._count("unwrap")
        self._require_bound()
        cp, n = self._cp, self.n
        flops.record(
            "wrapping",
            2 * flops.gemm_flops(n, n, n) + 2 * flops.scale_flops(n, n),
        )
        dv = cp.asarray(v)
        t = cp.asarray(g) * (1.0 / dv)[:, None]
        t *= dv[None, :]
        t = self._d_inv_expk @ t
        return cp.asnumpy(t @ self._d_expk)

    def wrap_batched(self, gs, vs):
        """Both sectors in one batched cuBLAS GEMM pair."""
        self._count("wrap_batched")
        self._require_bound()
        cp = self._cp
        s, n = np.asarray(vs).shape
        flops.record(
            "wrapping",
            s * (2 * flops.gemm_flops(n, n, n) + 2 * flops.scale_flops(n, n)),
        )
        dg = cp.asarray(gs)
        dv = cp.asarray(vs)
        t = cp.matmul(self._d_expk[None], dg)
        t = cp.matmul(t, self._d_inv_expk[None])
        t *= dv[:, :, None]
        t *= (1.0 / dv)[:, None, :]
        return cp.asnumpy(t)
