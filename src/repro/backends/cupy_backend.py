"""Optional real-GPU backend over cupy (activates only when importable).

This is the seam the simulated-GPU work has been pointing at: the same
canonical kernel orders as every other backend, executed by cuBLAS and
cupy elementwise kernels on an actual device. The module imports
lazily — constructing :class:`CupyBackend` on a machine without cupy
raises :class:`~repro.backends.base.BackendUnavailableError`, and the
registry reports it as unavailable rather than failing at import time
(the project installs no GPU dependencies itself).

Interface contract: host ndarrays in, host ndarrays out — each op pays
its own H2D/D2H transfers, like the paper's Algorithm 4/6 listings. A
production port would keep G device-resident across wraps; that
optimization belongs in a follow-up backend, not in the protocol.

Numerical note: cuBLAS GEMM is *not* bitwise-identical to host BLAS
(different blocking/FMA contraction), so this backend is excluded from
the bit-identity equivalence class and tested to tolerances instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg import flops
from .base import BackendUnavailableError
from .numpy_backend import NumpyBackend

__all__ = ["CupyBackend", "cupy_available"]


def cupy_available() -> bool:
    """True when cupy imports and reports at least one device."""
    try:
        import cupy  # noqa: F401
    except Exception:  # pragma: no cover - environment-dependent
        return False
    try:
        return int(cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:  # pragma: no cover - driver present, no device
        return False


class CupyBackend(NumpyBackend):
    """Real-GPU execution of the propagator ops via cupy."""

    name = "cupy"

    def __init__(self, **options):
        super().__init__(**options)
        if not cupy_available():
            raise BackendUnavailableError(
                "backend 'cupy' needs an importable cupy with a CUDA "
                "device; install cupy or pick numpy/threaded/gpu-sim"
            )
        import cupy

        self._cp = cupy
        self._d_expk = None
        self._d_inv_expk = None
        self._d_blocks = None

    def bind(self, factory) -> "CupyBackend":
        super().bind(factory)
        self._d_expk = self._cp.asarray(self.expk)
        self._d_inv_expk = self._cp.asarray(self.inv_expk)
        # Checkerboard direction blocks are tiny (lx^2 + ly^2 elements);
        # resident uploads like the exponentials.
        self._d_blocks = None
        if self.structured is not None:
            host_blocks = self.structured.blocks(self.policy.compute_dtype)
            self._d_blocks = tuple(self._cp.asarray(b) for b in host_blocks)
        return self

    # -- device-side structured application --------------------------------

    def _structured_dev(self, a, side: str = "left", inverse: bool = False):
        """Blocked checkerboard apply on a device array (same spelling as
        :meth:`CheckerboardPropagator.apply_expk_left/right`)."""
        cp = self._cp
        cb = self.structured
        bx, by, bx_inv, by_inv = self._d_blocks
        lx, ly = cb.lattice.lx, cb.lattice.ly
        n = cb.n_sites
        a = cp.ascontiguousarray(a)
        if side == "left":
            lead = a.shape[:-2]
            ncols = a.shape[-1]
            if not inverse:
                t = cp.matmul(bx, a.reshape(lead + (ly, lx, ncols)))
                t = cp.matmul(by, t.reshape(lead + (ly, lx * ncols)))
            else:
                t = cp.matmul(by_inv, a.reshape(lead + (ly, lx * ncols)))
                t = cp.matmul(bx_inv, t.reshape(lead + (ly, lx, ncols)))
            out = t.reshape(lead + (n, ncols))
        else:
            lead = a.shape[:-1]
            nrows = lead[-1]
            batch = lead[:-1]
            if not inverse:
                t = cp.matmul(by.T, a.reshape(lead + (ly, lx)))
                t = cp.matmul(t.reshape(batch + (nrows * ly, lx)), bx)
            else:
                t = cp.matmul(a.reshape(batch + (nrows * ly, lx)), bx_inv)
                t = cp.matmul(by_inv.T, t.reshape(lead + (ly, lx)))
            out = t.reshape(lead + (n,))
        if cb.mu != 0.0:
            factor = np.exp((-cb.dtau if inverse else cb.dtau) * cb.mu)
            out *= out.dtype.type(factor)
        return out

    def apply_structured(self, a, side="left", inverse=False, category="structured"):
        """Host-in / host-out checkerboard application on the device."""
        self._count("apply_structured")
        self._require_bound()
        if self.structured is None:
            from .base import BackendError

            raise BackendError(
                "backend 'cupy': no structured kinetic operator is bound "
                "— the factory was built with kinetic='exact'"
            )
        cp = self._cp
        a = self.policy.compute(a)
        width = a.shape[-1] if side == "left" else a.shape[-2]
        flops.record(category, self.structured.apply_flops(width))
        return cp.asnumpy(self._structured_dev(cp.asarray(a), side, inverse))

    # -- ops (host in / host out) ------------------------------------------

    def gemm(self, a, b, category: str = "gemm"):
        self._count("gemm")
        cp = self._cp
        m, k = a.shape[0], a.shape[1]
        n = b.shape[1] if b.ndim == 2 else 1
        self._record_gemm(category, m, n, k)
        return cp.asnumpy(cp.asarray(a) @ cp.asarray(b))

    def cluster_product(self, v_diagonals: Sequence[np.ndarray]):
        self._count("cluster_product")
        self._require_bound()
        if len(v_diagonals) == 0:
            raise ValueError("empty cluster")
        cp, n = self._cp, self.n
        self._record_scale("clustering", n, n)
        out = self._d_expk * cp.asarray(v_diagonals[0])[:, None]
        for v in v_diagonals[1:]:
            self._record_scale("clustering", n, n)
            if self.structured is not None:
                flops.record("clustering", self.structured.apply_flops(n))
                out = self._structured_dev(out)
            else:
                self._record_gemm("clustering", n, n, n)
                out = self._d_expk @ out
            out *= cp.asarray(v)[:, None]
        return cp.asnumpy(out)

    def wrap(self, g, v):
        self._count("wrap")
        self._require_bound()
        cp, n = self._cp, self.n
        flops.record("wrapping", 2 * flops.scale_flops(n, n))
        dv = cp.asarray(v)
        if self.structured is not None:
            flops.record("wrapping", 2 * self.structured.apply_flops(n))
            t = self._structured_dev(cp.asarray(g))
            t = self._structured_dev(t, side="right", inverse=True)
        else:
            flops.record("wrapping", 2 * flops.gemm_flops(n, n, n))
            t = self._d_expk @ cp.asarray(g)
            t = t @ self._d_inv_expk
        t *= dv[:, None]
        t *= (1.0 / dv)[None, :]
        return cp.asnumpy(t)

    def unwrap(self, g, v):
        self._count("unwrap")
        self._require_bound()
        cp, n = self._cp, self.n
        flops.record("wrapping", 2 * flops.scale_flops(n, n))
        dv = cp.asarray(v)
        t = cp.asarray(g) * (1.0 / dv)[:, None]
        t *= dv[None, :]
        if self.structured is not None:
            flops.record("wrapping", 2 * self.structured.apply_flops(n))
            t = self._structured_dev(t, inverse=True)
            return cp.asnumpy(self._structured_dev(t, side="right"))
        flops.record("wrapping", 2 * flops.gemm_flops(n, n, n))
        t = self._d_inv_expk @ t
        return cp.asnumpy(t @ self._d_expk)

    def wrap_batched(self, gs, vs):
        """Both sectors in one batched cuBLAS GEMM pair."""
        self._count("wrap_batched")
        self._require_bound()
        cp = self._cp
        s, n = np.asarray(vs).shape
        flops.record("wrapping", 2 * s * flops.scale_flops(n, n))
        dg = cp.asarray(gs)
        dv = cp.asarray(vs)
        if self.structured is not None:
            flops.record("wrapping", 2 * s * self.structured.apply_flops(n))
            t = self._structured_dev(dg)
            t = self._structured_dev(t, side="right", inverse=True)
        else:
            flops.record("wrapping", 2 * s * flops.gemm_flops(n, n, n))
            t = cp.matmul(self._d_expk[None], dg)
            t = cp.matmul(t, self._d_inv_expk[None])
        t *= dv[:, :, None]
        t *= (1.0 / dv)[:, None, :]
        return cp.asnumpy(t)
