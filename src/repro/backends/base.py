"""The execution-backend protocol for the Green's-function pipeline.

The paper's central engineering claim (Secs. IV-VI) is that one DQMC
pipeline — clustering, stratification, wrapping, delayed updates — runs
on serial CPUs, multicore CPUs, and GPUs with only the *kernel
implementations* swapped: Algorithms 4-7 are the GPU spellings of the
same row/column scalings, cluster products, and wraps that BLAS spells
on the host. This module captures that seam as an explicit protocol:

:class:`PropagatorBackend`
    The fine-grain operation set a backend must provide — GEMM,
    row/column/two-sided diagonal scaling, column norms + the pre-pivot
    permutation, dense cluster products, and the wrap/unwrap similarity
    transforms — plus *batched* variants that take both spin sectors
    stacked along a leading axis so a backend can turn the per-spin loop
    into one stacked-GEMM call.

:class:`BaseBackend`
    Shared machinery: per-op dispatch counters (exported to telemetry as
    ``backend.dispatch.*`` gauges), loud rejection of unknown
    constructor options, and default batched implementations that loop
    the single-matrix ops (correct for every backend; overridden where a
    genuinely stacked execution exists).

Canonical kernel orders
-----------------------
Every backend must implement the same *floating-point evaluation order*
for each op, chosen to match the paper's GPU algorithms (the orders the
simulated device already executes). Elementwise scalings and per-slice
GEMMs are then bit-identical across numpy / threaded / simulated-GPU
execution, which is what lets the equivalence suite assert bit-identical
Markov chains rather than tolerance bands:

* ``wrap``:    ``t = expK @ g``; ``t = t @ invexpK``; ``t *= v[:, None]``;
  ``t *= (1/v)[None, :]``  (Algorithm 6/7 — scale *after* both GEMMs).
* ``unwrap``:  exact inverse composition — ``t = g * (1/v)[:, None]``;
  ``t *= v[None, :]``; ``t = invexpK @ t``; ``t = t @ expK``.
* ``cluster_product``: ``out = expK * v_0[:, None]``; then per slice
  ``out = expK @ out``; ``out *= v_j[:, None]``  (Algorithm 4/5).

Reciprocals are always formed once on the host (``1/v``) and *multiplied*
in — never re-divided — so an unwrap undoes a wrap with the exact same
rounding on every backend.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..linalg import flops
from ..precision import PrecisionPolicy, resolve_policy

__all__ = ["BackendError", "BackendUnavailableError", "PropagatorBackend", "BaseBackend"]


class BackendError(ValueError):
    """Unknown backend name, invalid option, or invalid combination."""


class BackendUnavailableError(BackendError):
    """The backend's runtime dependency (e.g. cupy) is not importable."""


class PropagatorBackend:
    """Protocol stub documenting the backend operation set.

    Concrete backends subclass :class:`BaseBackend` (which provides the
    dispatch counters and batched defaults); this class exists so the
    operation contract is importable and testable on its own.
    """

    #: registry name ("numpy", "threaded", "gpu-sim", "cupy")
    name: str = "abstract"
    #: stratification methods this backend may drive (all of them for
    #: every shipped backend — the QR chain itself runs on the host, as
    #: in the paper's hybrid division of labour).
    supported_methods: tuple = ("qrp", "prepivot", "nopivot", "svd", "jacobi")

    def bind(self, factory) -> "PropagatorBackend":
        raise NotImplementedError

    def gemm(self, a, b, category="gemm"):
        raise NotImplementedError

    def scale_rows(self, a, v, out=None, category="scaling"):
        raise NotImplementedError

    def scale_columns(self, a, v, out=None, category="scaling"):
        raise NotImplementedError

    def scale_two_sided(self, a, v, col_v=None, out=None, category="scaling"):
        raise NotImplementedError

    def column_norms(self, a):
        raise NotImplementedError

    def prepivot_permutation(self, a):
        raise NotImplementedError

    def cluster_product(self, v_diagonals):
        raise NotImplementedError

    def cluster_product_batched(self, v_stack):
        raise NotImplementedError

    def apply_structured(self, a, side="left", inverse=False, category="structured"):
        raise NotImplementedError

    def apply_structured_batched(
        self, stack, side="left", inverse=False, category="structured"
    ):
        raise NotImplementedError

    def wrap(self, g, v):
        raise NotImplementedError

    def unwrap(self, g, v):
        raise NotImplementedError

    def wrap_batched(self, gs, vs):
        raise NotImplementedError

    def unwrap_batched(self, gs, vs):
        raise NotImplementedError


class BaseBackend(PropagatorBackend):
    """Dispatch counting, option validation, and batched-op defaults."""

    def __init__(self, **options):
        # Precision is a protocol-level option: every backend carries a
        # PrecisionPolicy, and bind() realizes the exponentials in its
        # compute dtype. Popped here so subclasses never have to.
        precision = options.pop("precision", None)
        if options:
            bad = ", ".join(sorted(options))
            raise BackendError(
                f"backend {self.name!r} got unknown option(s): {bad} — "
                "options that would be silently ignored are rejected"
            )
        self.policy: PrecisionPolicy = resolve_policy(precision)
        self.op_counts: Dict[str, int] = {}
        self.expk: Optional[np.ndarray] = None
        self.inv_expk: Optional[np.ndarray] = None
        self.bound_factory = None
        #: the factory's structured kinetic operator (a
        #: CheckerboardPropagator) or None under the exact mode; set at
        #: bind() time and consulted by the wrap / cluster kernels to
        #: pick the structured fast path over the dense GEMM.
        self.structured = None
        self.n: int = 0

    # -- lifecycle ---------------------------------------------------------

    def bind(self, factory) -> "BaseBackend":
        """Attach the model's kinetic exponentials (resident state).

        On the simulated GPU this is the one-time H2D upload of
        ``exp(-+dtau K)`` (paper Sec. VI-A); on host backends it pins
        references realized in the policy's compute dtype (a no-op
        passthrough under ``full64`` — the float64 masters are shared,
        not copied). Idempotent for the same factory; returns self.
        """
        exponentials = getattr(factory, "exponentials", None)
        if exponentials is not None:
            # Factory-side cache: repeated binds (and promotions back to
            # a previously used policy) reuse one realized pair.
            self.expk, self.inv_expk = exponentials(self.policy.compute_dtype)
        else:
            self.expk = self.policy.compute(factory.expk)
            self.inv_expk = self.policy.compute(factory.inv_expk)
        self.structured = getattr(factory, "structured", None)
        self.bound_factory = factory
        self.n = self.expk.shape[0]
        return self

    def set_policy(self, policy) -> "BaseBackend":
        """Switch the precision policy in place (watchdog promotion path).

        Re-binds the exponentials in the new compute dtype when already
        bound; the caller owns invalidating any state it derived under
        the old policy (cluster caches, the live Green's function).
        """
        policy = resolve_policy(policy)
        if policy is not self.policy:
            self.policy = policy
            if self.bound_factory is not None:
                self.bind(self.bound_factory)
        return self

    def _require_bound(self) -> None:
        if self.expk is None:
            raise BackendError(
                f"backend {self.name!r} is not bound to a model: call "
                "bind(factory) before propagator ops"
            )

    def _count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def stats(self) -> Dict[str, float]:
        """Per-op dispatch totals, telemetry-gauge shaped."""
        out = {
            f"backend.dispatch.{op}": float(c)
            for op, c in sorted(self.op_counts.items())
        }
        out[f"backend.active.{self.name}"] = 1.0
        return out

    # -- structured kinetic application ------------------------------------

    def apply_structured(self, a, side="left", inverse=False, category="structured"):
        """Apply the bound structured kinetic operator to ``a``.

        ``side="left"`` is ``B_cb @ a``; ``side="right"`` is ``a @ B_cb``;
        ``inverse=True`` applies the exact reversed-rotation inverse. The
        operand is realized in the policy compute dtype and the flops are
        charged to ``category`` — O(N (lx + ly)) per column instead of the
        dense GEMM's O(N^2), which is the whole point of the fast path.
        Raises :class:`BackendError` when the bound factory has no
        structured operator (exact kinetic mode).
        """
        self._count("apply_structured")
        self._require_bound()
        if self.structured is None:
            raise BackendError(
                f"backend {self.name!r}: no structured kinetic operator is "
                "bound — the factory was built with kinetic='exact'"
            )
        if side not in ("left", "right"):
            raise BackendError(f"apply_structured side must be left/right, got {side!r}")
        a = self.policy.compute(a)
        width = a.shape[-1] if side == "left" else a.shape[-2]
        batch = 1
        for extent in a.shape[: a.ndim - 2]:
            batch *= extent
        flops.record(category, batch * self.structured.apply_flops(width))
        if side == "left":
            return self.structured.apply_expk_left(a, inverse=inverse)
        return self.structured.apply_expk_right(a, inverse=inverse)

    def apply_structured_batched(
        self, stack, side="left", inverse=False, category="structured"
    ):
        """Stacked :meth:`apply_structured` over a leading sector axis.

        The blocked kernels broadcast over leading axes, so the default
        is genuinely stacked (one pair of batched GEMMs for all sectors),
        not a loop.
        """
        self._count("apply_structured_batched")
        return self.apply_structured(
            stack, side=side, inverse=inverse, category=category
        )

    # -- batched defaults (loop the single-matrix ops) ---------------------

    def wrap_batched(self, gs, vs):
        """Wrap a stack: ``gs[i] -> wrap(gs[i], vs[i])`` for each sector.

        The default loops :meth:`wrap`; backends with a genuinely stacked
        execution (numpy's stacked GEMM, a batched cuBLAS) override it.
        Looped and stacked paths are bit-identical by the canonical-order
        contract, which the equivalence suite asserts at 0 ULP.
        """
        self._count("wrap_batched")
        return np.stack([self.wrap(g, v) for g, v in zip(gs, vs)])

    def unwrap_batched(self, gs, vs):
        self._count("unwrap_batched")
        return np.stack([self.unwrap(g, v) for g, v in zip(gs, vs)])

    def cluster_product_batched(self, v_stack):
        """Dense cluster products for a stack of spin sectors.

        ``v_stack`` has shape ``(s, k, n)``: ``s`` sectors, ``k`` slices
        per cluster, ``n`` sites. Returns shape ``(s, n, n)``.
        """
        self._count("cluster_product_batched")
        return np.stack([self.cluster_product(list(vs)) for vs in v_stack])

    # -- flop-ledger helpers ----------------------------------------------

    @staticmethod
    def _record_gemm(category: str, m: int, n: int, k: int) -> None:
        flops.record(category, flops.gemm_flops(m, n, k))

    @staticmethod
    def _record_scale(category: str, m: int, n: int, passes: int = 1) -> None:
        flops.record(category, passes * flops.scale_flops(m, n))
