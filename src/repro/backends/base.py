"""The execution-backend protocol for the Green's-function pipeline.

The paper's central engineering claim (Secs. IV-VI) is that one DQMC
pipeline — clustering, stratification, wrapping, delayed updates — runs
on serial CPUs, multicore CPUs, and GPUs with only the *kernel
implementations* swapped: Algorithms 4-7 are the GPU spellings of the
same row/column scalings, cluster products, and wraps that BLAS spells
on the host. This module captures that seam as an explicit protocol:

:class:`PropagatorBackend`
    The fine-grain operation set a backend must provide — GEMM,
    row/column/two-sided diagonal scaling, column norms + the pre-pivot
    permutation, dense cluster products, and the wrap/unwrap similarity
    transforms — plus *batched* variants that take both spin sectors
    stacked along a leading axis so a backend can turn the per-spin loop
    into one stacked-GEMM call.

:class:`BaseBackend`
    Shared machinery: per-op dispatch counters (exported to telemetry as
    ``backend.dispatch.*`` gauges), loud rejection of unknown
    constructor options, and default batched implementations that loop
    the single-matrix ops (correct for every backend; overridden where a
    genuinely stacked execution exists).

Canonical kernel orders
-----------------------
Every backend must implement the same *floating-point evaluation order*
for each op, chosen to match the paper's GPU algorithms (the orders the
simulated device already executes). Elementwise scalings and per-slice
GEMMs are then bit-identical across numpy / threaded / simulated-GPU
execution, which is what lets the equivalence suite assert bit-identical
Markov chains rather than tolerance bands:

* ``wrap``:    ``t = expK @ g``; ``t = t @ invexpK``; ``t *= v[:, None]``;
  ``t *= (1/v)[None, :]``  (Algorithm 6/7 — scale *after* both GEMMs).
* ``unwrap``:  exact inverse composition — ``t = g * (1/v)[:, None]``;
  ``t *= v[None, :]``; ``t = invexpK @ t``; ``t = t @ expK``.
* ``cluster_product``: ``out = expK * v_0[:, None]``; then per slice
  ``out = expK @ out``; ``out *= v_j[:, None]``  (Algorithm 4/5).

Reciprocals are always formed once on the host (``1/v``) and *multiplied*
in — never re-divided — so an unwrap undoes a wrap with the exact same
rounding on every backend.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..linalg import flops

__all__ = ["BackendError", "BackendUnavailableError", "PropagatorBackend", "BaseBackend"]


class BackendError(ValueError):
    """Unknown backend name, invalid option, or invalid combination."""


class BackendUnavailableError(BackendError):
    """The backend's runtime dependency (e.g. cupy) is not importable."""


class PropagatorBackend:
    """Protocol stub documenting the backend operation set.

    Concrete backends subclass :class:`BaseBackend` (which provides the
    dispatch counters and batched defaults); this class exists so the
    operation contract is importable and testable on its own.
    """

    #: registry name ("numpy", "threaded", "gpu-sim", "cupy")
    name: str = "abstract"
    #: stratification methods this backend may drive (all of them for
    #: every shipped backend — the QR chain itself runs on the host, as
    #: in the paper's hybrid division of labour).
    supported_methods: tuple = ("qrp", "prepivot", "nopivot", "svd", "jacobi")

    def bind(self, factory) -> "PropagatorBackend":
        raise NotImplementedError

    def gemm(self, a, b, category="gemm"):
        raise NotImplementedError

    def scale_rows(self, a, v, out=None, category="scaling"):
        raise NotImplementedError

    def scale_columns(self, a, v, out=None, category="scaling"):
        raise NotImplementedError

    def scale_two_sided(self, a, v, col_v=None, out=None, category="scaling"):
        raise NotImplementedError

    def column_norms(self, a):
        raise NotImplementedError

    def prepivot_permutation(self, a):
        raise NotImplementedError

    def cluster_product(self, v_diagonals):
        raise NotImplementedError

    def cluster_product_batched(self, v_stack):
        raise NotImplementedError

    def wrap(self, g, v):
        raise NotImplementedError

    def unwrap(self, g, v):
        raise NotImplementedError

    def wrap_batched(self, gs, vs):
        raise NotImplementedError

    def unwrap_batched(self, gs, vs):
        raise NotImplementedError


class BaseBackend(PropagatorBackend):
    """Dispatch counting, option validation, and batched-op defaults."""

    def __init__(self, **options):
        if options:
            bad = ", ".join(sorted(options))
            raise BackendError(
                f"backend {self.name!r} got unknown option(s): {bad} — "
                "options that would be silently ignored are rejected"
            )
        self.op_counts: Dict[str, int] = {}
        self.expk: Optional[np.ndarray] = None
        self.inv_expk: Optional[np.ndarray] = None
        self.n: int = 0

    # -- lifecycle ---------------------------------------------------------

    def bind(self, factory) -> "BaseBackend":
        """Attach the model's kinetic exponentials (resident state).

        On the simulated GPU this is the one-time H2D upload of
        ``exp(-+dtau K)`` (paper Sec. VI-A); on host backends it just
        pins references. Idempotent for the same factory; returns self.
        """
        self.expk = factory.expk
        self.inv_expk = factory.inv_expk
        self.n = self.expk.shape[0]
        return self

    def _require_bound(self) -> None:
        if self.expk is None:
            raise BackendError(
                f"backend {self.name!r} is not bound to a model: call "
                "bind(factory) before propagator ops"
            )

    def _count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def stats(self) -> Dict[str, float]:
        """Per-op dispatch totals, telemetry-gauge shaped."""
        out = {
            f"backend.dispatch.{op}": float(c)
            for op, c in sorted(self.op_counts.items())
        }
        out[f"backend.active.{self.name}"] = 1.0
        return out

    # -- batched defaults (loop the single-matrix ops) ---------------------

    def wrap_batched(self, gs, vs):
        """Wrap a stack: ``gs[i] -> wrap(gs[i], vs[i])`` for each sector.

        The default loops :meth:`wrap`; backends with a genuinely stacked
        execution (numpy's stacked GEMM, a batched cuBLAS) override it.
        Looped and stacked paths are bit-identical by the canonical-order
        contract, which the equivalence suite asserts at 0 ULP.
        """
        self._count("wrap_batched")
        return np.stack([self.wrap(g, v) for g, v in zip(gs, vs)])

    def unwrap_batched(self, gs, vs):
        self._count("unwrap_batched")
        return np.stack([self.unwrap(g, v) for g, v in zip(gs, vs)])

    def cluster_product_batched(self, v_stack):
        """Dense cluster products for a stack of spin sectors.

        ``v_stack`` has shape ``(s, k, n)``: ``s`` sectors, ``k`` slices
        per cluster, ``n`` sites. Returns shape ``(s, n, n)``.
        """
        self._count("cluster_product_batched")
        return np.stack([self.cluster_product(list(vs)) for vs in v_stack])

    # -- flop-ledger helpers ----------------------------------------------

    @staticmethod
    def _record_gemm(category: str, m: int, n: int, k: int) -> None:
        flops.record(category, flops.gemm_flops(m, n, k))

    @staticmethod
    def _record_scale(category: str, m: int, n: int, passes: int = 1) -> None:
        flops.record(category, passes * flops.scale_flops(m, n))
