"""Simulated-GPU backend (paper Sec. VI's hybrid division of labour).

Routes the GEMM-dominated, pivot-free operations — cluster-product
rebuilds (Algorithm 4/5) and the wrap/unwrap transforms (Algorithm 6/7)
— through :class:`~repro.gpu.ops.GPUPropagatorOps` on a
:class:`~repro.gpu.device.SimulatedDevice`, while the stratification
chain's QR work and everything else inherits the host (numpy) paths,
exactly as the paper's preliminary hybrid defers them to the CPU.

The device executes numerically with the same numpy kernels in the same
canonical order as the host backends, so physics is bit-identical; only
the *timing* story differs (virtual device clock, launch and transfer
counters). ``repro.gpu`` imports are deferred to construction so merely
importing the backends package never pulls in the simulator stack.
"""

from __future__ import annotations

from .numpy_backend import NumpyBackend

__all__ = ["SimulatedGPUBackend"]


class SimulatedGPUBackend(NumpyBackend):
    """GPU-offloaded cluster products and wraps over a simulated device.

    Parameters
    ----------
    device:
        An existing :class:`~repro.gpu.device.SimulatedDevice` to share;
        a fresh one is created from ``model`` when omitted.
    model:
        Performance model for a fresh device (default Tesla C2050).
    fused:
        Use the fused custom kernels (Algorithms 5/7) instead of the
        launch-per-row CUBLAS listings (Algorithms 4/6).
    """

    name = "gpu-sim"

    def __init__(self, device=None, model=None, fused: bool = True, **options):
        super().__init__(**options)
        from ..gpu.device import SimulatedDevice
        from ..gpu.perfmodel import TESLA_C2050

        self._model = model if model is not None else TESLA_C2050
        self.device = device if device is not None else SimulatedDevice(self._model)
        self.fused = fused
        self.ops = None

    def bind(self, factory) -> "SimulatedGPUBackend":
        """Host refs + the one-time H2D upload of the exponentials."""
        from ..gpu.ops import GPUPropagatorOps

        super().bind(factory)
        # self.expk is the policy-realized exponential (compute dtype);
        # re-upload when the model shape, the dtype, or the structured
        # kinetic operator changed — a precision promotion or a kinetic
        # switch must not keep stale device state.
        if (
            self.ops is None
            or self.ops.d_expk.shape != self.expk.shape
            or self.ops.d_expk.dtype != self.expk.dtype
            or self.ops.structured is not self.structured
        ):
            self.ops = GPUPropagatorOps(
                self.device,
                self.expk,
                self.inv_expk,
                fused=self.fused,
                structured=self.structured,
            )
        return self

    def _require_ops(self):
        if self.ops is None:
            from .base import BackendError

            raise BackendError(
                "gpu-sim backend is not bound to a model: call bind(factory)"
            )
        return self.ops

    # -- offloaded pieces --------------------------------------------------

    def cluster_product(self, v_diagonals):
        self._count("cluster_product")
        return self._require_ops().cluster_product(list(v_diagonals))

    def wrap(self, g, v):
        self._count("wrap")
        return self._require_ops().wrap(g, v)

    def unwrap(self, g, v):
        self._count("unwrap")
        return self._require_ops().unwrap(g, v)

    def apply_structured(self, a, side="left", inverse=False, category="structured"):
        """Device-side checkerboard application (upload, rotate, download)."""
        self._count("apply_structured")
        ops = self._require_ops()
        if self.structured is None:
            from .base import BackendError

            raise BackendError(
                "backend 'gpu-sim': no structured kinetic operator is "
                "bound — the factory was built with kinetic='exact'"
            )
        from ..linalg import flops

        a = self.policy.compute(a)
        width = a.shape[-1] if side == "left" else a.shape[-2]
        flops.record(category, self.structured.apply_flops(width))
        return ops.apply_structured(a, side=side, inverse=inverse)

    def apply_structured_batched(
        self, stack, side="left", inverse=False, category="structured"
    ):
        """Per-sector device applications (one scratch set per device)."""
        self._count("apply_structured_batched")
        import numpy as np

        return np.stack(
            [
                self.apply_structured(a, side=side, inverse=inverse, category=category)
                for a in stack
            ]
        )

    # The batched entry points loop per sector on the device (one scratch
    # set per device; a real multi-stream port would override these).

    def wrap_batched(self, gs, vs):
        self._count("wrap_batched")
        import numpy as np

        return np.stack([self.wrap(g, v) for g, v in zip(gs, vs)])

    def unwrap_batched(self, gs, vs):
        self._count("unwrap_batched")
        import numpy as np

        return np.stack([self.unwrap(g, v) for g, v in zip(gs, vs)])

    def cluster_product_batched(self, v_stack):
        self._count("cluster_product_batched")
        import numpy as np

        return np.stack([self.cluster_product(list(vs)) for vs in v_stack])

    def stats(self):
        out = super().stats()
        out["backend.gpu.kernel_launches"] = float(self.device.kernel_launches)
        out["backend.gpu.elapsed_model_s"] = float(self.device.elapsed)
        return out
