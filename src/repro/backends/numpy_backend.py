"""The serial numpy reference backend.

Every operation is the canonical-order kernel of
:mod:`repro.backends.base` spelled with plain numpy; all other backends
are measured against this one bit-for-bit (elementwise scalings and
per-slice GEMMs) or to documented tolerances (threaded norm reductions
above the grain size).

The batched variants genuinely stack: ``np.matmul`` over a ``(s, n, n)``
stack dispatches one BLAS GEMM per slice with the same rounding as the
per-matrix call, so the stacked path is bit-identical to the loop while
making one library call for both spin sectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg import column_norms, flops, prepivot_permutation
from .base import BaseBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(BaseBackend):
    """Serial reference implementation of the propagator op set."""

    name = "numpy"

    # -- fine-grain ops ----------------------------------------------------

    def gemm(self, a, b, category: str = "gemm"):
        """Dense ``a @ b`` with the flop charged to ``category``."""
        self._count("gemm")
        m, k = a.shape[0], a.shape[1]
        n = b.shape[1] if b.ndim == 2 else 1
        self._record_gemm(category, m, n, k)
        return a @ b

    def scale_rows(self, a, v, out=None, category: str = "scaling"):
        """``diag(v) @ a``; writes into ``out`` in place when given."""
        self._count("scale_rows")
        self._record_scale(category, *a.shape)
        return np.multiply(a, v[:, None], out=out)

    def scale_columns(self, a, v, out=None, category: str = "scaling"):
        """``a @ diag(v)``; writes into ``out`` in place when given."""
        self._count("scale_columns")
        self._record_scale(category, *a.shape)
        return np.multiply(a, v[None, :], out=out)

    def scale_two_sided(self, a, v, col_v=None, out=None, category: str = "scaling"):
        """``diag(v) @ a @ diag(col_v)`` with ``col_v = 1/v`` by default.

        Writes into ``out`` in place when given. The column factor is an
        explicit argument so the unwrap can pass the *original* ``v``
        rather than re-reciprocating ``1/(1/v)`` (not bitwise ``v``).
        """
        self._count("scale_two_sided")
        col = (1.0 / v) if col_v is None else col_v
        self._record_scale(category, *a.shape, passes=2)
        res = np.multiply(a, v[:, None], out=out)
        res *= col[None, :]
        return res

    def column_norms(self, a):
        self._count("column_norms")
        return column_norms(a)

    def prepivot_permutation(self, a):
        """Descending column-norm order (paper Algorithm 3 step 3b)."""
        self._count("prepivot_permutation")
        return prepivot_permutation(a)

    # -- cluster products (Algorithm 4/5 order) ----------------------------

    def cluster_product(self, v_diagonals: Sequence[np.ndarray]):
        """Dense ``B_k ... B_1`` with ``B_j = diag(v_j) @ expK``.

        ``v_diagonals`` ordered rightmost (applied first) to leftmost.
        """
        self._count("cluster_product")
        self._require_bound()
        if len(v_diagonals) == 0:
            raise ValueError("empty cluster")
        n = self.n
        compute = self.policy.compute
        self._record_scale("clustering", n, n)
        out = self.expk * compute(v_diagonals[0])[:, None]
        for v in v_diagonals[1:]:
            if self.structured is not None:
                out = self.apply_structured(out, side="left", category="clustering")
            else:
                self._record_gemm("clustering", n, n, n)
                out = self.expk @ out
            self._record_scale("clustering", n, n)
            out *= compute(v)[:, None]
        return out

    def cluster_product_batched(self, v_stack):
        """Stacked Algorithm 4/5 over the sector axis (one call per GEMM)."""
        self._count("cluster_product_batched")
        self._require_bound()
        vs = self.policy.compute(v_stack)
        s, k, n = vs.shape
        self._record_scale("clustering", n, n, passes=s)
        out = self.expk[None] * vs[:, 0, :, None]
        for j in range(1, k):
            if self.structured is not None:
                out = self.apply_structured_batched(
                    out, side="left", category="clustering"
                )
            else:
                flops.record("clustering", s * flops.gemm_flops(n, n, n))
                out = np.matmul(self.expk[None], out)
            flops.record("clustering", s * flops.scale_flops(n, n))
            out *= vs[:, j, :, None]
        return out

    # -- wrapping (Algorithm 6/7 order) ------------------------------------

    def wrap(self, g, v):
        """``diag(v) (expK @ g @ invexpK) diag(v)^{-1}``."""
        self._count("wrap")
        self._require_bound()
        g = self.policy.compute(g)
        v = self.policy.compute(v)
        if self.structured is not None:
            t = self.apply_structured(g, side="left", category="wrapping")
            t = self.apply_structured(t, side="right", inverse=True, category="wrapping")
        else:
            t = self.gemm(self.expk, g, category="wrapping")
            t = self.gemm(t, self.inv_expk, category="wrapping")
        return self.scale_two_sided(t, v, out=t, category="wrapping")

    def unwrap(self, g, v):
        """Exact inverse composition of :meth:`wrap`."""
        self._count("unwrap")
        self._require_bound()
        g = self.policy.compute(g)
        v = self.policy.compute(v)
        vinv = 1.0 / v
        t = self.scale_two_sided(g, vinv, col_v=v, category="wrapping")
        if self.structured is not None:
            t = self.apply_structured(t, side="left", inverse=True, category="wrapping")
            return self.apply_structured(t, side="right", category="wrapping")
        t = self.gemm(self.inv_expk, t, category="wrapping")
        return self.gemm(t, self.expk, category="wrapping")

    def wrap_batched(self, gs, vs):
        """Both spin sectors through one stacked-GEMM wrap."""
        self._count("wrap_batched")
        self._require_bound()
        gs = self.policy.compute(gs)
        vs = self.policy.compute(vs)
        s, n = vs.shape
        flops.record("wrapping", 2 * s * flops.scale_flops(n, n))
        if self.structured is not None:
            t = self.apply_structured_batched(gs, side="left", category="wrapping")
            t = self.apply_structured_batched(
                t, side="right", inverse=True, category="wrapping"
            )
        else:
            flops.record("wrapping", 2 * s * flops.gemm_flops(n, n, n))
            t = np.matmul(self.expk[None], gs)
            t = np.matmul(t, self.inv_expk[None])
        t *= vs[:, :, None]
        t *= (1.0 / vs)[:, None, :]
        return t

    def unwrap_batched(self, gs, vs):
        self._count("unwrap_batched")
        self._require_bound()
        gs = self.policy.compute(gs)
        vs = self.policy.compute(vs)
        s, n = vs.shape
        flops.record("wrapping", 2 * s * flops.scale_flops(n, n))
        vinv = 1.0 / vs
        t = gs * vinv[:, :, None]
        t *= vs[:, None, :]
        if self.structured is not None:
            t = self.apply_structured_batched(
                t, side="left", inverse=True, category="wrapping"
            )
            return self.apply_structured_batched(t, side="right", category="wrapping")
        flops.record("wrapping", 2 * s * flops.gemm_flops(n, n, n))
        t = np.matmul(self.inv_expk[None], t)
        return np.matmul(t, self.expk[None])
