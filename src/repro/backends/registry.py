"""String registry of execution backends: ``get_backend("threaded")``.

One knob selects the execution layer everywhere — `Simulation`,
`SimulationConfig` input files, `repro run --backend`, the
``REPRO_BACKEND`` environment variable — and this module is where the
knob's value becomes a backend instance, with every failure mode loud:
unknown names list the registry, unknown options raise from the backend
constructor, unavailable backends (cupy without cupy) explain what is
missing, and method/backend combinations are validated at configuration
time rather than deep inside the first sweep.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Union

from .base import BackendError, BaseBackend

__all__ = [
    "register_backend",
    "get_backend",
    "available_backends",
    "known_backends",
    "default_backend_name",
    "resolve_backend",
    "validate_backend_method",
]

#: name -> backend class (imported lazily where construction is heavy).
_REGISTRY: Dict[str, Callable[..., BaseBackend]] = {}

#: guards _REGISTRY: registration is lazy, and the first get_backend()
#: can happen on several ensemble worker threads at once.
_REGISTRY_LOCK = threading.Lock()

#: environment variable consulted when no backend is requested explicitly.
ENV_VAR = "REPRO_BACKEND"


def register_backend(name: str, factory: Callable[..., BaseBackend]) -> None:
    """Add (or replace) a backend under ``name``."""
    with _REGISTRY_LOCK:
        _REGISTRY[name] = factory


def _ensure_builtin_registered() -> None:
    with _REGISTRY_LOCK:
        if _REGISTRY:
            return
        from .cupy_backend import CupyBackend
        from .gpu_sim import SimulatedGPUBackend
        from .numpy_backend import NumpyBackend
        from .threaded import ThreadedBackend

        _REGISTRY["numpy"] = NumpyBackend
        _REGISTRY["threaded"] = ThreadedBackend
        _REGISTRY["gpu-sim"] = SimulatedGPUBackend
        _REGISTRY["cupy"] = CupyBackend


def known_backends() -> List[str]:
    """Every registered name, available or not."""
    _ensure_builtin_registered()
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Registered names whose runtime dependencies are present."""
    _ensure_builtin_registered()
    out = []
    for name in sorted(_REGISTRY):
        if name == "cupy":
            from .cupy_backend import cupy_available

            if not cupy_available():
                continue
        out.append(name)
    return out


def get_backend(name: str, **options) -> BaseBackend:
    """Instantiate the backend registered under ``name``.

    Unknown names raise :class:`BackendError` listing the registry;
    option validation is the constructor's job (unknown options raise
    there, loudly, instead of being dropped).
    """
    _ensure_builtin_registered()
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[name](**options)


def default_backend_name() -> str:
    """The name used when nothing is requested: ``$REPRO_BACKEND`` or numpy."""
    return os.environ.get(ENV_VAR, "").strip() or "numpy"


def resolve_backend(
    spec: Union[None, str, BaseBackend], **options
) -> BaseBackend:
    """Turn a user-facing backend spec into an instance.

    ``None`` consults ``$REPRO_BACKEND`` (default "numpy"); a string goes
    through :func:`get_backend`; an existing instance passes through
    (options are then rejected — they could not be applied).
    """
    if isinstance(spec, BaseBackend):
        if options:
            raise BackendError(
                "cannot apply options to an already constructed backend "
                f"instance ({spec.name!r})"
            )
        return spec
    if spec is None:
        spec = default_backend_name()
    if not isinstance(spec, str):
        raise BackendError(
            f"backend must be a name or a PropagatorBackend, got {type(spec)!r}"
        )
    return get_backend(spec, **options)


def validate_backend_method(
    backend: Union[str, BaseBackend], method: str
) -> None:
    """Reject an invalid method/backend combination at configuration time.

    ``backend`` may be a name (nothing is constructed — config parsing
    must stay side-effect free) or an instance.
    """
    from ..core.stratification import METHODS

    if method not in METHODS:
        raise BackendError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
    if isinstance(backend, BaseBackend):
        name, supported = backend.name, backend.supported_methods
    else:
        _ensure_builtin_registered()
        if backend not in _REGISTRY:
            raise BackendError(
                f"unknown backend {backend!r}; registered backends: "
                f"{', '.join(sorted(_REGISTRY))}"
            )
        cls = _REGISTRY[backend]
        name = getattr(cls, "name", backend)
        supported = getattr(cls, "supported_methods", ())
    if method not in supported:
        raise BackendError(
            f"backend {name!r} does not support method {method!r}; "
            f"supported: {', '.join(supported)}"
        )


def serial_backend() -> BaseBackend:
    """A fresh serial numpy backend (the default execution layer)."""
    from .numpy_backend import NumpyBackend

    return NumpyBackend()
