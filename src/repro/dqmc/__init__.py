"""DQMC driver: Metropolis sweeps, simulation stages, input files."""

from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .config import SimulationConfig, load_config, parse_config
from .ensemble import EnsembleResult, run_ensemble
from .global_moves import GlobalMoveStats, global_site_flips
from .tuning import (
    CalibrationError,
    MuCalibration,
    SignProblemError,
    calibrate_mu,
)
from .simulation import Simulation, SimulationResult
from .sweep import SweepStats, sweep

__all__ = [
    "CalibrationError",
    "CheckpointError",
    "EnsembleResult",
    "GlobalMoveStats",
    "MuCalibration",
    "SignProblemError",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SweepStats",
    "calibrate_mu",
    "global_site_flips",
    "load_checkpoint",
    "load_config",
    "parse_config",
    "run_ensemble",
    "save_checkpoint",
    "sweep",
]
