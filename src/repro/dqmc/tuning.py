"""Production helpers: chemical-potential calibration.

Away from half filling the density is an *output* of a DQMC run, not an
input; studies at fixed doping (e.g. the cuprate phase diagram) must
first find the ``mu`` that delivers the target density. This module does
the standard bisection: density is monotone in mu (compressibility is
non-negative), so a bracketing search over short calibration runs
converges in ~log2(range/tol) runs.

Away from mu = 0 the model has a sign problem; the calibration runs use
the sign-weighted density (valid as long as <sign> stays away from 0,
which the result reports so the caller can judge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hamiltonian import HubbardModel, free_greens_function
from ..measure import total_density
from .simulation import Simulation

__all__ = ["MuCalibration", "calibrate_mu"]


@dataclass
class MuCalibration:
    """Outcome of a chemical-potential search."""

    mu: float
    density: float
    target: float
    n_runs: int
    mean_sign: float
    history: List[tuple]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mu = {self.mu:+.5f} -> rho = {self.density:.4f} "
            f"(target {self.target:.4f}, {self.n_runs} runs, "
            f"<sign> = {self.mean_sign:+.3f})"
        )


def _density_at(model: HubbardModel, mu: float, sweeps: int, seed: int):
    m = model.with_(mu=mu)
    if m.u == 0.0:
        # exact, no Monte Carlo needed
        g = free_greens_function(m.kinetic_matrix(), m.beta)
        return total_density(g, g), 1.0
    sim = Simulation(m, seed=seed, cluster_size=_cluster_for(m),
                     measure_arrays=False)
    res = sim.run(
        warmup_sweeps=max(5, sweeps // 4), measurement_sweeps=sweeps
    )
    dens = res.observables["density"].scalar
    sign = res.mean_sign
    # sign-corrected density <rho * s> / <s>
    if abs(sign) > 1e-3:
        dens = dens / sign
    return dens, sign


def _cluster_for(model: HubbardModel) -> int:
    k = 10
    while model.n_slices % k:
        k -= 1
    return k


def calibrate_mu(
    model: HubbardModel,
    target_density: float,
    mu_range: tuple = (-6.0, 6.0),
    tol: float = 0.01,
    sweeps: int = 60,
    seed: int = 0,
    max_runs: int = 24,
) -> MuCalibration:
    """Find mu with ``|rho(mu) - target| <= tol`` by bisection.

    Parameters
    ----------
    model:
        Template model; its ``mu`` field is ignored.
    target_density:
        Desired rho in (0, 2).
    mu_range:
        Bracketing interval; must actually bracket the target (checked).
    tol:
        Density tolerance.
    sweeps:
        Measurement sweeps per calibration run (short on purpose).
    max_runs:
        Hard cap on calibration runs (raises if exceeded — usually means
        tol is below the Monte Carlo noise of ``sweeps``).
    """
    if not 0.0 < target_density < 2.0:
        raise ValueError("target density must lie in (0, 2)")
    lo, hi = float(mu_range[0]), float(mu_range[1])
    if lo >= hi:
        raise ValueError("mu_range must be increasing")

    history: List[tuple] = []
    runs = 0

    def rho(mu: float):
        nonlocal runs
        runs += 1
        d, s = _density_at(model, mu, sweeps, seed + runs)
        history.append((mu, d, s))
        return d, s

    d_lo, _ = rho(lo)
    d_hi, _ = rho(hi)
    if not d_lo - tol <= target_density <= d_hi + tol:
        raise ValueError(
            f"mu_range does not bracket the target: rho({lo}) = {d_lo:.3f}, "
            f"rho({hi}) = {d_hi:.3f}, target {target_density}"
        )

    mu_mid, d_mid, s_mid = lo, d_lo, 1.0
    while runs < max_runs:
        mu_mid = 0.5 * (lo + hi)
        d_mid, s_mid = rho(mu_mid)
        if abs(d_mid - target_density) <= tol:
            return MuCalibration(
                mu=mu_mid, density=d_mid, target=target_density,
                n_runs=runs, mean_sign=s_mid, history=history,
            )
        if d_mid < target_density:
            lo = mu_mid
        else:
            hi = mu_mid
    raise RuntimeError(
        f"calibration did not converge in {max_runs} runs "
        f"(last: mu = {mu_mid:.4f}, rho = {d_mid:.4f}); "
        "raise sweeps or tol"
    )
