"""Production helpers: chemical-potential calibration.

Away from half filling the density is an *output* of a DQMC run, not an
input; studies at fixed doping (e.g. the cuprate phase diagram) must
first find the ``mu`` that delivers the target density. This module does
the standard bisection: density is monotone in mu (compressibility is
non-negative), so a bracketing search over short calibration runs
converges in ~log2(range/tol) runs.

Away from mu = 0 the model has a sign problem; the calibration runs use
the sign-weighted density <rho * s> / <s>, which is only defined while
<sign> stays away from 0. A collapsed sign is a hard error
(:class:`SignProblemError`) — the uncorrected sign-weighted density is a
*different observable*, and bisecting on it silently converges to the
wrong mu.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hamiltonian import HubbardModel, free_greens_function
from ..measure import total_density
from .simulation import Simulation

__all__ = [
    "MuCalibration",
    "CalibrationError",
    "SignProblemError",
    "calibrate_mu",
]

#: |<sign>| at or below this is treated as a collapsed sign: the
#: sign-corrected density <rho s>/<s> amplifies its Monte Carlo noise by
#: 1/<s> past any usable precision.
SIGN_FLOOR = 1e-3


@dataclass
class MuCalibration:
    """Outcome of a chemical-potential search."""

    mu: float
    density: float
    target: float
    n_runs: int
    mean_sign: float
    history: List[tuple]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mu = {self.mu:+.5f} -> rho = {self.density:.4f} "
            f"(target {self.target:.4f}, {self.n_runs} runs, "
            f"<sign> = {self.mean_sign:+.3f})"
        )


class SignProblemError(RuntimeError):
    """The average sign collapsed below :data:`SIGN_FLOOR` during a
    calibration run, so no unbiased density estimate exists there.

    Attributes
    ----------
    mu:
        The chemical potential of the offending run.
    mean_sign:
        The collapsed ``<sign>`` that triggered the error.
    history:
        ``(mu, density, sign)`` triples of every calibration run so far
        (attached by :func:`calibrate_mu`; empty when raised directly).
    """

    def __init__(self, mu: float, mean_sign: float):
        self.mu = mu
        self.mean_sign = mean_sign
        self.history: List[tuple] = []
        super().__init__(
            f"sign problem at mu = {mu:.4f}: |<sign>| = "
            f"{abs(mean_sign):.2e} <= {SIGN_FLOOR:g}; the sign-corrected "
            "density <rho s>/<s> is undefined here — shrink mu_range, "
            "raise the temperature, or increase sweeps"
        )


class CalibrationError(RuntimeError):
    """Bisection exhausted ``max_runs`` without meeting the tolerance.

    Carries everything needed to *resume* instead of restarting:

    Attributes
    ----------
    history:
        ``(mu, density, sign)`` triples of every run performed.
    bracket:
        The final ``(lo, hi)`` mu interval — pass it as ``mu_range`` to
        a follow-up :func:`calibrate_mu` call to continue the search.
    best:
        Best-so-far :class:`MuCalibration` (the run whose density landed
        closest to the target), usable directly when its miss is
        tolerable.
    """

    def __init__(
        self,
        message: str,
        history: List[tuple],
        bracket: Tuple[float, float],
        best: Optional[MuCalibration],
    ):
        self.history = history
        self.bracket = bracket
        self.best = best
        super().__init__(message)


def _density_at(model: HubbardModel, mu: float, sweeps: int, seed: int):
    m = model.with_(mu=mu)
    if m.u == 0.0:
        # exact, no Monte Carlo needed
        g = free_greens_function(m.kinetic_matrix(), m.beta)
        return total_density(g, g), 1.0
    sim = Simulation(m, seed=seed, cluster_size=_cluster_for(m),
                     measure_arrays=False)
    res = sim.run(
        warmup_sweeps=max(5, sweeps // 4), measurement_sweeps=sweeps
    )
    dens = res.observables["density"].scalar
    sign = res.mean_sign
    # sign-corrected density <rho * s> / <s>; a collapsed <s> means no
    # unbiased estimate exists — refuse loudly rather than bisect on the
    # (biased) sign-weighted density.
    if abs(sign) <= SIGN_FLOOR:
        raise SignProblemError(mu=mu, mean_sign=sign)
    return dens / sign, sign


def _cluster_for(model: HubbardModel) -> int:
    """Cluster size for a calibration run: the divisor of ``n_slices``
    nearest the conditioning-safe target.

    The old walk-down-from-10 hit k = 1 for prime slice counts —
    re-stratification every slice, an order of magnitude slower per
    calibration run. ``divisor_near`` instead picks the closest divisor
    to the safe target (preferring divisors inside the safe window, and
    the smaller choice on ties); only a prime L yields an over-budget
    k = L, which is still far cheaper than k = 1 and fine at
    calibration accuracy.
    """
    from ..autotune.params import divisor_near
    from ..linalg.condition import max_safe_cluster_size

    import numpy as np

    w = np.linalg.eigvalsh(model.kinetic_matrix())
    safe = max_safe_cluster_size(model.nu, model.dtau, float(w[-1] - w[0]))
    return divisor_near(model.n_slices, target=min(10, safe), cap=safe)


def calibrate_mu(
    model: HubbardModel,
    target_density: float,
    mu_range: tuple = (-6.0, 6.0),
    tol: float = 0.01,
    sweeps: int = 60,
    seed: int = 0,
    max_runs: int = 24,
) -> MuCalibration:
    """Find mu with ``|rho(mu) - target| <= tol`` by bisection.

    Parameters
    ----------
    model:
        Template model; its ``mu`` field is ignored.
    target_density:
        Desired rho in (0, 2).
    mu_range:
        Bracketing interval; must actually bracket the target (checked).
    tol:
        Density tolerance.
    sweeps:
        Measurement sweeps per calibration run (short on purpose).
    max_runs:
        Hard cap on calibration runs. Exceeding it raises
        :class:`CalibrationError` carrying the history, the final
        bracket and the best-so-far result, so the search can be
        *resumed* (``mu_range=exc.bracket``) instead of restarted —
        usually it means tol is below the Monte Carlo noise of
        ``sweeps``.

    Raises
    ------
    SignProblemError
        When any calibration run's ``|<sign>|`` collapses below
        :data:`SIGN_FLOOR` (history attached).
    CalibrationError
        On non-convergence within ``max_runs``.
    """
    if not 0.0 < target_density < 2.0:
        raise ValueError("target density must lie in (0, 2)")
    lo, hi = float(mu_range[0]), float(mu_range[1])
    if lo >= hi:
        raise ValueError("mu_range must be increasing")

    history: List[tuple] = []
    runs = 0

    def rho(mu: float):
        nonlocal runs
        runs += 1
        try:
            d, s = _density_at(model, mu, sweeps, seed + runs)
        except SignProblemError as exc:
            exc.history = list(history)
            raise
        history.append((mu, d, s))
        return d, s

    def best_so_far() -> Optional[MuCalibration]:
        if not history:
            return None
        mu_b, d_b, s_b = min(
            history, key=lambda h: abs(h[1] - target_density)
        )
        return MuCalibration(
            mu=mu_b, density=d_b, target=target_density,
            n_runs=runs, mean_sign=s_b, history=list(history),
        )

    d_lo, _ = rho(lo)
    d_hi, _ = rho(hi)
    if not d_lo - tol <= target_density <= d_hi + tol:
        raise ValueError(
            f"mu_range does not bracket the target: rho({lo}) = {d_lo:.3f}, "
            f"rho({hi}) = {d_hi:.3f}, target {target_density}"
        )

    mu_mid, d_mid = lo, d_lo
    while runs < max_runs:
        mu_mid = 0.5 * (lo + hi)
        d_mid, s_mid = rho(mu_mid)
        if abs(d_mid - target_density) <= tol:
            return MuCalibration(
                mu=mu_mid, density=d_mid, target=target_density,
                n_runs=runs, mean_sign=s_mid, history=history,
            )
        if d_mid < target_density:
            lo = mu_mid
        else:
            hi = mu_mid
    raise CalibrationError(
        f"calibration did not converge in {max_runs} runs "
        f"(last: mu = {mu_mid:.4f}, rho = {d_mid:.4f}, "
        f"bracket [{lo:.4f}, {hi:.4f}]); resume with mu_range=exc.bracket "
        "or raise sweeps/tol",
        history=history,
        bracket=(lo, hi),
        best=best_so_far(),
    )
