"""Ensemble parallelism: independent Markov chains across workers.

Orthogonal to the kernel-level parallelism of Sec. IV, DQMC offers an
embarrassingly parallel axis QUEST exploits in production: run several
independent simulations (different seeds), merge their measurement
streams. Monte Carlo error then falls like 1/sqrt(chains) with *zero*
communication during sampling — exactly the regime where the paper notes
distributed memory never paid off for single-chain DQMC.

Two executors, sharing the campaign scheduler's worker layer:

* ``executor="thread"`` (default): the time is spent inside BLAS, which
  releases the GIL, so the Python-level sweep bookkeeping of the chains
  interleaves across a thread pool. Zero startup cost.
* ``executor="process"``: every chain in its own spawned process — true
  isolation (a crashing chain cannot take down its siblings) and no GIL
  contention on the interpreted Metropolis loop, at interpreter-startup
  cost per chain. Chains ship back their accumulators, stats and
  telemetry registries; the physics is bit-identical to thread mode.

Chain seeds are ``np.random.SeedSequence(base_seed).spawn(n_chains)`` —
the documented way to derive mutually independent PCG64 streams (naive
``base_seed + i`` seeding gives streams with no independence guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..hamiltonian import HubbardModel
from ..measure import Accumulator, BinnedEstimate
from ..telemetry import Telemetry, ensure_telemetry
from .simulation import Simulation
from .sweep import SweepStats

__all__ = ["EnsembleResult", "run_ensemble"]


@dataclass
class EnsembleResult:
    """Merged output of an ensemble of independent chains."""

    model: HubbardModel
    observables: Dict[str, BinnedEstimate]
    per_chain: List[Dict[str, BinnedEstimate]]
    sweep_stats: SweepStats
    n_chains: int
    #: sign-corrected < O s > / < s > over the merged streams (None when
    #: the sign problem makes the ratio unquotable)
    corrected: Optional[Dict[str, BinnedEstimate]] = None
    #: cross-chain convergence per scalar observable: split-R-hat over
    #: retained series (post-hoc chains) or the moment-based R-hat from
    #: per-chain estimates (streaming chains); ~1 means the chains agree
    rhat: Optional[Dict[str, float]] = None
    #: per-chain RunController digests when error-targeted stopping ran
    controls: Optional[List[dict]] = None

    def chain_spread(self, name: str) -> float:
        """Std-dev of a scalar observable's mean across chains.

        An independent error estimate: should be ~ sqrt(chains) times
        the merged error bar if the binning analysis is honest.
        """
        vals = [float(r[name].mean) for r in self.per_chain]
        return float(np.std(vals, ddof=1)) if len(vals) > 1 else np.inf


def _chain_task(payload: dict) -> dict:
    """Run one chain; returns a picklable payload (crosses the process
    boundary under ``executor="process"``, so no ``Simulation`` inside).
    """
    sim = Simulation(
        payload["model"],
        seed=np.random.SeedSequence(
            entropy=payload["base_seed"], spawn_key=(payload["chain"],)
        ),
        telemetry=payload["telemetry"],
        **payload["kwargs"],
    )
    controller_kwargs = payload.get("controller")
    if controller_kwargs is not None:
        from ..stats import RunController

        sim.attach_controller(RunController(**controller_kwargs))
    sim.warmup(payload["warmup"])
    if sim.controller is not None:
        _, sweeps_done, _ = sim.measure_until(payload["sweeps"])
    else:
        sim.measure_sweeps(payload["sweeps"])
        sweeps_done = payload["sweeps"]
    tel = payload["telemetry"]
    if tel is not None:
        tel.snapshot()  # poll profiler/cache sources
    return {
        "accumulator": sim.collector.accumulator,
        "stats": sim.total_stats,
        "sign": sim._sign,
        "registry": tel.registry if tel is not None else None,
        "sweeps": sweeps_done,
        "control": (
            sim.controller.summary() if sim.controller is not None else None
        ),
    }


def run_ensemble(
    model: HubbardModel,
    n_chains: int = 4,
    warmup_sweeps: int = 50,
    measurement_sweeps: int = 200,
    base_seed: int = 0,
    max_workers: Optional[int] = None,
    n_bins: int = 16,
    telemetry: Optional[Telemetry] = None,
    executor: str = "thread",
    target_error: Optional[float] = None,
    target_observable: str = "density",
    **simulation_kwargs,
) -> EnsembleResult:
    """Run ``n_chains`` independent simulations concurrently and merge.

    Chain ``c`` is seeded with ``SeedSequence(base_seed).spawn(...)[c]``
    (independent PCG64 streams by construction). Extra keyword arguments
    are forwarded to :class:`Simulation` (method, cluster_size,
    ``backend="threaded"``, ...), so every chain runs the same
    execution backend. ``executor`` picks the worker layer: ``"thread"``
    (default, backward compatible) or ``"process"`` for spawned-process
    isolation via :func:`repro.campaign.run_tasks`.

    When ``telemetry`` is given, each chain records into a private
    in-memory registry (workers never share a JSONL writer); on
    completion the chain registries are merged into ``telemetry``'s and
    one ``chain_done`` event per chain plus a final ``ensemble_done``
    event are archived.

    The merged estimate concatenates the chains' sample streams; since
    chains are mutually independent, binning across the concatenation is
    conservative (bin boundaries never straddle two chains because each
    chain contributes a whole number of bins when ``measurement_sweeps``
    is a multiple of the bin size — and is still a valid estimate
    otherwise).

    ``target_error`` switches every chain to error-targeted stopping: a
    per-chain :class:`repro.stats.RunController` aims the sign-corrected
    relative error of ``target_observable`` at the target and each chain
    stops as soon as it gets there (``measurement_sweeps`` becomes the
    per-chain *budget*). The result then carries per-chain control
    digests plus cross-chain ``rhat`` convergence diagnostics.
    """
    if n_chains < 1:
        raise ValueError("need at least one chain")
    tel = ensure_telemetry(telemetry)
    controller_kwargs = (
        {
            "target_observable": target_observable,
            "target_error": float(target_error),
        }
        if target_error is not None
        else None
    )
    payloads = [
        {
            "model": model,
            "chain": c,
            "base_seed": base_seed,
            "warmup": warmup_sweeps,
            "sweeps": measurement_sweeps,
            "kwargs": simulation_kwargs,
            "controller": controller_kwargs,
            "telemetry": (
                Telemetry(writer=None, snapshot_every=0)
                if tel.enabled
                else None
            ),
        }
        for c in range(n_chains)
    ]
    # The campaign scheduler's worker layer (lazy import: campaign's
    # worker module imports dqmc, so a top-level import would cycle).
    from ..campaign.scheduler import run_tasks

    chains = run_tasks(
        _chain_task,
        payloads,
        executor=executor,
        max_workers=max_workers if max_workers is not None else n_chains,
    )

    streaming = bool(
        getattr(chains[0]["accumulator"], "streaming", False)
    )
    if streaming:
        from ..stats import StreamingAccumulator

        merged = StreamingAccumulator()
    else:
        merged = Accumulator()
    stats = SweepStats()
    per_chain = []
    for c, chain in enumerate(chains):
        merged.extend(chain["accumulator"])
        stats.merge(chain["stats"])
        per_chain.append(chain["accumulator"].reduce(n_bins=n_bins))
        if tel.enabled:
            if chain["registry"] is not None:
                tel.registry.merge(chain["registry"])
            tel.event(
                "chain_done",
                chain=c,
                base_seed=base_seed,
                spawn_key=[c],
                proposed=chain["stats"].proposed,
                accepted=chain["stats"].accepted,
                sign=chain["sign"],
            )
    if tel.enabled:
        tel.event("ensemble_done", chains=n_chains, executor=executor)
        tel.snapshot()

    from ..stats import (
        rhat_from_estimates,
        sign_corrected_results,
        split_rhat,
    )

    try:
        corrected = sign_corrected_results(
            merged, n_bins=n_bins * min(n_chains, 4)
        )
    except ValueError:
        corrected = None  # hard sign problem: no quotable ratio

    rhat: Dict[str, float] = {}
    scalar_names = [
        name
        for name, est in per_chain[0].items()
        if np.asarray(est.mean).ndim == 0
    ]
    for name in scalar_names:
        if not all(name in r for r in per_chain):
            continue
        if streaming:
            rhat[name] = rhat_from_estimates([r[name] for r in per_chain])
        else:
            rhat[name] = split_rhat(
                [chain["accumulator"].series(name) for chain in chains]
            )

    controls = [chain.get("control") for chain in chains]
    return EnsembleResult(
        model=model,
        observables=merged.reduce(n_bins=n_bins * min(n_chains, 4)),
        per_chain=per_chain,
        sweep_stats=stats,
        n_chains=n_chains,
        corrected=corrected,
        rhat=rhat if n_chains > 1 else None,
        controls=controls if any(c is not None for c in controls) else None,
    )
