"""Ensemble parallelism: independent Markov chains across threads.

Orthogonal to the kernel-level parallelism of Sec. IV, DQMC offers an
embarrassingly parallel axis QUEST exploits in production: run several
independent simulations (different seeds), merge their measurement
streams. Monte Carlo error then falls like 1/sqrt(chains) with *zero*
communication during sampling — exactly the regime where the paper notes
distributed memory never paid off for single-chain DQMC.

Threads (not processes) suffice here because the time is spent inside
BLAS, which releases the GIL; the Python-level sweep bookkeeping of the
chains interleaves.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..hamiltonian import HubbardModel
from ..measure import Accumulator, BinnedEstimate
from ..telemetry import Telemetry, ensure_telemetry
from .simulation import Simulation
from .sweep import SweepStats

__all__ = ["EnsembleResult", "run_ensemble"]


@dataclass
class EnsembleResult:
    """Merged output of an ensemble of independent chains."""

    model: HubbardModel
    observables: Dict[str, BinnedEstimate]
    per_chain: List[Dict[str, BinnedEstimate]]
    sweep_stats: SweepStats
    n_chains: int

    def chain_spread(self, name: str) -> float:
        """Std-dev of a scalar observable's mean across chains.

        An independent error estimate: should be ~ sqrt(chains) times
        the merged error bar if the binning analysis is honest.
        """
        vals = [float(r[name].mean) for r in self.per_chain]
        return float(np.std(vals, ddof=1)) if len(vals) > 1 else np.inf


def _run_chain(
    model: HubbardModel,
    seed: int,
    warmup: int,
    sweeps: int,
    kwargs: dict,
    telemetry: Optional[Telemetry] = None,
) -> Simulation:
    sim = Simulation(model, seed=seed, telemetry=telemetry, **kwargs)
    sim.warmup(warmup)
    sim.measure_sweeps(sweeps)
    return sim


def run_ensemble(
    model: HubbardModel,
    n_chains: int = 4,
    warmup_sweeps: int = 50,
    measurement_sweeps: int = 200,
    base_seed: int = 0,
    max_workers: Optional[int] = None,
    n_bins: int = 16,
    telemetry: Optional[Telemetry] = None,
    **simulation_kwargs,
) -> EnsembleResult:
    """Run ``n_chains`` independent simulations concurrently and merge.

    Seeds are ``base_seed + chain_index`` (PCG64 streams with different
    seeds are independent for Monte Carlo purposes). Extra keyword
    arguments are forwarded to :class:`Simulation` (method,
    cluster_size, ``backend="threaded"``, ...), so every chain runs the
    same execution backend.

    When ``telemetry`` is given, each chain records into a private
    in-memory registry (threads never share a JSONL writer); on
    completion the chain registries are merged into ``telemetry``'s and
    one ``chain_done`` event per chain plus a final ``ensemble_done``
    event are archived.

    The merged estimate concatenates the chains' sample streams; since
    chains are mutually independent, binning across the concatenation is
    conservative (bin boundaries never straddle two chains because each
    chain contributes a whole number of bins when ``measurement_sweeps``
    is a multiple of the bin size — and is still a valid estimate
    otherwise).
    """
    if n_chains < 1:
        raise ValueError("need at least one chain")
    tel = ensure_telemetry(telemetry)
    chain_tels = [
        Telemetry(writer=None, snapshot_every=0) if tel.enabled else None
        for _ in range(n_chains)
    ]
    workers = max_workers if max_workers is not None else n_chains
    if workers > 1 and n_chains > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            sims = list(
                pool.map(
                    lambda c: _run_chain(
                        model,
                        base_seed + c,
                        warmup_sweeps,
                        measurement_sweeps,
                        simulation_kwargs,
                        telemetry=chain_tels[c],
                    ),
                    range(n_chains),
                )
            )
    else:
        sims = [
            _run_chain(
                model, base_seed + c, warmup_sweeps, measurement_sweeps,
                simulation_kwargs, telemetry=chain_tels[c],
            )
            for c in range(n_chains)
        ]

    merged = Accumulator()
    stats = SweepStats()
    per_chain = []
    for c, sim in enumerate(sims):
        merged.extend(sim.collector.accumulator)
        stats.merge(sim.total_stats)
        per_chain.append(sim.collector.results(n_bins=n_bins))
        if tel.enabled:
            chain_tel = chain_tels[c]
            chain_tel.snapshot()  # poll profiler/cache sources
            tel.registry.merge(chain_tel.registry)
            tel.event(
                "chain_done",
                chain=c,
                seed=base_seed + c,
                proposed=sim.total_stats.proposed,
                accepted=sim.total_stats.accepted,
                sign=sim._sign,
            )
    if tel.enabled:
        tel.event("ensemble_done", chains=n_chains)
        tel.snapshot()

    return EnsembleResult(
        model=model,
        observables=merged.reduce(n_bins=n_bins * min(n_chains, 4)),
        per_chain=per_chain,
        sweep_stats=stats,
        n_chains=n_chains,
    )
