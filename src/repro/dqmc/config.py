"""QUEST-style plain-text input files.

QUEST configures lattice size and physical parameters "very generally
through an input file" (paper Sec. I). This module reads the same kind of
``key = value`` file (``#`` comments, case-insensitive keys) into a typed
:class:`SimulationConfig`, from which a model and simulation are built::

    nx      = 8        # lattice x extent
    ny      = 8
    nlayers = 1        # > 1 selects the multilayer geometry
    u       = 2.0
    mu      = 0.0
    dtau    = 0.125
    l       = 40       # number of time slices (beta = l * dtau)
    nwarm   = 100
    npass   = 400
    seed    = 7
    method  = prepivot # or qrp / nopivot
    north   = 10       # cluster size k (QUEST's name for it)
    ndelay  = 32
    altdir  = 1        # alternate forward/backward sweeps
"""

from __future__ import annotations

import io
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Union

from ..hamiltonian import HubbardModel
from ..lattice import MultilayerLattice, SquareLattice
from .simulation import Simulation

__all__ = ["SimulationConfig", "parse_config", "load_config"]


@dataclass
class SimulationConfig:
    """Typed view of an input file. Field names double as file keys."""

    nx: int = 4
    ny: int = 4
    nlayers: int = 1
    u: float = 2.0
    t: float = 1.0
    tperp: float = 1.0
    mu: float = 0.0
    dtau: float = 0.125
    l: int = 40
    nwarm: int = 100
    npass: int = 400
    seed: int = 0
    method: str = "prepivot"
    north: int = 10
    ndelay: int = 32
    nmeas: int = 1
    altdir: int = 0
    #: execution backend name; "auto" defers to $REPRO_BACKEND / "numpy"
    backend: str = "auto"
    #: precision policy name (full64 / mixed / fast32); "auto" defers to
    #: $REPRO_PRECISION / "full64"
    precision: str = "auto"
    #: kinetic propagator (exact / checkerboard); "auto" defers to
    #: $REPRO_KINETIC / "exact" — checkerboard swaps the dense
    #: exp(-dtau K) GEMMs for O(N) bond-group rotation passes at the
    #: cost of one more O(dtau^2) Trotter term
    kinetic: str = "auto"
    #: 1 = pick (cluster size, delay) from the tuning cache / a warmup
    #: autotune pass instead of trusting north/ndelay (see
    #: docs/performance.md); 0 = run exactly what the file says
    autotune: int = 0
    #: 1 = constant-memory streaming (log-binned) measurement
    #: accumulation; 0 = retain every sample (post-hoc analysis)
    streaming: int = 0
    #: > 0 = error-targeted stopping: measure until the sign-corrected
    #: relative error of target_obs reaches this value (npass becomes
    #: the sweep *budget*); 0 = fixed npass sweeps
    target_error: float = 0.0
    #: observable whose relative error target_error aims at
    target_obs: str = "density"

    @property
    def beta(self) -> float:
        return self.l * self.dtau

    def model(self) -> HubbardModel:
        if self.nlayers > 1:
            lattice = MultilayerLattice(self.nx, self.ny, self.nlayers)
        else:
            lattice = SquareLattice(self.nx, self.ny)
        return HubbardModel(
            lattice,
            u=self.u,
            t=self.t,
            t_perp=self.tperp,
            mu=self.mu,
            beta=self.beta,
            n_slices=self.l,
        )

    def validate(self) -> "SimulationConfig":
        """Check cross-field consistency; returns self for chaining.

        Shared by :func:`parse_config` and the campaign spec expansion,
        so a bad method/cluster/backend combination fails identically
        whether it arrives from an input file or a sweep grid.
        """
        if self.method not in ("prepivot", "qrp", "nopivot"):
            raise ValueError(f"unknown method {self.method!r}")
        if self.l % self.north != 0:
            raise ValueError(
                f"north = {self.north} must divide l = {self.l} "
                "(cluster boundaries must tile the time axis)"
            )
        if self.backend != "auto":
            # Unknown backend names and unsupported method/backend pairs
            # are configuration errors — caught here before any model is
            # built (no backend is constructed; names are checked
            # against the registry).
            from ..backends import validate_backend_method

            try:
                validate_backend_method(self.backend, self.method)
            except Exception as exc:
                raise ValueError(f"backend = {self.backend!r}: {exc}") from exc
        if self.precision != "auto":
            # Same contract as backend names: a typo'd policy is a
            # configuration error at parse/spec time, not a silent
            # full64 run discovered after the fact.
            from ..precision import PrecisionError, resolve_policy

            try:
                resolve_policy(self.precision)
            except PrecisionError as exc:
                raise ValueError(f"precision = {self.precision!r}: {exc}") from exc
        if self.kinetic != "auto":
            from ..hamiltonian import resolve_kinetic

            try:
                resolve_kinetic(self.kinetic)
            except ValueError as exc:
                raise ValueError(f"kinetic = {self.kinetic!r}: {exc}") from exc
            if self.kinetic == "checkerboard" and self.nlayers > 1:
                raise ValueError(
                    "kinetic = 'checkerboard' cannot partition a "
                    "multilayer stack into disjoint bond groups; use "
                    "kinetic = 'exact' for nlayers > 1"
                )
        if self.target_error < 0:
            raise ValueError(
                f"target_error = {self.target_error} must be >= 0 "
                "(0 disables error-targeted stopping)"
            )
        if not self.target_obs or "/" in self.target_obs:
            raise ValueError(f"bad target_obs {self.target_obs!r}")
        return self

    def controller(self):
        """The configured :class:`repro.stats.RunController`, or None
        when ``target_error`` is 0 (fixed-budget run)."""
        if not self.target_error:
            return None
        from ..stats import RunController

        return RunController(
            target_observable=self.target_obs,
            target_error=self.target_error,
        )

    def simulation(
        self,
        telemetry=None,
        watchdog=None,
        backend=None,
        seed=None,
        precision=None,
        kinetic=None,
    ) -> Simulation:
        """Build the configured :class:`Simulation`.

        ``telemetry`` / ``watchdog`` are runtime concerns (a Telemetry
        facade and a WatchdogConfig), not physics, so they ride as
        arguments rather than input-file keys — the same input file must
        describe the same Markov chain with or without observability.
        ``backend`` (e.g. from ``repro run --backend``) overrides the
        file's ``backend`` key; backends are execution policy, not
        physics, so the Markov chain is the same either way. ``seed``
        overrides the file's integer seed and may be anything
        ``np.random.default_rng`` accepts — the campaign layer passes a
        spawned ``SeedSequence`` here so jobs get independent streams.
        ``precision`` (e.g. from ``repro run --precision``) overrides
        the file's ``precision`` key the same way ``backend`` does —
        unlike a backend swap it *does* change the floating-point
        trajectory, which is exactly the point of the policy ladder.
        ``kinetic`` (e.g. from ``repro run --kinetic``) overrides the
        file's ``kinetic`` key; like precision it changes the numerics
        (one extra Trotter term), so it is physics the user opts into.
        """
        chosen = backend if backend is not None else self.backend
        chosen_precision = precision if precision is not None else self.precision
        chosen_kinetic = kinetic if kinetic is not None else self.kinetic
        return Simulation(
            self.model(),
            seed=self.seed if seed is None else seed,
            method=self.method,
            cluster_size=self.north,
            max_delay=self.ndelay,
            measurements_per_sweep=self.nmeas,
            alternate_directions=bool(self.altdir),
            telemetry=telemetry,
            watchdog=watchdog,
            backend=None if chosen == "auto" else chosen,
            precision=None if chosen_precision == "auto" else chosen_precision,
            kinetic=None if chosen_kinetic == "auto" else chosen_kinetic,
            streaming=bool(self.streaming),
        )

    def dumps(self) -> str:
        """Serialize back to input-file text (round-trips with parse)."""
        out = io.StringIO()
        for f in fields(self):
            out.write(f"{f.name} = {getattr(self, f.name)}\n")
        return out.getvalue()


def parse_config(text: str) -> SimulationConfig:
    """Parse input-file text. Unknown keys raise (typos must not pass
    silently); types are coerced from the dataclass annotations."""
    known = {f.name: f.type for f in fields(SimulationConfig)}
    coerce = {"int": int, "float": float, "str": str}
    values = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ValueError(f"line {lineno}: expected 'key = value', got {raw!r}")
        key, _, val = line.partition("=")
        key = key.strip().lower()
        val = val.strip()
        if key not in known:
            raise ValueError(f"line {lineno}: unknown key {key!r}")
        typ = known[key]
        typ_name = typ if isinstance(typ, str) else typ.__name__
        try:
            values[key] = coerce[typ_name](val)
        except (KeyError, ValueError) as exc:
            raise ValueError(
                f"line {lineno}: cannot parse {val!r} as {typ_name} for {key!r}"
            ) from exc
    return SimulationConfig(**values).validate()


def load_config(path: Union[str, Path]) -> SimulationConfig:
    """Read and parse an input file from disk."""
    return parse_config(Path(path).read_text())
