"""The Metropolis sweep (paper Algorithm 1) with delayed updates.

One sweep visits every (slice, site) entry of the HS field once. The
slice loop is organized around the cluster structure:

1. at each cluster boundary, the Green's functions of both spins are
   recomputed *fresh* by stratification (replacing the accumulated
   wrapping error — paper Sec. III-B),
2. inside a cluster, the functions are *wrapped* slice to slice,
3. at each slice, all N sites are visited; accepted flips are folded into
   the Green's functions through :class:`~repro.core.DelayedUpdater`
   block updates (flushed before every wrap).

The Metropolis ratio at slice l, site i (leftmost-B_l orientation):

    d_sigma = 1 + alpha_{i,sigma} * (1 - G_sigma(i, i)),
    r = d_+ * d_-,    accept with probability min(1, |r|).

The sign of r is tracked: at half filling it is always +1 (particle-hole
symmetry), away from it the average sign is an observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core import DelayedUpdater, GreensFunctionEngine
from ..profiling import PhaseProfiler, ensure_profiler
from ..telemetry import Telemetry, ensure_telemetry

__all__ = ["SweepStats", "sweep", "SINGULAR_THRESHOLD"]

#: Spin species labels used throughout.
SPINS = (1, -1)

#: Reject (rather than accept) a proposal whose Metropolis denominator
#: magnitude falls below this. A near-singular d has acceptance
#: probability ~|r| ~ 0, so the statistical weight of these proposals is
#: negligible — but *accepting* one divides by d in the delayed update
#: and injects O(1/d) garbage into G (or raises ZeroDivisionError at
#: exactly 0), killing a long run. Rejection keeps the chain valid:
#: min(1, |r|) is replaced by 0 on a measure-~zero set of proposals.
SINGULAR_THRESHOLD = 1e-12


@dataclass
class SweepStats:
    """Counters from one (or several accumulated) sweeps."""

    proposed: int = 0
    accepted: int = 0
    negative_ratios: int = 0
    sign: float = 1.0
    #: number of fresh stratifications performed
    refreshes: int = 0
    #: proposals rejected because the Metropolis denominator was within
    #: SINGULAR_THRESHOLD of zero (would have corrupted G if accepted)
    singular_rejects: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    def merge(self, other: "SweepStats") -> None:
        self.proposed += other.proposed
        self.accepted += other.accepted
        self.negative_ratios += other.negative_ratios
        self.refreshes += other.refreshes
        self.singular_rejects += other.singular_rejects


def sweep(
    engine: GreensFunctionEngine,
    rng: np.random.Generator,
    max_delay: int = 32,
    profiler: Optional[PhaseProfiler] = None,
    on_boundary: Optional[Callable[[int, Dict[int, np.ndarray], float], None]] = None,
    start_sign: float = 1.0,
    direction: str = "forward",
    telemetry: Optional[Telemetry] = None,
) -> SweepStats:
    """Run one full DQMC sweep, mutating the engine's HS field in place.

    Parameters
    ----------
    engine:
        Green's function engine (owns field, cluster cache, method).
    rng:
        Source of Metropolis randomness (one uniform per proposal).
    max_delay:
        Delayed-update block size; 1 recovers plain rank-1 updates.
    profiler:
        Optional per-phase timer ("delayed_update" covers the site loop).
    on_boundary:
        Callback invoked at every cluster boundary with
        ``(cluster_index, {sigma: G}, sign)`` — *after* the fresh
        recompute, *before* any wrap. The measurement hook; the G arrays
        must not be mutated by the callback.
    start_sign:
        The sign of the configuration entering the sweep (the simulation
        driver threads it between sweeps; it is +1 at half filling).
    direction:
        "forward" walks the time slices 0..L-1 (wrapping each slice to
        the leftmost position before updating it); "backward" walks
        L-1..0, *un*-wrapping after each slice. QUEST alternates the two
        to reduce autocorrelation along imaginary time; either alone
        satisfies detailed balance.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`. The sweep itself
        only emits a ``singular_reject`` event when the denominator
        guard fires (per-sweep counters are the driver's job via
        ``Telemetry.sweep_done``), so the site loop carries zero
        telemetry overhead.

    Returns
    -------
    SweepStats
        Acceptance counters and the running configuration sign estimate.
    """
    prof = ensure_profiler(profiler)
    tel = ensure_telemetry(telemetry)
    field = engine.field
    nu = engine.factory.nu
    n_sites = field.n_sites
    stats = SweepStats()
    sign = start_sign

    if direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {direction!r}")
    forward = direction == "forward"
    nc = engine.n_clusters
    cluster_order = range(nc) if forward else range(nc - 1, -1, -1)

    for c in cluster_order:
        # Forward: the boundary-c G (rightmost factor = first slice of
        # cluster c), wrapped through each slice before updating it.
        # Backward: the boundary-(c+1) G already has the cluster's *last*
        # slice leftmost — update first, then unwrap toward slice c*k.
        boundary = c if forward else (c + 1) % nc
        g: Dict[int, np.ndarray] = {
            s: engine.boundary_greens(s, boundary) for s in SPINS
        }
        stats.refreshes += 1
        if on_boundary is not None:
            on_boundary(boundary, g, sign)

        slices = engine.cache.ranges[c]
        slice_order = slices if forward else reversed(slices)
        for l in slice_order:
            if forward:
                # Move slice l to the leftmost position before updating:
                # both spin sectors wrapped in one batched backend call.
                g = engine.wrap_pair(g, l)
            upd = {
                s: DelayedUpdater(
                    g[s], max_delay=max_delay, backend=engine.backend
                )
                for s in SPINS
            }

            with prof.phase("delayed_update"):
                # Flip factors for the whole slice, vectorized up front.
                # Safe because each site is visited exactly once per
                # slice, so a flip at site i never changes alpha[j > i].
                exp_up = np.exp(-2.0 * nu * field.h[l])
                alpha_up = exp_up - 1.0
                alpha_dn = 1.0 / exp_up - 1.0
                uniforms = rng.random(n_sites)
                up, dn = upd[1], upd[-1]
                # Hot loop: locals only. The effective diagonals are the
                # updaters' incrementally maintained views, so a rejected
                # proposal costs a handful of scalar ops.
                diag_up, diag_dn = up._diag, dn._diag
                h_row = field.h[l]
                accepted = 0
                negative = 0
                singular = 0
                tiny = SINGULAR_THRESHOLD
                for i in range(n_sites):
                    a_up = alpha_up[i]
                    a_dn = alpha_dn[i]
                    d_up = 1.0 + a_up * (1.0 - diag_up[i])
                    d_dn = 1.0 + a_dn * (1.0 - diag_dn[i])
                    r = d_up * d_dn
                    if r < 0.0:
                        negative += 1
                    if uniforms[i] < abs(r):
                        # A (near-)singular denominator would divide the
                        # delayed update by ~0; its acceptance weight is
                        # ~|r| ~ 0, so reject instead of crashing the run.
                        if abs(d_up) < tiny or abs(d_dn) < tiny:
                            singular += 1
                            continue
                        h_row[i] = -h_row[i]
                        up.accept(i, a_up, d_up)
                        dn.accept(i, a_dn, d_dn)
                        # accept() may auto-flush and re-anchor; re-fetch
                        diag_up, diag_dn = up._diag, dn._diag
                        if r < 0.0:
                            sign = -sign
                        accepted += 1
                stats.proposed += n_sites
                stats.negative_ratios += negative
                stats.accepted += accepted
                if singular:
                    stats.singular_rejects += singular
                    tel.counter("sweep.singular_guard_hits", singular)
                    tel.event(
                        "singular_reject", slice=l, count=singular,
                    )
                if accepted:
                    engine.invalidate_slice(l)
                up.flush()
                dn.flush()

            if not forward and l != slices[0]:
                # Retreat: remove the (freshly updated) B_l from the
                # leftmost position so slice l-1 is exposed next (both
                # spins in one batched call).
                g = engine.unwrap_pair(g, l)

    stats.sign = sign
    return stats
