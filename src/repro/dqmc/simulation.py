"""The full DQMC simulation driver: warmup, sampling, measurements.

Mirrors a QUEST run (paper Sec. II-B): a warmup stage thermalizes the HS
field with Metropolis sweeps; a measurement stage keeps sweeping while
recording physical observables at cluster boundaries. All the paper's
performance machinery — pre-pivoted stratification, clustering,
recycling, wrapping, delayed updates — is engaged by default and
individually configurable for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core import GreensFunctionEngine, StratificationMethod
from ..hamiltonian import BMatrixFactory, HSField, HubbardModel
from ..measure import BinnedEstimate, MeasurementCollector
from ..profiling import PhaseProfiler
from ..telemetry import (
    NumericalHealthWatchdog,
    Telemetry,
    WatchdogConfig,
    ensure_telemetry,
)
from .sweep import SweepStats, sweep

__all__ = ["Simulation", "SimulationResult"]


def _resolve_backend_knobs(backend, use_gpu: bool, threaded_norms: bool):
    """Fold the deprecated ``use_gpu``/``threaded_norms`` flags into the
    single ``backend`` knob, loudly.

    Every combination that used to be silently mis-handled (the old
    hybrid path dropped ``threaded_norms`` on the floor) is now an
    error; a lone legacy flag maps to its backend with a
    DeprecationWarning.
    """
    import warnings

    if use_gpu and threaded_norms:
        raise ValueError(
            "use_gpu=True and threaded_norms=True name two different "
            "backends; pick one backend= ('gpu-sim' or 'threaded') — the "
            "old hybrid engine silently ignored threaded_norms here"
        )
    if backend is not None and (use_gpu or threaded_norms):
        flag = "use_gpu" if use_gpu else "threaded_norms"
        raise ValueError(
            f"pass either backend= or the deprecated {flag}, not both"
        )
    if use_gpu:
        warnings.warn(
            "use_gpu is deprecated; pass backend='gpu-sim' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return "gpu-sim"
    if threaded_norms:
        warnings.warn(
            "threaded_norms is deprecated; pass backend='threaded' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return "threaded"
    return backend


@dataclass
class SimulationResult:
    """Everything a finished run reports."""

    model: HubbardModel
    observables: Dict[str, BinnedEstimate]
    sweep_stats: SweepStats
    profiler: PhaseProfiler
    n_warmup: int
    n_measurement: int
    mean_sign: float
    #: sign-corrected < O s > / < s > estimates with propagated errors
    #: (None when nothing was measured)
    corrected: Optional[Dict[str, BinnedEstimate]] = None
    #: run-control digest (RunController.summary()) when a controller
    #: drove the measurement stage
    control: Optional[dict] = None

    def summary(self) -> str:
        """A human-readable digest of the scalar observables."""
        lines = [
            f"lattice            {self.model.lattice}",
            f"U = {self.model.u:g}, beta = {self.model.beta:g}, "
            f"L = {self.model.n_slices}, mu = {self.model.mu:g}",
            f"sweeps             {self.n_warmup} warmup + "
            f"{self.n_measurement} measurement",
            f"acceptance         {self.sweep_stats.acceptance_rate:.3f}",
            f"mean sign          {self.mean_sign:+.4f}",
        ]
        for name in ("density", "double_occupancy", "kinetic_energy",
                     "af_structure_factor"):
            if name in self.observables:
                lines.append(f"{name:<18} {self.observables[name]}")
        return "\n".join(lines)


class Simulation:
    """A configured DQMC run over one Hubbard model.

    Parameters
    ----------
    model:
        Physics + discretization.
    seed:
        PCG64 seed for the field initialization and Metropolis stream.
    method:
        Stratification pivoting policy ("prepivot" = paper Algorithm 3,
        "qrp" = Algorithm 2 baseline).
    cluster_size:
        k (= the wrap count between fresh stratifications). Must divide
        ``model.n_slices``.
    max_delay:
        Delayed-update block size (1 disables delaying).
    measure_arrays:
        Collect <n_k> and C_zz (O(N^2) per measurement).
    measurements_per_sweep:
        How many cluster boundaries per sweep record measurements,
        spread evenly; capped at the number of clusters.
    alternate_directions:
        Alternate forward/backward sweeps (QUEST's pattern; reduces
        autocorrelation along imaginary time). Off by default so runs
        reproduce earlier single-direction results.
    global_flips_per_sweep:
        Whole-worldline flip proposals appended after every sweep —
        ergodicity insurance at strong coupling (each proposal costs a
        full Green's evaluation). 0 disables.
    backend:
        Execution backend for every propagator operation: a registry
        name (``"numpy"``, ``"threaded"``, ``"gpu-sim"``, ``"cupy"``) or
        a live :class:`~repro.backends.PropagatorBackend`. ``None``
        means the default (``$REPRO_BACKEND`` or ``"numpy"``). Physics
        is backend-independent by construction (bit-identical for the
        simulated backends); only the execution/timing story differs.
    use_gpu:
        Deprecated spelling of ``backend="gpu-sim"`` (Sec. VI's hybrid
        offload; the device's virtual clock is at ``sim.engine.device``).
    threaded_norms:
        Deprecated spelling of ``backend="threaded"`` (Sec. IV-B's
        OpenMP-style norm/scaling pool). Combining either legacy flag
        with ``backend=`` — or both legacy flags with each other — is an
        error: nothing is silently ignored.
    measure_dynamic:
        Also record the time-displaced observables once per measurement
        sweep: spin-averaged ``G(k, tau)`` and ``G_loc(tau)`` on the
        cluster-boundary tau grid, via the O(L) incremental series.
        Costs roughly one extra Green's-function evaluation pair per
        sweep; off by default.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`: per-sweep counters
        and events, periodic metric snapshots (profiler phases and
        cluster-cache stats are registered as snapshot sources), and the
        sink for watchdog alerts. ``None`` (the default) routes every
        call site to the shared no-op instance — zero overhead, exactly
        like a disabled ``REPRO_CONTRACTS``.
    watchdog:
        Optional :class:`~repro.telemetry.WatchdogConfig`. When given, a
        :class:`~repro.telemetry.NumericalHealthWatchdog` samples wrap
        drift and graded conditioning every ``check_every`` sweeps and —
        past tolerance — emits a ``health_alert`` then forces a full
        cache invalidation + fresh re-stratification. Under a narrowed
        precision policy an alert additionally *promotes* the engine to
        the next-safer policy in place (``fast32`` -> ``mixed`` ->
        ``full64``) before the refresh.
    precision:
        Precision policy name (``"full64"``, ``"mixed"``, ``"fast32"``)
        or a :class:`~repro.precision.PrecisionPolicy`. ``None`` defers
        to the backend's own policy (``$REPRO_PRECISION``, default
        ``full64``). Narrowed policies change the Markov chain's
        floating-point trajectory; observables agree to the compute
        dtype's accuracy, and measurement accumulators always stay
        float64.
    streaming:
        Accumulate measurements through the constant-memory streaming
        pipeline (:class:`repro.stats.StreamingAccumulator`): O(log n)
        log-binned state per observable instead of every retained
        sample. Estimates agree with post-hoc binning (identical means,
        errors matching at power-of-two sample counts); sample series
        are only available for observables a controller tracks.
    """

    def __init__(
        self,
        model: HubbardModel,
        seed: int = 0,
        method: StratificationMethod = "prepivot",
        cluster_size: int = 10,
        max_delay: int = 32,
        measure_arrays: bool = True,
        measurements_per_sweep: int = 1,
        alternate_directions: bool = False,
        global_flips_per_sweep: int = 0,
        use_gpu: bool = False,
        threaded_norms: bool = False,
        measure_dynamic: bool = False,
        telemetry: Optional[Telemetry] = None,
        watchdog: Optional[WatchdogConfig] = None,
        backend=None,
        precision=None,
        kinetic=None,
        streaming: bool = False,
    ):
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.profiler = PhaseProfiler()
        self.telemetry = ensure_telemetry(telemetry)
        if self.telemetry.enabled:
            self.telemetry.add_snapshot_source(
                self.profiler.export_to_registry
            )
        self.factory = BMatrixFactory(model, kinetic=kinetic)
        self.field = HSField.random(model.n_slices, model.n_sites, self.rng)
        backend = _resolve_backend_knobs(backend, use_gpu, threaded_norms)
        self.engine = GreensFunctionEngine(
            self.factory,
            self.field,
            method=method,
            cluster_size=cluster_size,
            profiler=self.profiler,
            telemetry=telemetry,
            backend=backend,
            precision=precision,
        )
        self.watchdog = (
            NumericalHealthWatchdog(self.engine, watchdog, self.telemetry)
            if watchdog is not None
            else None
        )
        if global_flips_per_sweep < 0:
            raise ValueError("global_flips_per_sweep must be >= 0")
        self.global_flips_per_sweep = global_flips_per_sweep
        self.max_delay = max_delay
        self.collector = MeasurementCollector(
            model.lattice,
            t=model.t,
            t_perp=model.t_perp,
            with_arrays=measure_arrays,
            streaming=streaming,
        )
        self.controller = None
        if measurements_per_sweep < 1:
            raise ValueError("measurements_per_sweep must be >= 1")
        # Remember the *requested* cadence: re-partitioning the engine
        # (autotune) changes the cluster count, and the effective cadence
        # must be re-capped against the new tiling, not the original one.
        self._measurements_requested = measurements_per_sweep
        self.measurements_per_sweep = min(
            measurements_per_sweep, self.engine.n_clusters
        )
        self.alternate_directions = alternate_directions
        self.measure_dynamic = measure_dynamic
        self._sweep_parity = 0
        self._sweep_index = 0
        #: measurement sweeps completed (survives checkpoint resume;
        #: unlike sample counts it is immune to equilibration discards)
        self.measured_sweeps = 0
        self._sign = self.engine.configuration_sign()
        self.total_stats = SweepStats()

    def apply_tuning(self, params) -> None:
        """Adopt tuned engine parameters on the live simulation.

        ``params`` is a :class:`~repro.autotune.TuningParameters` (or
        anything exposing ``cluster_size``, ``wrap_interval`` and
        ``max_delay``). The engine is re-partitioned in place, the
        delayed-update block size replaces the constructor's value for
        every subsequent sweep, and the measurement cadence is re-capped
        against the new cluster count. Physics-invariant by
        construction — these are execution knobs, not model parameters —
        but the Markov chain's floating-point trajectory does change
        with the tiling, exactly as constructing the simulation with the
        new values would. Call between sweeps only.
        """
        cluster_size = int(params.cluster_size)
        wrap_interval = int(getattr(params, "wrap_interval", cluster_size))
        if wrap_interval != cluster_size:
            raise ValueError(
                "wrap_interval must equal cluster_size: the engine "
                "re-stratifies at cluster boundaries"
            )
        max_delay = int(params.max_delay)
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        self.engine.repartition(cluster_size)
        self.max_delay = max_delay
        self.measurements_per_sweep = min(
            self._measurements_requested, self.engine.n_clusters
        )
        precision = getattr(params, "precision", None)
        if precision is not None:
            self.set_precision(precision)
        kinetic = getattr(params, "kinetic", None)
        if kinetic is not None:
            self.set_kinetic(kinetic)

    @property
    def precision(self) -> str:
        """Name of the engine's active precision policy."""
        return self.engine.policy.name

    @property
    def kinetic(self) -> str:
        """Name of the active kinetic-propagator mode."""
        return self.factory.kinetic_mode

    def set_kinetic(self, kinetic) -> bool:
        """Switch the kinetic propagator on the live run (between sweeps).

        Delegates to :meth:`GreensFunctionEngine.set_kinetic` (which
        rebuilds the factory and re-binds the backend) and adopts the
        engine's new factory so the measurement paths see the same
        operator. Like a precision switch this changes the numerics —
        checkerboard carries one extra O(dtau^2) Trotter term — which is
        why the autotuner health-gates the axis. Returns True when the
        mode actually changed.
        """
        changed = self.engine.set_kinetic(kinetic)
        if changed:
            self.factory = self.engine.factory
        return changed

    def set_precision(self, policy) -> bool:
        """Switch the precision policy on the live run (between sweeps).

        Delegates to :meth:`GreensFunctionEngine.set_precision`; used by
        the autotuner's precision axis and by checkpoint resume (the
        saved policy — possibly a watchdog-promoted one — is reapplied
        so the continuation is bit-exact). Returns True when the policy
        actually changed.
        """
        return self.engine.set_precision(policy)

    def _measure_dynamic_sample(self) -> None:
        """One sign-weighted sample of G(k, tau) / G_loc(tau) over the
        cluster-boundary tau grid (spin averaged)."""
        from ..core import displaced_series_fast
        from ..lattice import SquareLattice
        from ..measure.dynamic import local_greens_tau, momentum_greens_tau

        is_square = isinstance(self.model.lattice, SquareLattice)
        with self.profiler.phase("measurements"):
            gk = None
            gloc = None
            for sigma in (1, -1):
                taus, greens = displaced_series_fast(
                    self.factory,
                    self.field,
                    sigma,
                    self.engine.cluster_size,
                    method=self.engine.method,
                )
                if gloc is None:
                    gloc = np.zeros(len(greens))
                    if is_square:
                        gk = np.zeros((len(greens), self.model.n_sites))
                for j, g in enumerate(greens):
                    gloc[j] += 0.5 * local_greens_tau(g)
                    if is_square:
                        gk[j] += 0.5 * momentum_greens_tau(
                            self.model.lattice, g
                        )
            acc = self.collector.accumulator
            acc.add("g_loc_tau", self._sign * gloc)
            if is_square:
                acc.add("g_k_tau", self._sign * gk)

    def _next_direction(self) -> str:
        if not self.alternate_directions:
            return "forward"
        self._sweep_parity ^= 1
        return "forward" if self._sweep_parity else "backward"

    def _maybe_global_flips(self) -> None:
        if self.global_flips_per_sweep:
            from .global_moves import global_site_flips

            _, self._sign = global_site_flips(
                self.engine,
                self.rng,
                n_proposals=self.global_flips_per_sweep,
                start_sign=self._sign,
            )

    def _after_sweep(self, st: SweepStats, stage: str) -> None:
        """Per-sweep telemetry + watchdog cadence (no-ops when disabled)."""
        self._sweep_index += 1
        if self.telemetry.enabled:
            self.telemetry.sweep_done(self._sweep_index, st, stage=stage)
        if self.watchdog is not None:
            self.watchdog.maybe_check(self._sweep_index)

    # -- stages ------------------------------------------------------------------

    def warmup(self, n_sweeps: int) -> SweepStats:
        """Thermalization sweeps (no measurements)."""
        agg = SweepStats()
        for _ in range(n_sweeps):
            st = sweep(
                self.engine,
                self.rng,
                max_delay=self.max_delay,
                profiler=self.profiler,
                start_sign=self._sign,
                direction=self._next_direction(),
                telemetry=self.telemetry,
            )
            self._sign = st.sign
            self._maybe_global_flips()
            self._after_sweep(st, stage="warmup")
            agg.merge(st)
        self.total_stats.merge(agg)
        return agg

    def measure_sweeps(self, n_sweeps: int) -> SweepStats:
        """Sampling sweeps with measurements at cluster boundaries."""
        nc = self.engine.n_clusters
        stride = max(1, nc // self.measurements_per_sweep)
        collector = self.collector

        def on_boundary(c: int, g: Dict[int, np.ndarray], sign: float) -> None:
            if c % stride == 0 and c // stride < self.measurements_per_sweep:
                with self.profiler.phase("measurements"):
                    collector.measure(g[1], g[-1], sign)

        agg = SweepStats()
        for _ in range(n_sweeps):
            st = sweep(
                self.engine,
                self.rng,
                max_delay=self.max_delay,
                profiler=self.profiler,
                on_boundary=on_boundary,
                start_sign=self._sign,
                direction=self._next_direction(),
                telemetry=self.telemetry,
            )
            self._sign = st.sign
            self._maybe_global_flips()
            if self.measure_dynamic:
                self._measure_dynamic_sample()
            self._after_sweep(st, stage="measure")
            self.measured_sweeps += 1
            agg.merge(st)
        self.total_stats.merge(agg)
        return agg

    def attach_controller(self, controller):
        """Put the measurement stage under a
        :class:`repro.stats.RunController`.

        The controller is consulted after every measurement sweep of
        :meth:`measure_until`; its decision state rides along in
        checkpoints. Attach *before* :func:`load_checkpoint` when
        resuming so the saved decision state lands in this instance.
        """
        self.controller = controller
        controller.bind(self)
        return controller

    def measure_until(self, max_sweeps: int):
        """Measurement sweeps under the attached controller.

        Sweeps until the controller says the error target is met or
        ``max_sweeps`` have run, whichever is first. Returns
        ``(stats, sweeps_done, last_decision)`` — the decision is None
        when the budget ran out between controller cadence points.
        """
        if self.controller is None:
            raise RuntimeError(
                "no controller attached; call attach_controller() first "
                "or use measure_sweeps() for a fixed budget"
            )
        if self.controller.stopped:
            return SweepStats(), 0, self.controller.last
        agg = SweepStats()
        done = 0
        decision = None
        while done < max_sweeps:
            agg.merge(self.measure_sweeps(1))
            done += 1
            latest = self.controller.check(self)
            if latest is not None:
                decision = latest
                if decision.stop:
                    break
        return agg, done, decision

    def run(
        self, warmup_sweeps: int = 100, measurement_sweeps: int = 200,
        n_bins: int = 16,
    ) -> SimulationResult:
        """Warmup + measurement, returning reduced observables."""
        self.warmup(warmup_sweeps)
        self.measure_sweeps(measurement_sweeps)
        return self.result(
            n_warmup=warmup_sweeps,
            n_measurement=measurement_sweeps,
            n_bins=n_bins,
        )

    def result(
        self, n_warmup: int, n_measurement: int, n_bins: int = 16
    ) -> SimulationResult:
        obs = self.collector.results(n_bins=n_bins)
        mean_sign = (
            float(np.asarray(obs["sign"].mean)) if "sign" in obs else 1.0
        )
        try:
            corrected = (
                self.collector.corrected_results(n_bins=n_bins)
                if obs
                else None
            )
        except ValueError:
            # Hard sign problem (< s > numerically zero): raw
            # sign-weighted averages stand, no ratio is quotable.
            corrected = None
        stats = SweepStats()
        stats.merge(self.total_stats)
        stats.sign = self._sign
        return SimulationResult(
            model=self.model,
            observables=obs,
            sweep_stats=stats,
            profiler=self.profiler,
            n_warmup=n_warmup,
            n_measurement=n_measurement,
            mean_sign=mean_sign,
            corrected=corrected,
            control=(
                self.controller.summary()
                if self.controller is not None
                else None
            ),
        )
