"""Global Monte Carlo moves: whole-worldline spin flips.

The local Metropolis sweep (Algorithm 1) changes one (slice, site) entry
at a time; at strong coupling and low temperature the field develops
stiff imaginary-time "worldlines" (h_{l,i} nearly constant in l) that
single-entry flips cross only exponentially slowly. The standard remedy
is an occasional *global* move: propose flipping an entire site's column
``h[:, i] -> -h[:, i]`` and accept with the exact determinant ratio

    R = det M_+(h') det M_-(h') / det M_+(h) det M_-(h)

evaluated through the stratified log-determinant (no overflow, no
approximation — this move has no rank-1 shortcut, which is why it costs
a full O(L N^3 / k) evaluation and is proposed sparingly, typically once
per site per few sweeps).

Detailed balance: the proposal is symmetric (the flip is an involution),
so the bare ratio is the acceptance probability. The move composes with
the local sweep into a valid, more ergodic chain; the exact-enumeration
integration test covers the composition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import GreensFunctionEngine
from ..linalg import stable_log_det_from_graded
from .sweep import SPINS

__all__ = ["GlobalMoveStats", "global_site_flips"]


@dataclass
class GlobalMoveStats:
    proposed: int = 0
    accepted: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    def merge(self, other: "GlobalMoveStats") -> None:
        self.proposed += other.proposed
        self.accepted += other.accepted


def _log_weight(engine: GreensFunctionEngine) -> tuple:
    """(sign, log|det M_+ det M_-|) of the engine's current field."""
    from ..core.stratification import stratified_decomposition

    sign = 1.0
    logw = 0.0
    for sigma in SPINS:
        chain = engine.cache.chain(sigma, 0)
        dec = stratified_decomposition(chain, method=engine.method)
        s, ld = stable_log_det_from_graded(dec)
        sign *= s
        logw += ld
    return sign, logw


def global_site_flips(
    engine: GreensFunctionEngine,
    rng: np.random.Generator,
    n_proposals: int = 1,
    sites: np.ndarray | None = None,
    start_sign: float = 1.0,
) -> tuple:
    """Propose ``n_proposals`` whole-column flips; returns (stats, sign).

    Parameters
    ----------
    engine:
        The Green's function engine whose field is updated in place.
    rng:
        Metropolis randomness (site choice + acceptance).
    n_proposals:
        Number of flip proposals this call (sites drawn uniformly unless
        given explicitly).
    sites:
        Optional explicit site sequence (overrides ``n_proposals``).
    start_sign:
        Configuration sign entering the call; the updated sign is
        returned (it can flip when the determinant ratio is negative).
    """
    field = engine.field
    stats = GlobalMoveStats()
    sign = start_sign
    if sites is None:
        sites = rng.integers(0, field.n_sites, size=n_proposals)

    sign_cur, logw_cur = _log_weight(engine)
    for i in sites:
        i = int(i)
        stats.proposed += 1
        # propose: flip the whole worldline of site i
        field.h[:, i] *= -1.0
        engine.invalidate_all()
        sign_new, logw_new = _log_weight(engine)
        log_ratio = logw_new - logw_cur
        # accept with min(1, |R|); track the sign of R separately
        if np.log(rng.random()) < min(0.0, log_ratio):
            stats.accepted += 1
            if sign_new * sign_cur < 0:
                sign = -sign
            sign_cur, logw_cur = sign_new, logw_new
        else:
            field.h[:, i] *= -1.0
            engine.invalidate_all()
    return stats, sign
