"""Simulation checkpointing: suspend and resume long runs bit-exactly.

The paper's headline run took 36 hours on a dedicated node; production
DQMC cannot afford to lose such a run to a node reclaim. A checkpoint
captures everything the Markov chain's future depends on:

* the HS field configuration,
* the Metropolis RNG state (PCG64 bit-generator state),
* the running configuration sign,
* the accumulated measurement samples and sweep counters.

Resuming from a checkpoint and continuing for n sweeps produces *exactly*
the same numbers as never having stopped (tested), because everything
else in the simulation (cluster caches, Green's functions) is derived
state that rebuilds on demand.

Format: a single ``.npz`` holding the arrays plus a JSON header — no
pickle, so checkpoints are portable and safe to load.

Atomicity guarantee: :func:`save_checkpoint` writes to a temporary file
in the destination directory and ``os.replace``-s it into place, so a
crash, out-of-disk, or node reclaim *during* a save can never destroy
the previous good checkpoint — the file at ``path`` is always either
the old complete checkpoint or the new complete one, never a torn write.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from ..hamiltonian import HSField
from .simulation import Simulation

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointError"]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Unusable or incompatible checkpoint file."""


def _rng_state_to_json(rng: np.random.Generator) -> str:
    state = rng.bit_generator.state
    if state["bit_generator"] != "PCG64":
        raise CheckpointError(
            f"only PCG64 streams are checkpointable, got "
            f"{state['bit_generator']}"
        )
    return json.dumps(
        {
            "state": str(state["state"]["state"]),
            "inc": str(state["state"]["inc"]),
            "has_uint32": state["has_uint32"],
            "uinteger": state["uinteger"],
        }
    )


def _rng_state_from_json(text: str) -> dict:
    raw = json.loads(text)
    return {
        "bit_generator": "PCG64",
        "state": {"state": int(raw["state"]), "inc": int(raw["inc"])},
        "has_uint32": raw["has_uint32"],
        "uinteger": raw["uinteger"],
    }


def save_checkpoint(path: Union[str, Path], sim: Simulation) -> None:
    """Write the simulation's resumable state to ``path`` (.npz).

    The write is atomic with respect to crashes: the archive is built in
    a temporary sibling file and renamed over ``path`` only once fully
    written, so an interrupted save leaves any previous checkpoint
    intact (see the module docstring).
    """
    acc = sim.collector.accumulator
    payload = {}
    names = list(acc.names())
    streaming_meta = None
    if getattr(acc, "streaming", False):
        # Streaming mode: the log-binned Welford state (plus tracked
        # control series) is the whole resumable measurement state —
        # O(log n) floats per observable instead of the sample series.
        streaming_meta = acc.state_meta()
        for key, arr in acc.state_arrays().items():
            payload[f"stream/{key}"] = arr
    else:
        for i, name in enumerate(names):
            if acc.n_samples(name):
                payload[f"obs{i}"] = acc.series(name)
    header = {
        "version": _FORMAT_VERSION,
        "rng": _rng_state_to_json(sim.rng),
        "sign": sim._sign,
        "observable_names": names,
        "stats": {
            "proposed": sim.total_stats.proposed,
            "accepted": sim.total_stats.accepted,
            "negative_ratios": sim.total_stats.negative_ratios,
            "refreshes": sim.total_stats.refreshes,
            "singular_rejects": sim.total_stats.singular_rejects,
        },
        "model": {
            "u": sim.model.u,
            "beta": sim.model.beta,
            "n_slices": sim.model.n_slices,
            "n_sites": sim.model.n_sites,
        },
        # Active precision-policy name. The watchdog may have *promoted*
        # the engine mid-run, so this is live engine state, not config:
        # resuming must continue on the promoted rung to stay bit-exact.
        "precision": sim.precision,
        "measured_sweeps": sim.measured_sweeps,
    }
    if streaming_meta is not None:
        header["streaming"] = streaming_meta
    controller = getattr(sim, "controller", None)
    if controller is not None:
        header["controller"] = controller.state_dict()
    dest = Path(path)
    # Same directory as the destination so os.replace is a same-filesystem
    # rename (atomic on POSIX), never a copy.
    tmp = dest.with_name(dest.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                header=np.array(json.dumps(header)),
                field=sim.field.h,
                **payload,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    finally:
        # Failed mid-write (disk full, kill signal unwinding): drop the
        # partial temp file; the previous checkpoint at `dest` is intact.
        tmp.unlink(missing_ok=True)


def load_checkpoint(path: Union[str, Path], sim: Simulation) -> Simulation:
    """Restore ``sim`` (a freshly constructed, matching Simulation) from
    a checkpoint written by :func:`save_checkpoint`.

    The caller constructs the Simulation with the same model and
    configuration; this function overwrites its stochastic state. A
    model mismatch (different U, beta, L or N) is rejected — resuming a
    checkpoint into a different physical system is always a bug.
    """
    with np.load(Path(path), allow_pickle=False) as npz:
        header = json.loads(str(npz["header"]))
        if header.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {header.get('version')}"
            )
        m = header["model"]
        if (
            m["u"] != sim.model.u
            or m["beta"] != sim.model.beta
            or m["n_slices"] != sim.model.n_slices
            or m["n_sites"] != sim.model.n_sites
        ):
            raise CheckpointError(
                "checkpoint belongs to a different model: "
                f"{m} vs current "
                f"{{'u': {sim.model.u}, 'beta': {sim.model.beta}, "
                f"'n_slices': {sim.model.n_slices}, "
                f"'n_sites': {sim.model.n_sites}}}"
            )

        # field: replace contents in place so the engine's references hold
        field = np.asarray(npz["field"])
        if field.shape != sim.field.h.shape:
            raise CheckpointError("field shape mismatch")
        HSField(field)  # validates +-1 entries
        sim.field.h[...] = field
        sim.engine.invalidate_all()

        # Optional key (older checkpoints predate precision policies):
        # re-apply the policy that was live at save time, which may be a
        # promoted rung rather than whatever the config requested.
        saved_precision = header.get("precision")
        if saved_precision is not None:
            sim.set_precision(saved_precision)

        sim.rng.bit_generator.state = _rng_state_from_json(header["rng"])
        sim._sign = float(header["sign"])
        st = header["stats"]
        sim.total_stats.proposed = int(st["proposed"])
        sim.total_stats.accepted = int(st["accepted"])
        sim.total_stats.negative_ratios = int(st["negative_ratios"])
        sim.total_stats.refreshes = int(st["refreshes"])
        # absent in checkpoints written before the singular-guard counter
        sim.total_stats.singular_rejects = int(st.get("singular_rejects", 0))

        # Restore *every* recorded observable through the public API —
        # including zero-sample ones (measured names that had no samples
        # yet), which must survive the round trip rather than vanish.
        acc = sim.collector.accumulator
        stream_meta = header.get("streaming")
        if stream_meta is not None:
            if not getattr(acc, "streaming", False):
                raise CheckpointError(
                    "checkpoint was written by a streaming run; construct "
                    "the Simulation with streaming=True to resume it"
                )
            arrays = {
                key[len("stream/"):]: np.asarray(npz[key])
                for key in npz.files
                if key.startswith("stream/")
            }
            acc.restore_state(stream_meta, arrays)
        else:
            if getattr(acc, "streaming", False):
                raise CheckpointError(
                    "checkpoint retains full sample series (post-hoc "
                    "mode); resume it with streaming=False"
                )
            acc.clear()
            for i, name in enumerate(header.get("observable_names", [])):
                key = f"obs{i}"
                acc.restore_series(
                    name, npz[key] if key in npz.files else []
                )

        # Older checkpoints predate the sweep counter; fall back to the
        # sample-count heuristic (exact when nothing was discarded).
        # After the accumulator restore so the fallback sees the counts.
        sim.measured_sweeps = int(
            header.get(
                "measured_sweeps",
                sim.collector.n_measurements
                // max(1, sim.measurements_per_sweep),
            )
        )

        # Controller decision state (equilibration flag, discard count,
        # stop record): restored into an already-attached controller so
        # the resumed run replays the remaining decisions identically.
        ctl_state = header.get("controller")
        controller = getattr(sim, "controller", None)
        if ctl_state is not None and controller is not None:
            controller.restore_state(ctl_state)
    return sim
