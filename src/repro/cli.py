"""Command-line interface: ``python -m repro <command> ...``.

Mirrors how QUEST is driven in production — an input file in, a results
archive out — with checkpoint/resume for long runs:

``run``
    Execute the simulation an input file describes; write observables to
    ``<input>.npz``; optionally checkpoint every N sweeps and resume;
    optionally archive a JSONL telemetry stream (``--telemetry``) with a
    numerical-health watchdog (``--watchdog-every``).

``tune``
    Search (cluster size, wrap interval, delay block) for an input
    file's workload on this machine and persist the winner in the
    tuning-profile cache; later ``run --autotune`` / campaign jobs
    reuse it (see ``docs/performance.md``).

``info``
    Parse an input file and report the derived quantities a user wants
    before committing hours: beta, nu, matrix sizes, memory estimate,
    the conditioning-based safe cluster size and the tuning-cache
    status for this workload.

``telemetry-report``
    Summarize a JSONL telemetry archive from a previous (or still
    running) ``run --telemetry`` into a Table-I-style digest.

``campaign``
    Fleet-of-runs orchestration (see ``docs/campaigns.md``):
    ``campaign run spec.json --dir DIR`` expands a declarative sweep
    spec into process-isolated jobs with retries and a crash-safe
    manifest; ``campaign resume DIR`` finishes an interrupted campaign
    without re-running completed jobs; ``campaign status DIR`` /
    ``campaign report DIR [--json PATH]`` summarize the manifest and
    results catalog.

``analyze``
    Full statistical report (means, errors, tau_int, equilibration
    cut, sign correction, cross-replica R-hat) from a checkpoint, a
    results archive, or a campaign directory (``docs/analysis.md``).

``version``
    Print the package version.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .dqmc import load_checkpoint, load_config, save_checkpoint
from .io import save_observables
from .linalg import chain_conditioning_report, flops
from .telemetry import (
    Telemetry,
    TelemetryWriter,
    WatchdogConfig,
    render_report,
    summarize_jsonl,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DQMC for the Hubbard model (IPDPS 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the simulation in an input file")
    p_run.add_argument("input", type=Path, help="QUEST-style input file")
    p_run.add_argument(
        "--output", type=Path, default=None,
        help="results archive (default: <input>.npz)",
    )
    p_run.add_argument(
        "--checkpoint", type=Path, default=None,
        help="checkpoint file to write during the run (and resume from "
        "if it already exists)",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, default=100, metavar="SWEEPS",
        help="measurement sweeps between checkpoints (default 100)",
    )
    p_run.add_argument(
        "--quiet", action="store_true", help="suppress the progress lines"
    )
    p_run.add_argument(
        "--backend", type=str, default=None, metavar="NAME",
        help="execution backend: numpy, threaded, gpu-sim or cupy "
        "(default: the input file's 'backend' key, else $REPRO_BACKEND, "
        "else numpy); physics is backend-independent",
    )
    p_run.add_argument(
        "--precision", type=str, default=None, metavar="POLICY",
        help="precision policy: full64, mixed or fast32 (default: the "
        "input file's 'precision' key, else $REPRO_PRECISION, else "
        "full64); narrowed policies trade float32 compute speed for "
        "watchdog-guarded accuracy (see docs/performance.md)",
    )
    p_run.add_argument(
        "--kinetic", type=str, default=None, metavar="MODE",
        help="kinetic propagator: exact or checkerboard (default: the "
        "input file's 'kinetic' key, else $REPRO_KINETIC, else exact); "
        "checkerboard swaps the dense exp(-dtau K) GEMMs for O(N) "
        "bond-group rotation passes at the cost of one extra O(dtau^2) "
        "Trotter term (see docs/performance.md)",
    )
    p_run.add_argument(
        "--telemetry", type=Path, default=None, metavar="JSONL",
        help="archive metrics snapshots and structured events to this "
        "JSONL file (inspectable mid-run; see docs/observability.md)",
    )
    p_run.add_argument(
        "--telemetry-snapshot-every", type=int, default=10, metavar="SWEEPS",
        help="sweeps between full metric snapshots in the telemetry "
        "stream (default 10; 0 = only a final snapshot)",
    )
    p_run.add_argument(
        "--watchdog-every", type=int, default=0, metavar="SWEEPS",
        help="sample wrap drift + graded conditioning every N sweeps and "
        "force a refresh past tolerance (default 0 = watchdog off; each "
        "sample costs ~one stratification)",
    )
    p_run.add_argument(
        "--watchdog-drift-tol", type=float, default=1e-6, metavar="TOL",
        help="wrap-drift relative-error alert threshold (default 1e-6)",
    )
    p_run.add_argument(
        "--watchdog-range-tol", type=float, default=1e14, metavar="TOL",
        help="graded dynamic-range alert threshold (default 1e14)",
    )
    p_run.add_argument(
        "--autotune", action="store_true",
        help="pick (cluster size, delay block) from the tuning cache, "
        "tuning during warmup on a cache miss (equivalent to "
        "'autotune = 1' in the input file)",
    )
    p_run.add_argument(
        "--tune-cache", type=Path, default=None, metavar="PATH",
        help="tuning-profile cache file (default: $REPRO_TUNE_CACHE, "
        "else ~/.cache/repro/tuning.json)",
    )
    p_run.add_argument(
        "--streaming", action="store_true",
        help="constant-memory streaming measurement accumulation "
        "(log-binned Welford state, O(log n) per observable) instead of "
        "retaining every sample; equivalent to 'streaming = 1' in the "
        "input file (see docs/analysis.md)",
    )
    p_run.add_argument(
        "--target-error", type=float, default=None, metavar="EPS",
        help="error-targeted stopping: measure until the sign-corrected "
        "relative error of the target observable is <= EPS, with npass "
        "as the sweep budget (equivalent to 'target_error = EPS'; "
        "includes automatic equilibration detection)",
    )
    p_run.add_argument(
        "--target-observable", type=str, default=None, metavar="NAME",
        help="observable --target-error aims at (default: the input "
        "file's 'target_obs' key, else density)",
    )

    p_tune = sub.add_parser(
        "tune",
        help="autotune engine parameters for an input file's workload",
    )
    p_tune.add_argument("input", type=Path, help="QUEST-style input file")
    p_tune.add_argument(
        "--tune-cache", type=Path, default=None, metavar="PATH",
        help="tuning-profile cache file (default: $REPRO_TUNE_CACHE, "
        "else ~/.cache/repro/tuning.json)",
    )
    p_tune.add_argument(
        "--trial-sweeps", type=int, default=3, metavar="N",
        help="warmup sweeps timed per candidate (default 3)",
    )
    p_tune.add_argument(
        "--drift-tol", type=float, default=1e-6, metavar="TOL",
        help="reject candidates whose wrap drift exceeds this (default 1e-6)",
    )
    p_tune.add_argument(
        "--range-tol", type=float, default=1e14, metavar="TOL",
        help="reject candidates past this dynamic range (default 1e14)",
    )
    p_tune.add_argument(
        "--force", action="store_true",
        help="re-tune even if the cache already has a profile",
    )
    p_tune.add_argument(
        "--backend", type=str, default=None, metavar="NAME",
        help="execution backend to tune for (profiles are per-backend)",
    )
    p_tune.add_argument(
        "--precisions", type=str, default=None, metavar="P1,P2",
        help="comma-separated precision policies to add to the search "
        "grid (e.g. 'mixed'); default: only the run's configured policy",
    )
    p_tune.add_argument(
        "--kinetics", type=str, default=None, metavar="K1,K2",
        help="comma-separated kinetic propagator modes to add to the "
        "search grid (e.g. 'checkerboard'); default: only the run's "
        "configured mode",
    )
    p_tune.add_argument("--quiet", action="store_true")

    p_info = sub.add_parser("info", help="analyze an input file without running")
    p_info.add_argument("input", type=Path)
    p_info.add_argument(
        "--tune-cache", type=Path, default=None, metavar="PATH",
        help="tuning-profile cache to report on (default: the same "
        "resolution as 'repro tune')",
    )

    p_report = sub.add_parser(
        "telemetry-report",
        help="summarize a JSONL telemetry archive (Table-I-style view)",
    )
    p_report.add_argument("jsonl", type=Path, help="telemetry file from run --telemetry")

    p_campaign = sub.add_parser(
        "campaign",
        help="orchestrate a parameter-sweep campaign (docs/campaigns.md)",
    )
    csub = p_campaign.add_subparsers(dest="campaign_command", required=True)

    def add_exec_flags(p):
        p.add_argument(
            "--executor", choices=("process", "thread"), default="process",
            help="worker isolation: one spawned process per job attempt "
            "(default; crashes stay contained) or in-process threads",
        )
        p.add_argument(
            "--max-workers", type=int, default=None, metavar="N",
            help="jobs in flight at once (default: all runnable jobs)",
        )
        p.add_argument(
            "--max-attempts", type=int, default=3, metavar="N",
            help="attempts per job this session, incl. the first (default 3)",
        )
        p.add_argument(
            "--backoff", type=float, default=0.25, metavar="SECONDS",
            help="first retry delay; doubles per retry (default 0.25)",
        )
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-attempt wall-time budget; a worker past it is "
            "killed and retried (process executor only)",
        )
        p.add_argument(
            "--max-extensions", type=int, default=0, metavar="N",
            help="extra budget rounds for error-targeted jobs that "
            "exhaust npass before reaching target_error (default 0)",
        )
        p.add_argument(
            "--telemetry", type=Path, default=None, metavar="JSONL",
            help="archive campaign.* gauges and job events to this file",
        )
        p.add_argument(
            "--fault", type=str, default=None, metavar="JSON",
            help="inject a deterministic FaultPlan, e.g. "
            '\'{"kill_job": 2, "on_attempt": 1}\' (testing/CI only)',
        )
        p.add_argument("--quiet", action="store_true")

    pc_run = csub.add_parser("run", help="expand a spec and run every job")
    pc_run.add_argument("spec", type=Path, help="campaign spec (JSON)")
    pc_run.add_argument(
        "--dir", type=Path, required=True, dest="campaign_dir",
        help="campaign directory (manifest, per-job archives, catalog)",
    )
    add_exec_flags(pc_run)

    pc_resume = csub.add_parser(
        "resume", help="finish an interrupted campaign (skips done jobs)"
    )
    pc_resume.add_argument("campaign_dir", type=Path)
    pc_resume.add_argument(
        "--retry-failed", action="store_true",
        help="also retry jobs whose attempts were exhausted",
    )
    add_exec_flags(pc_resume)

    pc_status = csub.add_parser("status", help="print the manifest's state")
    pc_status.add_argument("campaign_dir", type=Path)

    pc_report = csub.add_parser(
        "report", help="render the campaign report (optionally as JSON)"
    )
    pc_report.add_argument("campaign_dir", type=Path)
    pc_report.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the report dict to this JSON file",
    )

    p_analyze = sub.add_parser(
        "analyze",
        help="statistical report from a checkpoint, results archive, or "
        "campaign directory (means, errors, tau_int, equilibration, "
        "sign correction, R-hat; see docs/analysis.md)",
    )
    p_analyze.add_argument(
        "path", type=Path,
        help="checkpoint .npz, results .npz, or campaign directory",
    )
    p_analyze.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the report dict to this JSON file",
    )

    sub.add_parser("version", help="print the package version")
    return parser


def _emit(quiet: bool, text: str) -> None:
    if not quiet:
        print(text)


def _build_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    if not args.telemetry:
        return None
    return Telemetry(
        TelemetryWriter(args.telemetry),
        snapshot_every=getattr(args, "telemetry_snapshot_every", 10),
    )


def _build_watchdog(args: argparse.Namespace) -> Optional[WatchdogConfig]:
    if not args.watchdog_every:
        return None
    return WatchdogConfig(
        check_every=args.watchdog_every,
        drift_tol=args.watchdog_drift_tol,
        range_tol=args.watchdog_range_tol,
    )


def cmd_run(args: argparse.Namespace) -> int:
    cfg = load_config(args.input)
    if args.backend is not None:
        from .backends import validate_backend_method

        try:
            validate_backend_method(args.backend, cfg.method)
        except Exception as exc:
            print(f"--backend {args.backend}: {exc}", file=sys.stderr)
            return 2
    if args.precision is not None:
        from .precision import PrecisionError, resolve_policy

        try:
            resolve_policy(args.precision)
        except PrecisionError as exc:
            print(f"--precision {args.precision}: {exc}", file=sys.stderr)
            return 2
    if args.kinetic is not None:
        from .hamiltonian import resolve_kinetic

        try:
            resolve_kinetic(args.kinetic)
        except ValueError as exc:
            print(f"--kinetic {args.kinetic}: {exc}", file=sys.stderr)
            return 2
    # CLI statistics flags override the input file's keys, exactly like
    # --backend / --precision above.
    if args.streaming:
        cfg.streaming = 1
    if args.target_error is not None:
        cfg.target_error = args.target_error
    if args.target_observable is not None:
        cfg.target_obs = args.target_observable
    try:
        cfg.validate()
    except ValueError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    telemetry = _build_telemetry(args)
    sim = cfg.simulation(
        telemetry=telemetry,
        watchdog=_build_watchdog(args),
        backend=args.backend,
        precision=args.precision,
        kinetic=args.kinetic,
    )
    controller = cfg.controller()
    if controller is not None:
        # Attach before any checkpoint load so a resumed run restores
        # the saved decision state into this controller instance.
        sim.attach_controller(controller)
    output = args.output if args.output else args.input.with_suffix(".npz")
    _emit(
        args.quiet,
        f"backend: {sim.engine.backend.name}  precision: {sim.precision}  "
        f"kinetic: {sim.kinetic}",
    )
    try:
        with flops.tally() as flop_tally:
            if telemetry is not None:
                telemetry.add_snapshot_source(
                    lambda reg: reg.set_gauge(
                        "flops.total", flop_tally.total_flops
                    )
                )
                telemetry.event("run_started", input=str(args.input), config=cfg.dumps())
            result = _run_stages(args, cfg, sim, telemetry)
    finally:
        if telemetry is not None:
            telemetry.event("run_done")
            telemetry.close()

    observables = dict(result.observables)
    if result.corrected:
        # Raw sign-weighted averages keep their established names
        # (resume comparisons and older tooling read them); the
        # sign-corrected <O s>/<s> estimates ride alongside.
        for name, est in result.corrected.items():
            if name != "sign":
                observables[f"{name}.corrected"] = est
    save_observables(
        output,
        observables,
        metadata={
            "input": cfg.dumps(),
            "acceptance": result.sweep_stats.acceptance_rate,
            "mean_sign": result.mean_sign,
            "control": result.control,
            "streaming": bool(cfg.streaming),
        },
    )
    _emit(args.quiet, "")
    _emit(args.quiet, result.summary())
    _emit(args.quiet, f"\nobservables -> {output}")
    if args.telemetry:
        _emit(args.quiet, f"telemetry   -> {args.telemetry}")
    return 0


def _autotune_setup(args, cfg, sim):
    """(cache, key) when autotuning is requested, else None."""
    if not (getattr(args, "autotune", False) or cfg.autotune):
        return None
    from .autotune import TuningCache, profile_key

    cache = TuningCache(getattr(args, "tune_cache", None))
    key = profile_key(
        sim.model, backend=sim.engine.backend.name, method=cfg.method
    )
    return cache, key


def _run_stages(args, cfg, sim, telemetry):
    """Warmup (or resume), checkpointed measurement loop, reduction."""
    measured = 0
    tune = _autotune_setup(args, cfg, sim)
    if args.checkpoint and args.checkpoint.exists():
        if tune is not None:
            # A resume must replay the engine shape the original run
            # locked, so only a cache hit applies — never a live tune,
            # whose timings would differ from the first attempt's.
            cache, key = tune
            hit = cache.lookup(key)
            if hit is not None:
                sim.apply_tuning(hit)
                _emit(args.quiet, f"autotune: cache hit -> {hit}")
        load_checkpoint(args.checkpoint, sim)
        # The header's sweep counter, not n_measurements // nmeas: an
        # equilibration discard shrinks the sample count but not the
        # number of sweeps already spent.
        measured = sim.measured_sweeps
        _emit(
            args.quiet,
            f"resumed from {args.checkpoint}: "
            f"{measured}/{cfg.npass} measurement sweeps done",
        )
        if telemetry is not None:
            telemetry.event(
                "checkpoint_resumed",
                path=str(args.checkpoint),
                measured_sweeps=measured,
            )
    else:
        _emit(
            args.quiet,
            f"warmup: {cfg.nwarm} sweeps on {sim.model.lattice} "
            f"(U = {cfg.u}, beta = {cfg.beta:g}, L = {cfg.l})",
        )
        if tune is not None:
            from .autotune import tune_simulation

            cache, key = tune
            result = tune_simulation(
                sim, cache=cache, key=key, telemetry=telemetry
            )
            _emit(args.quiet, result.describe())
            # Tuning trials are real thermalization sweeps: only the
            # remainder of the warmup budget is still owed.
            sim.warmup(max(0, cfg.nwarm - result.sweeps_used))
        else:
            sim.warmup(cfg.nwarm)

    step = max(1, args.checkpoint_every)
    while measured < cfg.npass:
        chunk = min(step, cfg.npass - measured)
        if sim.controller is not None:
            _, done, _ = sim.measure_until(chunk)
            measured += done
            if done < chunk or sim.controller.stopped:
                # Error target met (or a resumed, already-stopped run):
                # the remaining budget is not owed.
                if args.checkpoint:
                    save_checkpoint(args.checkpoint, sim)
                _emit(
                    args.quiet,
                    f"measured {measured}/{cfg.npass} sweeps -- "
                    + (
                        sim.controller.last.describe()
                        if sim.controller.last is not None
                        else "stopped"
                    ),
                )
                break
        else:
            sim.measure_sweeps(chunk)
            measured += chunk
        if args.checkpoint:
            save_checkpoint(args.checkpoint, sim)
            if telemetry is not None:
                telemetry.event(
                    "checkpoint_saved",
                    path=str(args.checkpoint),
                    measured_sweeps=measured,
                )
        _emit(args.quiet, f"measured {measured}/{cfg.npass} sweeps")

    return sim.result(n_warmup=cfg.nwarm, n_measurement=measured)


def cmd_tune(args: argparse.Namespace) -> int:
    from .autotune import TuningCache, profile_key, tune_simulation

    cfg = load_config(args.input)
    if args.backend is not None:
        from .backends import validate_backend_method

        try:
            validate_backend_method(args.backend, cfg.method)
        except Exception as exc:
            print(f"--backend {args.backend}: {exc}", file=sys.stderr)
            return 2
    sim = cfg.simulation(backend=args.backend)
    cache = TuningCache(args.tune_cache)
    key = profile_key(
        sim.model, backend=sim.engine.backend.name, method=cfg.method
    )
    _emit(
        args.quiet,
        f"tuning {sim.model.lattice} (U = {cfg.u}, beta = {cfg.beta:g}, "
        f"L = {cfg.l}) on backend {sim.engine.backend.name}",
    )
    precisions = None
    if args.precisions:
        from .precision import PrecisionError, resolve_policy

        precisions = [p.strip() for p in args.precisions.split(",") if p.strip()]
        try:
            for p in precisions:
                resolve_policy(p)
        except PrecisionError as exc:
            print(f"--precisions {args.precisions}: {exc}", file=sys.stderr)
            return 2
    kinetics = None
    if args.kinetics:
        from .hamiltonian import resolve_kinetic

        kinetics = [k.strip() for k in args.kinetics.split(",") if k.strip()]
        try:
            for k in kinetics:
                resolve_kinetic(k)
        except ValueError as exc:
            print(f"--kinetics {args.kinetics}: {exc}", file=sys.stderr)
            return 2
    result = tune_simulation(
        sim,
        cache=cache,
        key=key,
        force=args.force,
        sweeps_per_candidate=args.trial_sweeps,
        drift_tol=args.drift_tol,
        range_tol=args.range_tol,
        precisions=precisions,
        kinetics=kinetics,
    )
    if not args.quiet:
        for t in result.trials:
            mark = "ok " if t.accepted else "REJ"
            line = (
                f"  {mark} {t.params}  "
                f"{t.sweep_seconds:.4f} s/sweep  drift {t.wrap_drift:.2e}"
            )
            if t.reason:
                line += f"  ({t.reason})"
            print(line)
    _emit(args.quiet, result.describe())
    _emit(args.quiet, f"profile     -> {cache.path}")
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    if not args.jsonl.exists():
        print(f"no such telemetry file: {args.jsonl}", file=sys.stderr)
        return 1
    print(render_report(summarize_jsonl(args.jsonl)))
    return 0


def _scheduler_config(args: argparse.Namespace):
    from .campaign import FaultPlan, SchedulerConfig

    fault = None
    if args.fault:
        import json as _json

        fault = FaultPlan(**_json.loads(args.fault))
    return SchedulerConfig(
        executor=args.executor,
        max_workers=args.max_workers,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff,
        timeout=args.timeout,
        fault_plan=fault,
        retry_failed=getattr(args, "retry_failed", False),
        max_extensions=getattr(args, "max_extensions", 0),
    )


def _campaign_session(args: argparse.Namespace, resume: bool) -> int:
    from .campaign import CampaignSpec, run_campaign

    spec = None
    if not resume:
        spec = CampaignSpec.load(args.spec)
    telemetry = _build_telemetry(args)
    try:
        summary = run_campaign(
            spec,
            args.campaign_dir,
            config=_scheduler_config(args),
            telemetry=telemetry,
            resume=resume,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    counts = summary.counts
    _emit(
        args.quiet,
        f"campaign {'resumed' if resume else 'run'}: "
        + ", ".join(f"{n} {s}" for s, n in sorted(counts.items()) if n)
        + f" ({summary.retries} retries, {summary.elapsed_s:.1f}s)",
    )
    _emit(args.quiet, f"catalog     -> {args.campaign_dir}/catalog.json")
    if args.telemetry:
        _emit(args.quiet, f"telemetry   -> {args.telemetry}")
    return 0 if summary.all_done else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import ManifestError, SpecError

    try:
        if args.campaign_command == "run":
            return _campaign_session(args, resume=False)
        if args.campaign_command == "resume":
            return _campaign_session(args, resume=True)
        if args.campaign_command == "status":
            from .campaign import build_report, render_report

            print(render_report(build_report(args.campaign_dir)))
            return 0
        if args.campaign_command == "report":
            from .campaign import build_report, render_report, write_report_json

            if args.json is not None:
                report = write_report_json(args.campaign_dir, args.json)
            else:
                report = build_report(args.campaign_dir)
            print(render_report(report))
            if args.json is not None:
                print(f"\nreport JSON -> {args.json}")
            return 0
    except (ManifestError, SpecError, FileNotFoundError, ValueError) as exc:
        print(f"campaign {args.campaign_command}: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


def cmd_analyze(args: argparse.Namespace) -> int:
    from .stats import analyze_path, render_analysis

    try:
        report = analyze_path(args.path)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    print(render_analysis(report))
    if args.json is not None:
        import json as _json

        args.json.write_text(_json.dumps(report, indent=1, sort_keys=True))
        print(f"\nreport JSON -> {args.json}")
    return 0


def _qmclint_summary() -> Optional[str]:
    """``"2.0.0 (14 rules)"`` — pins the analyzer that blessed a build.

    qmclint lives in ``tools/`` (not installed with the package), so bug
    reports from a source checkout get the version while installed-only
    environments simply omit the line.
    """
    try:
        try:
            import qmclint
        except ImportError:
            tools = Path(__file__).resolve().parents[2] / "tools"
            if not (tools / "qmclint" / "__init__.py").exists():
                return None
            sys.path.insert(0, str(tools))
            try:
                import qmclint
            finally:
                sys.path.remove(str(tools))
        return f"{qmclint.__version__} ({len(qmclint.ALL_RULES)} rules)"
    except Exception:
        return None


def cmd_info(args: argparse.Namespace) -> int:
    cfg = load_config(args.input)
    model = cfg.model()
    report = chain_conditioning_report(model)
    n = model.n_sites
    matrices_cached = 2 * (cfg.l // cfg.north)  # cluster cache, both spins
    mem_mb = matrices_cached * n * n * 8 / 1e6
    print(f"input            {args.input}")
    print(f"lattice          {model.lattice} (N = {n})")
    print(f"U = {cfg.u:g}, t = {cfg.t:g}, mu = {cfg.mu:g}")
    print(f"beta = {cfg.beta:g}  (L = {cfg.l}, dtau = {cfg.dtau:g})")
    print(f"HS coupling nu   {model.nu:.6f}")
    print(f"method           {cfg.method}, k = {cfg.north}, delay = {cfg.ndelay}")
    print(f"backend          {cfg.backend}")
    from .precision import resolve_policy

    policy = resolve_policy(None if cfg.precision == "auto" else cfg.precision)
    print(f"precision        {policy.name} ({policy.description})")
    from .hamiltonian import resolve_kinetic

    kin = resolve_kinetic(None if cfg.kinetic == "auto" else cfg.kinetic)
    kin_desc = {
        "exact": "dense exp(-dtau K) GEMMs",
        "checkerboard": "split bond-group rotation passes, O(N) apply",
    }[kin]
    print(f"kinetic          {kin} ({kin_desc})")
    print(f"conditioning     {report.describe()}")
    if cfg.north > report.suggested_cluster_size:
        print(
            f"WARNING: configured k = {cfg.north} exceeds the safe bound "
            f"{report.suggested_cluster_size}; expect accuracy loss"
        )
    print(f"cluster cache    ~{mem_mb:.1f} MB ({matrices_cached} matrices)")
    print(f"sweeps           {cfg.nwarm} warmup + {cfg.npass} measurement")
    from .autotune import TuningCache, profile_key

    cache = TuningCache(args.tune_cache)
    profiles = cache.entries()
    stats = cache.stats()
    print(
        f"tuning cache     {cache.path} ({len(profiles)} profiles, "
        f"{stats['hits']} hits / {stats['misses']} misses)"
    )
    profile = profiles.get(
        profile_key(model, backend=cfg.backend, method=cfg.method)
    )
    if profile is not None:
        print(
            f"tuned profile    k = {profile['cluster_size']}, "
            f"delay = {profile['max_delay']}"
        )
    else:
        print("tuned profile    none for this workload (run 'repro tune')")
    lint = _qmclint_summary()
    if lint is not None:
        print(f"qmclint          {lint}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "info":
        return cmd_info(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "telemetry-report":
        return cmd_telemetry_report(args)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
