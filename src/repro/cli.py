"""Command-line interface: ``python -m repro <command> ...``.

Mirrors how QUEST is driven in production — an input file in, a results
archive out — with checkpoint/resume for long runs:

``run``
    Execute the simulation an input file describes; write observables to
    ``<input>.npz``; optionally checkpoint every N sweeps and resume;
    optionally archive a JSONL telemetry stream (``--telemetry``) with a
    numerical-health watchdog (``--watchdog-every``).

``info``
    Parse an input file and report the derived quantities a user wants
    before committing hours: beta, nu, matrix sizes, memory estimate and
    the conditioning-based safe cluster size.

``telemetry-report``
    Summarize a JSONL telemetry archive from a previous (or still
    running) ``run --telemetry`` into a Table-I-style digest.

``version``
    Print the package version.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .dqmc import load_checkpoint, load_config, save_checkpoint
from .io import save_observables
from .linalg import chain_conditioning_report, flops
from .telemetry import (
    Telemetry,
    TelemetryWriter,
    WatchdogConfig,
    render_report,
    summarize_jsonl,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DQMC for the Hubbard model (IPDPS 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the simulation in an input file")
    p_run.add_argument("input", type=Path, help="QUEST-style input file")
    p_run.add_argument(
        "--output", type=Path, default=None,
        help="results archive (default: <input>.npz)",
    )
    p_run.add_argument(
        "--checkpoint", type=Path, default=None,
        help="checkpoint file to write during the run (and resume from "
        "if it already exists)",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, default=100, metavar="SWEEPS",
        help="measurement sweeps between checkpoints (default 100)",
    )
    p_run.add_argument(
        "--quiet", action="store_true", help="suppress the progress lines"
    )
    p_run.add_argument(
        "--backend", type=str, default=None, metavar="NAME",
        help="execution backend: numpy, threaded, gpu-sim or cupy "
        "(default: the input file's 'backend' key, else $REPRO_BACKEND, "
        "else numpy); physics is backend-independent",
    )
    p_run.add_argument(
        "--telemetry", type=Path, default=None, metavar="JSONL",
        help="archive metrics snapshots and structured events to this "
        "JSONL file (inspectable mid-run; see docs/observability.md)",
    )
    p_run.add_argument(
        "--telemetry-snapshot-every", type=int, default=10, metavar="SWEEPS",
        help="sweeps between full metric snapshots in the telemetry "
        "stream (default 10; 0 = only a final snapshot)",
    )
    p_run.add_argument(
        "--watchdog-every", type=int, default=0, metavar="SWEEPS",
        help="sample wrap drift + graded conditioning every N sweeps and "
        "force a refresh past tolerance (default 0 = watchdog off; each "
        "sample costs ~one stratification)",
    )
    p_run.add_argument(
        "--watchdog-drift-tol", type=float, default=1e-6, metavar="TOL",
        help="wrap-drift relative-error alert threshold (default 1e-6)",
    )
    p_run.add_argument(
        "--watchdog-range-tol", type=float, default=1e14, metavar="TOL",
        help="graded dynamic-range alert threshold (default 1e14)",
    )

    p_info = sub.add_parser("info", help="analyze an input file without running")
    p_info.add_argument("input", type=Path)

    p_report = sub.add_parser(
        "telemetry-report",
        help="summarize a JSONL telemetry archive (Table-I-style view)",
    )
    p_report.add_argument("jsonl", type=Path, help="telemetry file from run --telemetry")

    sub.add_parser("version", help="print the package version")
    return parser


def _emit(quiet: bool, text: str) -> None:
    if not quiet:
        print(text)


def _build_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    if not args.telemetry:
        return None
    return Telemetry(
        TelemetryWriter(args.telemetry),
        snapshot_every=args.telemetry_snapshot_every,
    )


def _build_watchdog(args: argparse.Namespace) -> Optional[WatchdogConfig]:
    if not args.watchdog_every:
        return None
    return WatchdogConfig(
        check_every=args.watchdog_every,
        drift_tol=args.watchdog_drift_tol,
        range_tol=args.watchdog_range_tol,
    )


def cmd_run(args: argparse.Namespace) -> int:
    cfg = load_config(args.input)
    if args.backend is not None:
        from .backends import validate_backend_method

        try:
            validate_backend_method(args.backend, cfg.method)
        except Exception as exc:
            print(f"--backend {args.backend}: {exc}", file=sys.stderr)
            return 2
    telemetry = _build_telemetry(args)
    sim = cfg.simulation(
        telemetry=telemetry,
        watchdog=_build_watchdog(args),
        backend=args.backend,
    )
    output = args.output if args.output else args.input.with_suffix(".npz")
    _emit(args.quiet, f"backend: {sim.engine.backend.name}")
    try:
        with flops.tally() as flop_tally:
            if telemetry is not None:
                telemetry.add_snapshot_source(
                    lambda reg: reg.set_gauge(
                        "flops.total", flop_tally.total_flops
                    )
                )
                telemetry.event("run_started", input=str(args.input), config=cfg.dumps())
            result = _run_stages(args, cfg, sim, telemetry)
    finally:
        if telemetry is not None:
            telemetry.event("run_done")
            telemetry.close()

    save_observables(
        output,
        result.observables,
        metadata={
            "input": cfg.dumps(),
            "acceptance": result.sweep_stats.acceptance_rate,
            "mean_sign": result.mean_sign,
        },
    )
    _emit(args.quiet, "")
    _emit(args.quiet, result.summary())
    _emit(args.quiet, f"\nobservables -> {output}")
    if args.telemetry:
        _emit(args.quiet, f"telemetry   -> {args.telemetry}")
    return 0


def _run_stages(args, cfg, sim, telemetry):
    """Warmup (or resume), checkpointed measurement loop, reduction."""
    measured = 0
    if args.checkpoint and args.checkpoint.exists():
        load_checkpoint(args.checkpoint, sim)
        measured = sim.collector.n_measurements // cfg.nmeas
        _emit(
            args.quiet,
            f"resumed from {args.checkpoint}: "
            f"{measured}/{cfg.npass} measurement sweeps done",
        )
        if telemetry is not None:
            telemetry.event(
                "checkpoint_resumed",
                path=str(args.checkpoint),
                measured_sweeps=measured,
            )
    else:
        _emit(
            args.quiet,
            f"warmup: {cfg.nwarm} sweeps on {sim.model.lattice} "
            f"(U = {cfg.u}, beta = {cfg.beta:g}, L = {cfg.l})",
        )
        sim.warmup(cfg.nwarm)

    step = max(1, args.checkpoint_every)
    while measured < cfg.npass:
        chunk = min(step, cfg.npass - measured)
        sim.measure_sweeps(chunk)
        measured += chunk
        if args.checkpoint:
            save_checkpoint(args.checkpoint, sim)
            if telemetry is not None:
                telemetry.event(
                    "checkpoint_saved",
                    path=str(args.checkpoint),
                    measured_sweeps=measured,
                )
        _emit(args.quiet, f"measured {measured}/{cfg.npass} sweeps")

    return sim.result(n_warmup=cfg.nwarm, n_measurement=cfg.npass)


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    if not args.jsonl.exists():
        print(f"no such telemetry file: {args.jsonl}", file=sys.stderr)
        return 1
    print(render_report(summarize_jsonl(args.jsonl)))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    cfg = load_config(args.input)
    model = cfg.model()
    report = chain_conditioning_report(model)
    n = model.n_sites
    matrices_cached = 2 * (cfg.l // cfg.north)  # cluster cache, both spins
    mem_mb = matrices_cached * n * n * 8 / 1e6
    print(f"input            {args.input}")
    print(f"lattice          {model.lattice} (N = {n})")
    print(f"U = {cfg.u:g}, t = {cfg.t:g}, mu = {cfg.mu:g}")
    print(f"beta = {cfg.beta:g}  (L = {cfg.l}, dtau = {cfg.dtau:g})")
    print(f"HS coupling nu   {model.nu:.6f}")
    print(f"method           {cfg.method}, k = {cfg.north}, delay = {cfg.ndelay}")
    print(f"backend          {cfg.backend}")
    print(f"conditioning     {report.describe()}")
    if cfg.north > report.suggested_cluster_size:
        print(
            f"WARNING: configured k = {cfg.north} exceeds the safe bound "
            f"{report.suggested_cluster_size}; expect accuracy loss"
        )
    print(f"cluster cache    ~{mem_mb:.1f} MB ({matrices_cached} matrices)")
    print(f"sweeps           {cfg.nwarm} warmup + {cfg.npass} measurement")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "info":
        return cmd_info(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "telemetry-report":
        return cmd_telemetry_report(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
