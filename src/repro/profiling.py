"""Per-phase wall-clock profiling (paper Table I).

The paper breaks a full QUEST run into five phases — delayed rank-1
update, stratification, clustering, wrapping, physical measurements — and
reports each as a percentage of total time. :class:`PhaseProfiler` is the
lightweight accumulator every component of this package reports into; the
Table I benchmark simply prints its percentages.

``perf_counter`` granularity is ~ns and each phase runs for many
microseconds at minimum, so measurement overhead is negligible relative
to the phases being timed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["PhaseProfiler", "PHASES"]

#: Table I's row order.
PHASES = (
    "delayed_update",
    "stratification",
    "clustering",
    "wrapping",
    "measurements",
)


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase.

    Phases may nest only if they are distinct (an inner phase's time is
    *also* counted in the outer phase — matching how the paper buckets
    stratification vs. the clustering it triggers, which QUEST reports as
    separate line items; callers here keep them disjoint).
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._t0 = time.perf_counter()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + dt
            self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total(self) -> float:
        """Wall-clock since construction (not just the sum of phases)."""
        return time.perf_counter() - self._t0

    @property
    def accounted(self) -> float:
        return float(sum(self.seconds.values()))

    def percentages(self) -> Dict[str, float]:
        """Phase shares of *accounted* time, in percent (Table I's unit)."""
        tot = self.accounted
        if tot == 0.0:
            return {k: 0.0 for k in self.seconds}
        return {k: 100.0 * v / tot for k, v in self.seconds.items()}

    def merge(self, other: "PhaseProfiler") -> None:
        for k, v in other.seconds.items():
            self.seconds[k] = self.seconds.get(k, 0.0) + v
        for k, c in other.calls.items():
            self.calls[k] = self.calls.get(k, 0) + c

    def export_to_registry(self, registry, prefix: str = "phase.") -> None:
        """Write per-phase seconds/calls as gauges into a
        :class:`~repro.telemetry.MetricsRegistry`.

        The bridge between the wall-clock accumulator (Table I's data
        source) and the telemetry pipeline: registered once as a
        snapshot source, so every periodic JSONL snapshot carries the
        live phase breakdown and ``repro telemetry-report`` can render
        the Table-I view from the archive alone.
        """
        for name, seconds in self.seconds.items():
            registry.set_gauge(f"{prefix}{name}.seconds", seconds)
        for name, calls in self.calls.items():
            registry.set_gauge(f"{prefix}{name}.calls", float(calls))
        registry.set_gauge(f"{prefix}total.seconds", self.accounted)

    def report(self) -> str:
        """A Table I-style text block."""
        pct = self.percentages()
        lines = ["phase                 seconds      share"]
        for name in PHASES:
            if name in self.seconds:
                lines.append(
                    f"{name:<20} {self.seconds[name]:>9.3f}   {pct[name]:>6.1f}%"
                )
        for name in sorted(set(self.seconds) - set(PHASES)):
            lines.append(
                f"{name:<20} {self.seconds[name]:>9.3f}   {pct[name]:>6.1f}%"
            )
        return "\n".join(lines)


class _NullProfiler(PhaseProfiler):
    """No-op profiler so call sites never branch on None."""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:  # noqa: ARG002
        yield


def ensure_profiler(profiler: Optional[PhaseProfiler]) -> PhaseProfiler:
    """The given profiler, or a shared no-op instance."""
    return profiler if profiler is not None else _NULL


_NULL = _NullProfiler()
