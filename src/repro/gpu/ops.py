"""GPU clustering and wrapping (paper Algorithms 4 and 6, plus fused forms).

The fixed kinetic exponentials ``B = exp(-dtau K)`` and ``B^{-1}`` live in
device memory for the whole simulation (uploaded once, Sec. VI-A); per
call only the diagonals ``V`` travel host->device and one matrix travels
back — ``N*L + N^2`` floats per cluster rebuild, which the paper notes is
negligible against the compute.

Two implementations of each operation are provided:

* ``*_cublas`` — the paper's straightforward CUBLAS listings (Algorithm 4
  for clustering, Algorithm 6 for wrapping): dcopy + a *launch per row*
  (dscal) for every diagonal scaling.
* ``*_fused``  — the same operations with the custom kernels of
  Algorithms 5 and 7: one launch per scaling, coalesced accesses, and no
  intermediate copy. This is the variant whose clustering performance
  approaches GPU DGEMM in Fig 9.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .cublas import Cublas
from .device import DeviceArray, SimulatedDevice
from .kernels import (
    checkerboard_apply_kernel,
    scale_rows_kernel,
    two_sided_scale_kernel,
)

__all__ = ["GPUPropagatorOps"]


class GPUPropagatorOps:
    """Device-resident propagator operations for one model.

    Parameters
    ----------
    device:
        The simulated device.
    expk, inv_expk:
        Host copies of ``exp(-+dtau K)``; uploaded once at construction.
    fused:
        Select the fused-kernel implementations (Algorithms 5/7) instead
        of the plain CUBLAS listings (Algorithms 4/6) for the scalings.
    structured:
        A :class:`~repro.hamiltonian.CheckerboardPropagator` (or None).
        When set, the kinetic GEMMs of clustering and wrapping are
        replaced by per-bond-group rotation kernels
        (:func:`~repro.gpu.kernels.checkerboard_apply_kernel`) — the
        resident dense exponentials remain uploaded only as the first
        cluster factor / dense fallback.
    """

    def __init__(
        self,
        device: SimulatedDevice,
        expk: np.ndarray,
        inv_expk: np.ndarray,
        fused: bool = True,
        structured=None,
    ):
        n = expk.shape[0]
        if expk.shape != (n, n) or inv_expk.shape != (n, n):
            raise ValueError("propagator matrices must be square and matching")
        self.device = device
        self.blas = Cublas(device)
        self.n = n
        self.fused = fused
        self.structured = structured
        self.d_expk = device.set_matrix(expk)
        self.d_inv_expk = device.set_matrix(inv_expk)
        # Everything on device follows the uploaded exponentials' width:
        # under a narrowed precision policy the backend hands float32
        # masters in, and scratch, diagonals and GEMMs ride along (the
        # SGEMM rate is what buys the Fermi 2:1 speedup).
        self.dtype = self.d_expk.dtype
        # Scratch buffers reused across calls (allocation is not free on
        # a real device either; cudaMalloc churn is a classic slowdown).
        self._t = device.alloc((n, n), dtype=self.dtype)
        self._a = device.alloc((n, n), dtype=self.dtype)
        self._v = device.alloc((n,), dtype=self.dtype)
        self._v2 = device.alloc((n,), dtype=self.dtype)

    # -- diagonal upload -------------------------------------------------------

    def _send_v(self, v: np.ndarray, dest: DeviceArray = None) -> DeviceArray:
        if v.shape != (self.n,):
            raise ValueError("diagonal has wrong length")
        return self.device.set_matrix(v, dest=dest if dest is not None else self._v)

    # -- clustering (Algorithm 4) ------------------------------------------------

    def cluster_product(self, v_diagonals: Sequence[np.ndarray]) -> np.ndarray:
        """Dense ``B_k ... B_1`` with ``B_j = diag(v_j) @ expK`` on device.

        ``v_diagonals`` is ordered rightmost (applied first) to leftmost.
        Returns the product on the host (one D2H transfer).
        """
        if not v_diagonals:
            raise ValueError("empty cluster")
        dev, blas = self.device, self.blas
        dv = self._send_v(np.asarray(v_diagonals[0], dtype=self.dtype))
        if self.fused:
            scale_rows_kernel(dev, dv, self.d_expk, self._a)
        else:
            blas.dcopy(self.d_expk, self._t)
            for j in range(self.n):
                blas.dscal(float(v_diagonals[0][j]), self._t, row=j)
            blas.dcopy(self._t, self._a)
        for v in v_diagonals[1:]:
            dv = self._send_v(np.asarray(v, dtype=self.dtype))
            if self.structured is not None:
                # A <- B_cb A via per-group rotation passes, then V A
                checkerboard_apply_kernel(dev, self.structured, self._a)
                scale_rows_kernel(dev, dv, self._a, self._a)
                continue
            blas.dgemm(self.d_expk, self._a, self._t)  # T <- B x A
            if self.fused:
                scale_rows_kernel(dev, dv, self._t, self._a)  # A <- V T
            else:
                for j in range(self.n):
                    blas.dscal(float(v[j]), self._t, row=j)
                blas.dcopy(self._t, self._a)
        return dev.get_matrix(self._a)

    # -- structured kinetic application ------------------------------------------

    def apply_structured(
        self, a: np.ndarray, side: str = "left", inverse: bool = False
    ) -> np.ndarray:
        """Checkerboard-apply ``a`` on device (upload, rotate, download)."""
        if self.structured is None:
            raise ValueError("no structured propagator bound to these ops")
        dev = self.device
        da = dev.set_matrix(np.asarray(a, dtype=self.dtype))
        checkerboard_apply_kernel(
            dev, self.structured, da, side=side, inverse=inverse
        )
        out = dev.get_matrix(da)
        dev.free(da)
        return out

    # -- wrapping (Algorithm 6) -----------------------------------------------------

    def wrap(self, g: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``diag(v) (expK @ G @ invexpK) diag(v)^{-1}`` on device.

        One G upload, two DGEMMs against the resident exponentials, the
        two-sided scaling, one G download.
        """
        v = np.asarray(v, dtype=self.dtype)
        dev, blas = self.device, self.blas
        dg = dev.set_matrix(np.asarray(g, dtype=self.dtype), dest=self._a)
        dv = self._send_v(v)
        if self.structured is not None:
            # G <- B_cb G B_cb^{-1} as four rotation passes per direction
            checkerboard_apply_kernel(dev, self.structured, dg, side="left")
            checkerboard_apply_kernel(
                dev, self.structured, dg, side="right", inverse=True
            )
        else:
            blas.dgemm(self.d_expk, dg, self._t)  # T <- B G
            blas.dgemm(self._t, self.d_inv_expk, dg)  # G <- T B^{-1}
        if self.fused:
            two_sided_scale_kernel(dev, dv, dg)
        else:
            for i in range(self.n):
                blas.dscal(float(v[i]), dg, row=i)
            # Column scalings: CUBLAS dscal with stride n; the simulated
            # cost is the same bandwidth-bound launch per column.
            payload = dg._payload()
            inv = 1.0 / v
            for j in range(self.n):
                payload[:, j] *= inv[j]
                dev.kernel_launches += 1
                dev.tick(
                    dev.model.time_bandwidth_kernel(2 * payload[:, j].nbytes)
                )
        return dev.get_matrix(dg)

    def unwrap(self, g: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``diag(v)^{-1} (invexpK @ (. ) @ expK) diag(v)`` — the exact
        inverse composition of :meth:`wrap`, scalings first.

        Rows are scaled by the host-formed ``1/v`` and columns by the
        *original* ``v`` (re-reciprocating on device would not be bitwise
        ``v``); then two DGEMMs against the resident exponentials.
        """
        v = np.asarray(v, dtype=self.dtype)
        dev, blas = self.device, self.blas
        dg = dev.set_matrix(np.asarray(g, dtype=self.dtype), dest=self._a)
        vinv = 1.0 / v
        dvinv = self._send_v(vinv)
        if self.fused:
            dv = self._send_v(v, dest=self._v2)
            two_sided_scale_kernel(dev, dvinv, dg, col_v=dv)
        else:
            for i in range(self.n):
                blas.dscal(float(vinv[i]), dg, row=i)
            payload = dg._payload()
            for j in range(self.n):
                payload[:, j] *= v[j]
                dev.kernel_launches += 1
                dev.tick(
                    dev.model.time_bandwidth_kernel(2 * payload[:, j].nbytes)
                )
        if self.structured is not None:
            checkerboard_apply_kernel(
                dev, self.structured, dg, side="left", inverse=True
            )
            checkerboard_apply_kernel(dev, self.structured, dg, side="right")
        else:
            blas.dgemm(self.d_inv_expk, dg, self._t)  # T <- B^{-1} G'
            blas.dgemm(self._t, self.d_expk, dg)  # G <- T B
        return dev.get_matrix(dg)
