"""CUBLAS-subset API over the simulated device.

The exact routine set the paper's Algorithms 4 and 6 call —
``cublasDcopy``, ``cublasDscal``, ``cublasDgemm`` plus the transfer
helpers on the device — with CUBLAS-like semantics (in-place scal on a
row/vector view, GEMM with optional transposes and alpha/beta). Each call
advances the virtual clock per the device's performance model and bumps
the launch counters, so "how many kernel launches did this algorithm
cost" is a measurable, testable quantity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..linalg import flops
from .device import DeviceArray, DeviceError, SimulatedDevice

__all__ = ["Cublas"]


class Cublas:
    """A CUBLAS handle bound to one simulated device."""

    def __init__(self, device: SimulatedDevice):
        self.device = device

    def _check(self, *arrays: DeviceArray) -> None:
        for a in arrays:
            if a.device is not self.device:
                raise DeviceError("array bound to a different device")

    # -- level 1 -----------------------------------------------------------

    def dcopy(self, src: DeviceArray, dst: DeviceArray) -> None:
        """``dst <- src`` (device-to-device, bandwidth-bound)."""
        self._check(src, dst)
        if src.shape != dst.shape:
            raise DeviceError("dcopy shape mismatch")
        dst._payload()[...] = src._payload()
        self.device.kernel_launches += 1
        self.device.tick(self.device.model.time_bandwidth_kernel(2 * src.nbytes))

    def dscal(self, alpha: float, x: DeviceArray, row: Optional[int] = None) -> None:
        """``x <- alpha * x`` over the whole array or one row view.

        The per-row form is what Algorithm 4 calls n times per B matrix —
        n separate kernel launches, each reading a strided row: exactly
        the launch/locality problem Algorithm 5's fused kernel removes.
        """
        self._check(x)
        data = x._payload()
        if row is None:
            data *= alpha
            nbytes = 2 * data.nbytes
        else:
            if not 0 <= row < data.shape[0]:
                raise DeviceError("row out of range")
            data[row, :] *= alpha
            nbytes = 2 * data[row, :].nbytes
        self.device.kernel_launches += 1
        self.device.tick(self.device.model.time_bandwidth_kernel(nbytes))

    # -- level 3 --------------------------------------------------------------

    def dgemm(
        self,
        a: DeviceArray,
        b: DeviceArray,
        c: DeviceArray,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: bool = False,
        transb: bool = False,
    ) -> None:
        """``C <- alpha op(A) op(B) + beta C``."""
        self._check(a, b, c)
        pa = a._payload().T if transa else a._payload()
        pb = b._payload().T if transb else b._payload()
        m, k = pa.shape
        k2, n = pb.shape
        if k != k2 or c.shape != (m, n):
            raise DeviceError("dgemm shape mismatch")
        pc = c._payload()
        prod = pa @ pb
        if beta == 0.0:
            np.multiply(prod, alpha, out=pc)
        else:
            pc *= beta
            pc += alpha * prod
        self.device.kernel_launches += 1
        self.device.gemm_count += 1
        flops.record("gpu_gemm", flops.gemm_flops(m, n, k))
        # Operand width picks the DGEMM vs SGEMM rate (C2050: 2:1 peak).
        self.device.tick(self.device.model.time_gemm(m, n, k, dtype=pa.dtype))
