"""Analytic performance model of the paper's GPU node.

The paper's GPU experiments (Sec. VI, Figs 9-10) ran on one Carver node:
a two-socket four-core Intel Nehalem plus an Nvidia Tesla C2050 (448 CUDA
cores, 515 GFlop/s double-precision peak, 144 GB/s device memory, PCIe
2.0 x16 at ~6-8 GB/s effective). No physical GPU exists in this
environment, so the simulated device advances a virtual clock using this
model; every constant is documented against its hardware origin and the
*shapes* that matter for the figures — GEMM efficiency ramping with
matrix size, scaling kernels being bandwidth-bound, transfers amortized
over whole cluster products — are structural properties of the model,
not tuned outputs.

Model forms
-----------
* GEMM:   ``time = latency + flops / rate(n)`` with
  ``rate(n) = R_inf * n^3 / (n^3 + n_half^3)`` — the standard
  half-performance-size saturation curve (Hockney's n_1/2 applied to
  GEMM), matching the measured C2050 DGEMM ramp from ~40 GF/s at n = 256
  to ~290 GF/s at n = 2048. The C2050's single-precision peak is 1030
  GF/s — the Fermi 2:1 SP:DP ratio — so the model carries a second
  asymptotic rate for float32 operands and ``time_gemm`` selects by the
  operand dtype; bandwidth-bound kernels and transfers need no second
  constant because their cost is in *bytes*, which float32 halves
  automatically.
* Bandwidth-bound kernels (scalings, copies): ``time = latency +
  bytes / B_eff`` — they do O(1) flops per element, so memory traffic is
  the cost; ``B_eff`` is the achievable (not peak) device bandwidth.
* PCIe transfers: ``time = latency + bytes / B_pcie``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GPUModel", "CPUModel", "TESLA_C2050", "NEHALEM_8CORE"]


def _is_single(dtype) -> bool:
    """True when ``dtype`` selects the single-precision rate."""
    return dtype is not None and np.dtype(dtype).itemsize == 4


@dataclass(frozen=True)
class GPUModel:
    """Timing model of a discrete GPU accelerator."""

    name: str
    #: asymptotic DGEMM rate, flop/s
    gemm_rate_inf: float
    #: matrix size at which DGEMM reaches half of gemm_rate_inf
    gemm_n_half: float
    #: achievable device-memory bandwidth, bytes/s
    mem_bandwidth: float
    #: host<->device bandwidth, bytes/s
    pcie_bandwidth: float
    #: fixed cost of one kernel launch, s
    kernel_latency: float
    #: fixed cost of one host<->device transfer, s
    transfer_latency: float
    #: asymptotic SGEMM rate, flop/s; 0 means "not modeled" and float32
    #: GEMMs fall back (conservatively) to the double-precision rate
    gemm_rate_inf_sp: float = 0.0

    def gemm_rate(self, n: float, dtype=None) -> float:
        """Size-dependent GEMM rate (flop/s) for an n x n x n product.

        ``dtype`` selects the precision: float32 operands use the SGEMM
        asymptote when one is modeled. The half-performance size is
        shared — it is set by the blocking of the CUBLAS kernels, not by
        the operand width.
        """
        rate_inf = self.gemm_rate_inf
        if _is_single(dtype) and self.gemm_rate_inf_sp > 0.0:
            rate_inf = self.gemm_rate_inf_sp
        n3 = float(n) ** 3
        return rate_inf * n3 / (n3 + self.gemm_n_half**3)

    def time_gemm(self, m: int, n: int, k: int, dtype=None) -> float:
        flops = 2.0 * m * n * k
        eff_n = (m * n * k) ** (1.0 / 3.0)
        return self.kernel_latency + flops / self.gemm_rate(eff_n, dtype=dtype)

    def time_bandwidth_kernel(self, nbytes: float) -> float:
        """A kernel whose cost is pure memory traffic (scaling, copy)."""
        return self.kernel_latency + nbytes / self.mem_bandwidth

    def time_checkerboard_pass(
        self, n_bonds: int, ncols: int, itemsize: int = 8
    ) -> float:
        """One bond-group rotation pass of the checkerboard propagator.

        A thread per bond streams its two operand rows in and out
        (``4 * n_bonds * ncols`` elements of traffic) doing O(1) flops per
        element — bandwidth-bound like the scaling kernels, so the cost
        is bytes over ``mem_bandwidth`` plus one launch. Summed over the
        ~4-6 groups this is O(N^2) traffic versus the dense propagator
        GEMM's O(N^3) flops, which is why the structured path moves the
        Fig 9/10 crossover toward smaller lattices.
        """
        nbytes = 4.0 * n_bonds * ncols * itemsize
        return self.kernel_latency + nbytes / self.mem_bandwidth

    def time_transfer(self, nbytes: float) -> float:
        return self.transfer_latency + nbytes / self.pcie_bandwidth


@dataclass(frozen=True)
class CPUModel:
    """Coarse timing model of the host CPU (for hybrid what-if studies)."""

    name: str
    gemm_rate_inf: float
    gemm_n_half: float
    #: sustained rate of the unpivoted QR relative to GEMM
    qr_fraction: float
    #: sustained rate of the pivoted QR relative to GEMM
    qrp_fraction: float

    def gemm_rate(self, n: float) -> float:
        n3 = float(n) ** 3
        return self.gemm_rate_inf * n3 / (n3 + self.gemm_n_half**3)

    def time_gemm(self, m: int, n: int, k: int) -> float:
        eff_n = (m * n * k) ** (1.0 / 3.0)
        return 2.0 * m * n * k / self.gemm_rate(eff_n)

    def time_qr(self, m: int, n: int, pivoted: bool = False) -> float:
        from ..linalg import flops as _f

        frac = self.qrp_fraction if pivoted else self.qr_fraction
        fl = _f.qrp_flops(m, n) if pivoted else _f.qr_flops(m, n)
        return fl / (frac * self.gemm_rate(min(m, n)))


#: Tesla C2050: 515 GF/s DP peak (1030 GF/s SP — the Fermi 2:1 ratio);
#: measured CUBLAS DGEMM saturates near ~290-300 GF/s, and SGEMM at the
#: same ~58% efficiency lands near ~600 GF/s; ECC-on STREAM-like
#: bandwidth ~105 GB/s of the 144 GB/s raw; PCIe 2.0 x16 ~6 GB/s
#: effective; ~8 us launch, ~15 us transfer setup. These reproduce the
#: Fig 9 ordering and crossover scales.
TESLA_C2050 = GPUModel(
    name="Tesla C2050 (simulated)",
    gemm_rate_inf=300e9,
    gemm_n_half=360.0,
    mem_bandwidth=105e9,
    pcie_bandwidth=6e9,
    kernel_latency=8e-6,
    transfer_latency=15e-6,
    gemm_rate_inf_sp=600e9,
)

#: Two-socket quad-core Nehalem (Carver node): ~85 GF/s DP peak over 8
#: cores; MKL DGEMM sustains ~75 GF/s at large n; DGEQRF ~60% and DGEQP3
#: ~25% of DGEMM at DQMC sizes (the Fig 1 structure).
NEHALEM_8CORE = CPUModel(
    name="2x Nehalem E5530 (simulated)",
    gemm_rate_inf=75e9,
    gemm_n_half=220.0,
    qr_fraction=0.6,
    qrp_fraction=0.25,
)
