"""Algorithm 3 executed (almost) entirely on the simulated device.

The paper's closing outlook: move the stratification itself onto the
GPU. Pre-pivoting is what makes this viable — with DGEQP3, every column
step needs a pivot decision synchronized with the host (or a serialized
device-side reduction); with pre-pivoting, the *only* per-step host
involvement is an n-element norm vector down and an n-element
permutation up. Everything else — chain GEMMs, scalings, the blocked QR,
the T updates — stays in device memory.

Division of labour per chain step:

========================  =============================================
device                    ``C = (F Q) D`` (DGEMM + column-scale kernel),
                          norm reduction, column gather, blocked QR
                          (:class:`~repro.gpu.qr.GpuBlockedQR`),
                          ``T <- (D^{-1} R)(P^T T)`` (row-scale kernel,
                          row gather, DGEMM)
host                      argsort of n norms, diagonal bookkeeping,
                          the final small stable solve (step 4)
========================  =============================================
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg import (
    GradedDecomposition,
    flops,
    stable_inverse_from_graded,
)
from .cublas import Cublas
from .device import SimulatedDevice
from .kernels import (
    extract_diagonal,
    permute_rows_kernel,
    scale_columns_kernel,
    scale_rows_kernel,
)
from .qr import GpuBlockedQR, column_norms_kernel, permute_columns_kernel

__all__ = ["gpu_stratified_decomposition", "gpu_stratified_inverse"]


def _check_diag(d: np.ndarray) -> np.ndarray:
    if np.any(d == 0.0):
        raise np.linalg.LinAlgError("singular factor in the GPU chain")
    return d


def gpu_stratified_decomposition(
    device: SimulatedDevice,
    factors: Sequence[np.ndarray],
    block: int = 64,
) -> GradedDecomposition:
    """Pre-pivoted stratification of a chain, device-resident.

    ``factors`` are host matrices, rightmost first (they are uploaded
    once each — in a full engine they would already live on device as
    cluster products). Returns a host-side graded decomposition ready
    for the final stable solve.
    """
    if not factors:
        raise ValueError("empty factor chain")
    n = factors[0].shape[0]
    blas = Cublas(device)
    qr = GpuBlockedQR(device, block=block)

    # scratch device buffers
    d_c = device.alloc((n, n))
    d_tmp = device.alloc((n, n))
    d_t = device.alloc((n, n))
    d_v = device.alloc((n,))

    # --- first factor: upload, pre-pivot, QR -------------------------------
    d_f = device.set_matrix(np.asarray(factors[0], dtype=np.float64))
    norms = column_norms_kernel(device, d_f)
    piv = np.argsort(-norms, kind="stable")
    permute_columns_kernel(device, d_f, piv, d_c)
    d_q, d_r = qr.factor(d_c)
    d = _check_diag(extract_diagonal(device, d_r))
    # T = (D^{-1} R) P^T: row-scale R on device, then scatter columns.
    device.set_matrix(1.0 / d, dest=d_v)
    scale_rows_kernel(device, d_v, d_r, d_tmp)
    # column scatter = gather with the inverse permutation
    inv = np.empty_like(piv)
    inv[piv] = np.arange(n)
    permute_columns_kernel(device, d_tmp, inv, d_t)
    device.free(d_f)

    # --- chain steps ---------------------------------------------------------
    for f in factors[1:]:
        f = np.asarray(f, dtype=np.float64)
        if f.shape != (n, n):
            raise ValueError("factors must all be square of the same size")
        d_fi = device.set_matrix(f)
        blas.dgemm(d_fi, d_q, d_tmp)  # F @ Q
        device.free(d_fi)
        device.free(d_q)
        device.free(d_r)
        device.set_matrix(d, dest=d_v)
        scale_columns_kernel(device, d_tmp, d_v, d_c)  # C = (F Q) D
        norms = column_norms_kernel(device, d_c)
        piv = np.argsort(-norms, kind="stable")
        permute_columns_kernel(device, d_c, piv, d_tmp)
        d_q, d_r = qr.factor(d_tmp)
        d = _check_diag(extract_diagonal(device, d_r))
        # T <- (D^{-1} R) @ (P^T T): row scale, row gather, DGEMM.
        device.set_matrix(1.0 / d, dest=d_v)
        scale_rows_kernel(device, d_v, d_r, d_tmp)
        permute_rows_kernel(device, d_t, piv, d_c)  # P^T T
        blas.dgemm(d_tmp, d_c, d_t)
        flops.record("gpu_stratification", flops.gemm_flops(n, n, n))

    q_host = device.get_matrix(d_q)
    t_host = device.get_matrix(d_t)
    for arr in (d_c, d_tmp, d_t, d_q, d_r, d_v):
        device.free(arr)
    return GradedDecomposition(q=q_host, d=d, t=t_host)


def gpu_stratified_inverse(
    device: SimulatedDevice,
    factors: Sequence[np.ndarray],
    block: int = 64,
) -> np.ndarray:
    """``(I + F_L ... F_1)^{-1}`` with the chain run on the device.

    Step 4 (the small, final stable solve) remains on the host, as in
    the paper's projected division of labour.
    """
    dec = gpu_stratified_decomposition(device, factors, block=block)
    return stable_inverse_from_graded(dec)
