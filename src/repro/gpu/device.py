"""The simulated CUDA device: memory arena, transfers, virtual clock.

Real results, simulated time. Every operation routed through the device
executes numerically with numpy (so downstream physics is exact) while a
virtual clock advances according to the calibrated
:class:`~repro.gpu.perfmodel.GPUModel`. Transfer and launch counters let
tests assert the *structural* claims of the paper's Sec. VI — e.g. that
Algorithm 4 moves ``N*L + N^2`` floats per cluster rebuild, or that the
fused Algorithm 5 kernel eliminates the per-row launch storm.

Device arrays are deliberately opaque: host numpy code cannot reach the
payload except through an explicit transfer (:meth:`DeviceArray.require_
device` guards against accidental host-side reads, which is exactly the
bug class a real CUDA port has to avoid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .perfmodel import TESLA_C2050, GPUModel

__all__ = ["DeviceArray", "SimulatedDevice", "DeviceError"]


class DeviceError(RuntimeError):
    """Illegal use of the simulated device (host-side access, misuse)."""


@dataclass
class DeviceArray:
    """A matrix resident in (simulated) device memory.

    ``_data`` is private to the device and its kernels; host code gets a
    copy only through :meth:`SimulatedDevice.get_matrix`.
    """

    shape: Tuple[int, ...]
    dtype: np.dtype
    _data: np.ndarray
    device: "SimulatedDevice"
    freed: bool = False

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def _payload(self) -> np.ndarray:
        """Device-internal accessor; raises after free."""
        if self.freed:
            raise DeviceError("use after free of a device array")
        return self._data

    def __array__(self, *args, **kwargs):  # noqa: D105
        raise DeviceError(
            "device arrays cannot be read from the host; "
            "copy back with SimulatedDevice.get_matrix first"
        )


class SimulatedDevice:
    """One GPU with an allocation table, counters and a virtual clock."""

    def __init__(self, model: GPUModel = TESLA_C2050):
        self.model = model
        self.elapsed: float = 0.0  # virtual seconds
        self.allocated_bytes: int = 0
        self.peak_bytes: int = 0
        self.h2d_bytes: int = 0
        self.d2h_bytes: int = 0
        self.h2d_count: int = 0
        self.d2h_count: int = 0
        self.kernel_launches: int = 0
        self.gemm_count: int = 0

    # -- clock -------------------------------------------------------------

    def tick(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self.elapsed += seconds

    def reset_clock(self) -> None:
        self.elapsed = 0.0

    # -- memory ---------------------------------------------------------------

    def alloc(self, shape: Tuple[int, ...], dtype=np.float64) -> DeviceArray:
        """cudaMalloc analogue (contents uninitialized, like the real one)."""
        data = np.empty(shape, dtype=dtype)
        arr = DeviceArray(shape=tuple(shape), dtype=data.dtype, _data=data, device=self)
        self.allocated_bytes += data.nbytes
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        return arr

    def free(self, arr: DeviceArray) -> None:
        if arr.device is not self:
            raise DeviceError("array belongs to a different device")
        if arr.freed:
            raise DeviceError("double free of a device array")
        arr.freed = True
        self.allocated_bytes -= arr.nbytes

    # -- transfers ----------------------------------------------------------------

    def set_matrix(self, host: np.ndarray, dest: Optional[DeviceArray] = None) -> DeviceArray:
        """Host -> device copy (cublasSetMatrix/SetVector analogue).

        The host array's dtype rides along: a float32 upload allocates
        (or fills) a float32 device array, so a narrowed precision
        policy halves both the device footprint and the PCIe bytes, as
        on real hardware. A real cudaMemcpy cannot convert widths, so a
        dtype mismatch against an existing ``dest`` is an error.
        """
        host = np.ascontiguousarray(host)
        if dest is None:
            dest = self.alloc(host.shape, dtype=host.dtype)
        elif dest.shape != host.shape:
            raise DeviceError(f"shape mismatch {dest.shape} vs {host.shape}")
        elif dest.dtype != host.dtype:
            raise DeviceError(
                f"dtype mismatch {dest.dtype} vs {host.dtype} "
                "(device copies cannot convert element width)"
            )
        dest._payload()[...] = host
        self.h2d_bytes += host.nbytes
        self.h2d_count += 1
        self.tick(self.model.time_transfer(host.nbytes))
        return dest

    def get_matrix(self, arr: DeviceArray) -> np.ndarray:
        """Device -> host copy; the only sanctioned host-side read."""
        if arr.device is not self:
            raise DeviceError("array belongs to a different device")
        out = arr._payload().copy()
        self.d2h_bytes += out.nbytes
        self.d2h_count += 1
        self.tick(self.model.time_transfer(out.nbytes))
        return out

    # -- counters ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "elapsed": self.elapsed,
            "h2d_bytes": float(self.h2d_bytes),
            "d2h_bytes": float(self.d2h_bytes),
            "h2d_count": float(self.h2d_count),
            "d2h_count": float(self.d2h_count),
            "kernel_launches": float(self.kernel_launches),
            "gemm_count": float(self.gemm_count),
            "peak_bytes": float(self.peak_bytes),
        }
