"""Simulated-GPU offload layer (paper Sec. VI).

No physical GPU is assumed: :class:`SimulatedDevice` executes every
operation numerically on the host while advancing a virtual clock from a
calibrated Tesla C2050 performance model. The code paths — explicit
device memory, host<->device transfers, CUBLAS calls, fused CUDA-style
kernels — are the ones a real port exercises, and their structural costs
(transfer volume, launch counts) are measurable and tested.
"""

from .cublas import Cublas
from .device import DeviceArray, DeviceError, SimulatedDevice
from .hybrid import HybridGreensEngine
from .kernels import (
    DEFAULT_BLOCK,
    extract_diagonal,
    permute_rows_kernel,
    scale_columns_kernel,
    scale_rows_kernel,
    two_sided_scale_kernel,
)
from .multi import MultiDeviceClusterFarm
from .ops import GPUPropagatorOps
from .perfmodel import NEHALEM_8CORE, TESLA_C2050, CPUModel, GPUModel
from .qr import GpuBlockedQR, column_norms_kernel, permute_columns_kernel
from .stratification import (
    gpu_stratified_decomposition,
    gpu_stratified_inverse,
)

__all__ = [
    "CPUModel",
    "Cublas",
    "DEFAULT_BLOCK",
    "DeviceArray",
    "DeviceError",
    "GPUModel",
    "GPUPropagatorOps",
    "GpuBlockedQR",
    "HybridGreensEngine",
    "MultiDeviceClusterFarm",
    "NEHALEM_8CORE",
    "SimulatedDevice",
    "TESLA_C2050",
    "column_norms_kernel",
    "extract_diagonal",
    "gpu_stratified_decomposition",
    "gpu_stratified_inverse",
    "permute_columns_kernel",
    "permute_rows_kernel",
    "scale_columns_kernel",
    "scale_rows_kernel",
    "two_sided_scale_kernel",
]
