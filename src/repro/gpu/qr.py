"""Blocked QR on the simulated device — the paper's stated future work.

Sec. VI closes: "Our future research direction is to implement most of
the stratification procedure (Algorithm 3) on the GPU using the recent
advances for the QR decomposition on these systems" (citing the
multi-GPU and communication-avoiding QR papers). This module builds that
next step on the simulated device:

* :func:`column_norms_kernel` — one fused reduction launch producing the
  pre-pivot norms on device, with only the length-n result transferred
  back (the pre-pivot *decision* is host-side and O(n log n));
* :func:`permute_columns_kernel` — a gather launch applying the
  pre-pivot permutation in device memory;
* :class:`GpuBlockedQR` — Householder QR in WY form where the panel
  factorization is a (modelled) bandwidth-bound kernel and every
  trailing/accumulation update is a CUBLAS DGEMM. This is exactly the
  shape of the hybrid CPU+GPU QR of Tomov et al. with the panel kept on
  the device, which pre-pivoting makes possible: *no per-column pivot
  decision ever needs to leave the GPU.*

As everywhere in :mod:`repro.gpu`, the numerics execute for real (the
factors agree with the host QR to roundoff — tested) while the virtual
clock charges the performance model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..linalg import flops
from .cublas import Cublas
from .device import DeviceArray, DeviceError, SimulatedDevice

__all__ = ["column_norms_kernel", "permute_columns_kernel", "GpuBlockedQR"]


def column_norms_kernel(device: SimulatedDevice, a: DeviceArray) -> np.ndarray:
    """Column 2-norms of a device matrix; returns a *host* vector.

    One reduction launch (read of A) plus an n-element D2H transfer —
    the entire per-step communication the pre-pivoted algorithm needs,
    versus a round-trip per column for pivoted QR.
    """
    if a.device is not device:
        raise DeviceError("array bound to a different device")
    payload = a._payload()
    m, n = payload.shape
    norms = np.sqrt(np.einsum("ij,ij->j", payload, payload))
    device.kernel_launches += 1
    flops.record("gpu_norms", flops.norms_flops(m, n))
    device.tick(device.model.time_bandwidth_kernel(payload.nbytes))
    device.d2h_bytes += norms.nbytes
    device.d2h_count += 1
    device.tick(device.model.time_transfer(norms.nbytes))
    return norms


def permute_columns_kernel(
    device: SimulatedDevice, a: DeviceArray, piv: np.ndarray, out: DeviceArray
) -> None:
    """``out = a[:, piv]`` in device memory (one gather launch).

    The permutation vector itself is tiny and uploaded with the launch.
    """
    for arr in (a, out):
        if arr.device is not device:
            raise DeviceError("array bound to a different device")
    pa, pout = a._payload(), out._payload()
    if pa.shape != pout.shape or piv.shape != (pa.shape[1],):
        raise DeviceError("permute_columns_kernel shape mismatch")
    np.take(pa, piv, axis=1, out=pout)
    device.kernel_launches += 1
    device.h2d_bytes += piv.nbytes
    device.h2d_count += 1
    device.tick(device.model.time_transfer(piv.nbytes))
    device.tick(device.model.time_bandwidth_kernel(2 * pa.nbytes))


class GpuBlockedQR:
    """WY-form blocked Householder QR with device-resident updates.

    ``factor(a)`` overwrites nothing: it returns new device arrays
    ``(q, r)`` with ``a = q @ r`` (square economic form). Panel work is
    level-2 (modelled bandwidth-bound, one launch per panel); each
    trailing update and the Q accumulation are CUBLAS DGEMMs.
    """

    def __init__(self, device: SimulatedDevice, block: int = 64):
        if block < 1:
            raise DeviceError("block size must be positive")
        self.device = device
        self.blas = Cublas(device)
        self.block = block

    def _panel(self, payload: np.ndarray, k0: int, k1: int) -> Tuple[np.ndarray, np.ndarray]:  # qmclint: disable=QL004
        """Factor the panel columns [k0, k1) in place; returns (W, Y).

        One modelled kernel: the panel's level-2 Householder sweep reads
        and writes the panel ~nb times — bandwidth bound, no GEMM. Its
        flops sit inside the ``gpu_qr`` count :meth:`factor` records.
        """
        m = payload.shape[0]
        nb = k1 - k0
        ys = np.zeros((m - k0, nb))
        betas = np.zeros(nb)
        for j, k in enumerate(range(k0, k1)):
            x = payload[k:, k]
            normx = np.linalg.norm(x)
            v = x.copy()
            if normx != 0.0:
                alpha = -np.copysign(normx, x[0])
                v0 = x[0] - alpha
                v = v / v0
                v[0] = 1.0
                betas[j] = -v0 / alpha
            ys[k - k0 :, j] = v
            w = betas[j] * (v @ payload[k:, k0:k1])
            payload[k:, k0:k1] -= np.outer(v, w)
            payload[k + 1 :, k] = 0.0
        w = np.zeros_like(ys)
        for j in range(nb):
            vj = ys[:, j]
            w[:, j] = betas[j] * (vj - w[:, :j] @ (ys[:, :j].T @ vj))
        self.device.kernel_launches += 1
        panel_bytes = (m - k0) * nb * 8
        self.device.tick(
            self.device.model.time_bandwidth_kernel(2 * nb * panel_bytes)
        )
        return w, ys

    def factor(self, a: DeviceArray) -> Tuple[DeviceArray, DeviceArray]:
        if a.device is not self.device:
            raise DeviceError("array bound to a different device")
        pa = a._payload()
        n = pa.shape[0]
        if pa.shape != (n, n):
            raise DeviceError("square matrices only (the DQMC case)")
        dev, blas = self.device, self.blas

        r_dev = dev.alloc((n, n))
        pr = r_dev._payload()
        pr[...] = pa
        q_dev = dev.alloc((n, n))
        pq = q_dev._payload()
        pq[...] = np.eye(n)

        for k0 in range(0, n, self.block):
            k1 = min(k0 + self.block, n)
            w, y = self._panel(pr, k0, k1)
            nb = k1 - k0
            if k1 < n:
                # trailing update C -= Y (W^T C): two DGEMMs on device.
                # W and Y were produced by the panel kernel and are
                # already device-resident; no transfer happens here.
                c = pr[k0:, k1:]
                wtc = w.T @ c
                dev.kernel_launches += 1
                dev.gemm_count += 1
                dev.tick(dev.model.time_gemm(nb, n - k1, n - k0))
                c -= y @ wtc
                dev.kernel_launches += 1
                dev.gemm_count += 1
                dev.tick(dev.model.time_gemm(n - k0, n - k1, nb))
            # accumulate Q: Q[:, k0:] <- Q[:, k0:] (I - W Y^T)  =>
            # Q[:, k0:] -= (Q[:, k0:] W) Y^T  — two DGEMMs
            qblk = pq[:, k0:]
            qw = qblk @ w
            dev.kernel_launches += 1
            dev.gemm_count += 1
            dev.tick(dev.model.time_gemm(n, nb, n - k0))
            qblk -= qw @ y.T
            dev.kernel_launches += 1
            dev.gemm_count += 1
            dev.tick(dev.model.time_gemm(n, n - k0, nb))
        flops.record("gpu_qr", flops.qr_flops(n, n))
        return q_dev, r_dev
