"""Multi-GPU cluster farming (the paper's ref [34] direction).

The paper cites "QR factorization on a multicore node enhanced with
multiple GPU accelerators" as the technology path past one device. The
DQMC workload has an even easier multi-GPU axis than QR: the ``L/k``
cluster products of a fresh stratification are *independent* — each is a
chain of GEMMs against that device's resident ``exp(-dtau K)`` with no
cross-cluster data flow. So the farm:

* uploads the kinetic exponentials to every device once,
* round-robins cluster rebuilds across devices,
* and consumes the results after all devices finish — the batch's
  virtual wall-clock is the *maximum* of the per-device clock advances
  (they run concurrently), which is what the speedup test asserts.

The serial chain of the stratification itself (QR per step) remains on
one device/host; Amdahl applies and the farm reports both numbers.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .device import SimulatedDevice
from .ops import GPUPropagatorOps
from .perfmodel import TESLA_C2050, GPUModel

__all__ = ["MultiDeviceClusterFarm"]


class MultiDeviceClusterFarm:
    """Builds batches of cluster products across several simulated GPUs.

    Parameters
    ----------
    n_devices:
        Device count (>= 1). One :class:`GPUPropagatorOps` per device,
        each with its own resident propagator copies.
    expk, inv_expk:
        Host kinetic exponentials, uploaded to every device at setup.
    model:
        Per-device performance model (homogeneous farm).
    fused:
        Use the fused scaling kernels (Algorithm 5) on every device.
    """

    def __init__(
        self,
        n_devices: int,
        expk: np.ndarray,
        inv_expk: np.ndarray,
        model: GPUModel = TESLA_C2050,
        fused: bool = True,
    ):
        if n_devices < 1:
            raise ValueError("need at least one device")
        self.devices = [SimulatedDevice(model) for _ in range(n_devices)]
        self.ops = [
            GPUPropagatorOps(dev, expk, inv_expk, fused=fused)
            for dev in self.devices
        ]
        #: accumulated concurrent wall-clock across build_all batches
        self.batch_seconds = 0.0

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def assignment(self, n_clusters: int) -> List[int]:
        """Device index per cluster (round-robin)."""
        return [j % self.n_devices for j in range(n_clusters)]

    def build_all(
        self, v_lists: Sequence[Sequence[np.ndarray]]
    ) -> Tuple[List[np.ndarray], float]:
        """Build every cluster product; returns (products, batch_time).

        ``v_lists[j]`` holds cluster j's per-slice V diagonals, rightmost
        first. ``batch_time`` is the concurrent virtual wall-clock of the
        batch: max over devices of that device's clock advance (each
        device executes its assigned clusters serially; devices overlap).
        """
        if not v_lists:
            return [], 0.0
        start = [dev.elapsed for dev in self.devices]
        products: List[np.ndarray] = []
        for j, vs in enumerate(v_lists):
            ops = self.ops[j % self.n_devices]
            products.append(ops.cluster_product(vs))
        deltas = [
            dev.elapsed - t0 for dev, t0 in zip(self.devices, start)
        ]
        batch = max(deltas)
        self.batch_seconds += batch
        return products, batch

    def total_transfer_bytes(self) -> int:
        return sum(d.h2d_bytes + d.d2h_bytes for d in self.devices)

    def stats(self) -> List[dict]:
        return [d.stats() for d in self.devices]
