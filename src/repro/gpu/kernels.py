"""Custom CUDA-style kernels (paper Algorithms 5 and 7).

The paper's two hand-written kernels replace launch-per-row CUBLAS calls
with single fused launches:

* **Algorithm 5** — ``B_i = diag(V) @ B``: one thread per row, each
  thread holding its ``V_k`` in a register and streaming its row, with
  consecutive threads touching consecutive memory (coalescing).
* **Algorithm 7** — ``G = diag(V) @ G @ diag(V)^{-1}``: same row-per-
  thread layout plus a broadcast read of ``V_j`` per column, served from
  the texture cache on real hardware.

The simulation executes each *thread block* as one vectorized numpy
operation over the block's row range — numerically identical to the
per-thread loops of the paper's listings, while modelling the cost as a
single bandwidth-bound launch (which is the point of the fusion). Block
bookkeeping (grid sizing, tail blocks, out-of-range guard ``k < n``) is
kept explicit so the launch-geometry logic of a real port is exercised
and testable.
"""

from __future__ import annotations

import numpy as np

from ..linalg import flops
from .device import DeviceArray, DeviceError, SimulatedDevice

__all__ = [
    "scale_rows_kernel",
    "scale_columns_kernel",
    "two_sided_scale_kernel",
    "permute_rows_kernel",
    "extract_diagonal",
    "checkerboard_apply_kernel",
    "DEFAULT_BLOCK",
]

#: Threads per block (the C2050-era sweet spot the paper's kernels used).
DEFAULT_BLOCK = 256


def _grid_size(n: int, block: int) -> int:
    """Number of blocks covering n threads (ceil division)."""
    if block < 1:
        raise DeviceError("block size must be positive")
    return (n + block - 1) // block


def scale_rows_kernel(
    device: SimulatedDevice,
    v: DeviceArray,
    b: DeviceArray,
    out: DeviceArray,
    block: int = DEFAULT_BLOCK,
) -> None:
    """Algorithm 5: ``out[k, :] = v[k] * b[k, :]``, one thread per row.

    A single fused launch: cost = one kernel latency + streaming
    ``read(B) + read(V) + write(out)`` bytes. Contrast with Algorithm 4's
    dcopy + n dscal calls for the same operation.
    """
    for arr in (v, b, out):
        if arr.device is not device:
            raise DeviceError("array bound to a different device")
    n_rows, n_cols = b.shape
    if v.shape != (n_rows,) or out.shape != b.shape:
        raise DeviceError("scale_rows_kernel shape mismatch")
    pv, pb, pout = v._payload(), b._payload(), out._payload()

    grid = _grid_size(n_rows, block)
    for blk in range(grid):
        k0 = blk * block
        k1 = min(k0 + block, n_rows)  # the `if k < n` guard of Alg 5
        # t <- V_k (per-thread register); row streamed with stride 1.
        np.multiply(pb[k0:k1], pv[k0:k1, None], out=pout[k0:k1])

    device.kernel_launches += 1
    flops.record("gpu_scale", flops.scale_flops(n_rows, n_cols))
    device.tick(
        device.model.time_bandwidth_kernel(2 * pb.nbytes + pv.nbytes)
    )


def scale_columns_kernel(
    device: SimulatedDevice,
    b: DeviceArray,
    v: DeviceArray,
    out: DeviceArray,
    block: int = DEFAULT_BLOCK,
) -> None:
    """``out[:, j] = b[:, j] * v[j]`` — the stratification step-3a scaling.

    Same row-per-thread layout as Algorithm 5; the column factor is a
    broadcast (texture-cached) read like Algorithm 7's.
    """
    for arr in (v, b, out):
        if arr.device is not device:
            raise DeviceError("array bound to a different device")
    n_rows, n_cols = b.shape
    if v.shape != (n_cols,) or out.shape != b.shape:
        raise DeviceError("scale_columns_kernel shape mismatch")
    pv, pb, pout = v._payload(), b._payload(), out._payload()

    grid = _grid_size(n_rows, block)
    for blk in range(grid):
        k0 = blk * block
        k1 = min(k0 + block, n_rows)
        np.multiply(pb[k0:k1], pv[None, :], out=pout[k0:k1])

    device.kernel_launches += 1
    flops.record("gpu_scale", flops.scale_flops(n_rows, n_cols))
    device.tick(device.model.time_bandwidth_kernel(2 * pb.nbytes + pv.nbytes))


def permute_rows_kernel(
    device: SimulatedDevice,
    a: DeviceArray,
    piv: np.ndarray,
    out: DeviceArray,
) -> None:
    """``out = a[piv, :]`` — the ``P^T T`` row gather of step 3d.

    The permutation (a host decision) rides up with the launch; the
    matrix never leaves device memory.
    """
    for arr in (a, out):
        if arr.device is not device:
            raise DeviceError("array bound to a different device")
    pa, pout = a._payload(), out._payload()
    if pa.shape != pout.shape or piv.shape != (pa.shape[0],):
        raise DeviceError("permute_rows_kernel shape mismatch")
    np.take(pa, piv, axis=0, out=pout)
    device.kernel_launches += 1
    device.h2d_bytes += piv.nbytes
    device.h2d_count += 1
    device.tick(device.model.time_transfer(piv.nbytes))
    device.tick(device.model.time_bandwidth_kernel(2 * pa.nbytes))


def extract_diagonal(device: SimulatedDevice, a: DeviceArray) -> np.ndarray:
    """Copy diag(a) to the host (strided gather + n-element transfer)."""
    if a.device is not device:
        raise DeviceError("array bound to a different device")
    pa = a._payload()
    n = min(pa.shape)
    d = np.ascontiguousarray(np.diag(pa))
    device.kernel_launches += 1
    device.d2h_bytes += d.nbytes
    device.d2h_count += 1
    device.tick(device.model.time_bandwidth_kernel(2 * n * 8))
    device.tick(device.model.time_transfer(d.nbytes))
    return d


def checkerboard_apply_kernel(
    device: SimulatedDevice,
    propagator,
    g: DeviceArray,
    side: str = "left",
    inverse: bool = False,
) -> None:
    """Apply the checkerboard kinetic propagator to ``g`` in place.

    One launch per bond group: a thread per bond streams its two operand
    rows (columns for ``side="right"``) through the 2x2 cosh/sinh
    rotation — coalesced, O(1) flops per element, no GEMM. The simulated
    execution runs the propagator's blocked spelling on the payload so
    device results stay bit-identical to the host backends' structured
    path; the *cost* is modelled as the per-group rotation passes a real
    port would launch (plus one diagonal pass when mu folds in).
    """
    if g.device is not device:
        raise DeviceError("array bound to a different device")
    payload = g._payload()
    if side == "left":
        result = propagator.apply_expk_left(payload, inverse=inverse)
        width = payload.shape[1] if payload.ndim == 2 else 1
    elif side == "right":
        result = propagator.apply_expk_right(payload, inverse=inverse)
        width = payload.shape[0]
    else:
        raise DeviceError(f"checkerboard side must be left/right, got {side!r}")
    payload[...] = result

    itemsize = payload.dtype.itemsize
    for group in propagator.groups:
        device.kernel_launches += 1
        device.tick(
            device.model.time_checkerboard_pass(len(group), width, itemsize)
        )
    if propagator.mu != 0.0:
        # the commuting exp(+-dtau mu) diagonal factor: one streaming pass
        device.kernel_launches += 1
        device.tick(device.model.time_bandwidth_kernel(2 * payload.nbytes))
    flops.record("gpu_structured", propagator.apply_flops(width))


def two_sided_scale_kernel(
    device: SimulatedDevice,
    v: DeviceArray,
    g: DeviceArray,
    block: int = DEFAULT_BLOCK,
    col_v: DeviceArray | None = None,
) -> None:
    """Algorithm 7: in-place ``G[i, j] *= v[i] * col_v[j]``, row per thread,
    with ``col_v = 1/v`` formed on the fly when not supplied.

    The column factor ``u`` is a broadcast read shared by all threads in
    a warp — texture-cached on hardware, a vectorized row multiply here.
    The explicit ``col_v`` form serves the unwrap transform, which needs
    rows scaled by ``1/v`` and columns by the *original* ``v`` (a second
    reciprocal of ``1/v`` would not be bitwise ``v``). Cost model: one
    launch, read + write of G plus one pass of the diagonals per block
    (amortized to ~2 copies of G at these sizes).
    """
    arrays = (v, g) if col_v is None else (v, g, col_v)
    for arr in arrays:
        if arr.device is not device:
            raise DeviceError("array bound to a different device")
    n = g.shape[0]
    if g.shape != (n, n) or v.shape != (n,):
        raise DeviceError("two_sided_scale_kernel shape mismatch")
    if col_v is not None and col_v.shape != (n,):
        raise DeviceError("two_sided_scale_kernel shape mismatch")
    pv, pg = v._payload(), g._payload()
    # texture-cache image of the column factor
    inv = 1.0 / pv if col_v is None else col_v._payload()

    grid = _grid_size(n, block)
    for blk in range(grid):
        k0 = blk * block
        k1 = min(k0 + block, n)
        pg[k0:k1] *= pv[k0:k1, None]
        pg[k0:k1] *= inv[None, :]

    device.kernel_launches += 1
    flops.record("gpu_scale", 2 * flops.scale_flops(n, n))
    device.tick(device.model.time_bandwidth_kernel(2 * pg.nbytes + 2 * pv.nbytes))
