"""Hybrid CPU+GPU Green's function engine (paper Sec. VI, Fig 10).

.. deprecated::
    ``HybridGreensEngine`` is now a thin alias for
    ``GreensFunctionEngine(backend="gpu-sim")`` — the GPU offload lives
    in :class:`repro.backends.SimulatedGPUBackend`, selectable anywhere
    a ``backend=`` knob exists. This class remains only so existing
    callers (and the Fig 10 bench) keep their timing-accounting surface:

* **GPU** (simulated): cluster product rebuilds (Algorithm 4/5) and the
  wrapping transforms (Algorithm 6/7) — the GEMM-dominated, pivot-free
  work.
* **CPU** (real): the stratification chain's QR factorizations and the
  final stable solve — the paper defers porting these and so do we.

Numerical results are bit-for-bit the work of the same numpy kernels as
the CPU engine (the device is a simulator), so physics downstream of a
hybrid engine is identical; only the *timing* story differs. Timing is
split into ``gpu_seconds`` (virtual clock of the simulated device) and
``cpu_seconds`` (measured wall-clock of the host doing the QR work), and
the Fig 10 bench combines them into one GFlops figure, labelled
model-derived in EXPERIMENTS.md.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..core import GreensFunctionEngine
from ..core.stratification import StratificationMethod
from ..hamiltonian import BMatrixFactory, HSField
from ..profiling import PhaseProfiler
from .device import SimulatedDevice
from .perfmodel import TESLA_C2050, GPUModel

__all__ = ["HybridGreensEngine"]


class HybridGreensEngine(GreensFunctionEngine):
    """Deprecated alias: engine pinned to the ``"gpu-sim"`` backend.

    Prefer ``GreensFunctionEngine(..., backend="gpu-sim")`` (or the
    ``backend`` knob on :class:`~repro.dqmc.simulation.Simulation`).
    """

    def __init__(
        self,
        factory: BMatrixFactory,
        field: HSField,
        method: StratificationMethod = "prepivot",
        cluster_size: int = 10,
        profiler: Optional[PhaseProfiler] = None,
        device: Optional[SimulatedDevice] = None,
        model: GPUModel = TESLA_C2050,
        fused: bool = True,
        telemetry=None,
    ):
        warnings.warn(
            "HybridGreensEngine is deprecated; use "
            "GreensFunctionEngine(backend='gpu-sim') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..backends import SimulatedGPUBackend

        # A real profiler is required: the hybrid CPU-time accounting is
        # read off the "stratification" phase.
        profiler = profiler if profiler is not None else PhaseProfiler()
        backend = SimulatedGPUBackend(device=device, model=model, fused=fused)
        super().__init__(
            factory, field, method=method, cluster_size=cluster_size,
            profiler=profiler, telemetry=telemetry, backend=backend,
        )

    @property
    def ops(self):
        """The backend's device-resident propagator operations."""
        return self.backend.ops

    # -- timing accounting --------------------------------------------------------

    @property
    def cpu_seconds(self) -> float:
        """Measured host wall-clock of the QR/stable-solve portion.

        The "clustering"/"wrapping" phases run on the simulated device
        and are accounted on its virtual clock instead; the real seconds
        numpy burns executing them on the host are deliberately excluded
        (on the modelled system they would not be host work at all).
        """
        return self.profiler.seconds.get("stratification", 0.0)

    @property
    def gpu_seconds(self) -> float:
        return self.device.elapsed

    def hybrid_seconds(self) -> float:
        """Combined model time of the run so far.

        CPU and GPU phases in this pipeline are serialized (the paper's
        preliminary implementation does not overlap them), so the hybrid
        time is the plain sum.
        """
        return self.cpu_seconds + self.gpu_seconds
