"""Unit tests for the QR factorization variants."""

import numpy as np
import pytest

from repro.linalg import (
    householder_qp3_blocked,
    householder_qr_blocked,
    householder_qrp,
    qr_nopivot,
    qr_pivoted,
    qr_prepivoted,
)


def random_matrix(rng, m, n, cond=None):
    a = rng.normal(size=(m, n))
    if cond is not None:
        u, _, vt = np.linalg.svd(a, full_matrices=False)
        k = min(m, n)
        s = np.logspace(0, -np.log10(cond), k)
        a = (u * s) @ vt
    return a


def graded_matrix(rng, n, span=12):
    """A column-graded matrix like the stratification chain's C_i."""
    a = rng.normal(size=(n, n))
    scales = np.logspace(0, -span, n)
    return a * scales[None, :]


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLapackPaths:
    @pytest.mark.parametrize("shape", [(8, 8), (12, 8), (30, 30)])
    def test_qr_nopivot_reconstructs(self, rng, shape):
        a = random_matrix(rng, *shape)
        res = qr_nopivot(a)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-12)
        assert res.sync_points == 0
        assert np.array_equal(res.piv, np.arange(shape[1]))

    @pytest.mark.parametrize("shape", [(8, 8), (12, 8), (30, 30)])
    def test_qr_pivoted_reconstructs(self, rng, shape):
        a = random_matrix(rng, *shape)
        res = qr_pivoted(a)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-12)
        assert res.sync_points == min(shape)

    def test_qr_prepivoted_reconstructs(self, rng):
        a = graded_matrix(rng, 20)
        res = qr_prepivoted(a)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-10)
        assert res.sync_points == 1

    def test_orthogonality(self, rng):
        a = random_matrix(rng, 25, 25)
        for fn in (qr_nopivot, qr_pivoted, qr_prepivoted):
            q = fn(a).q
            np.testing.assert_allclose(q.T @ q, np.eye(25), atol=1e-12)

    def test_r_upper_triangular(self, rng):
        a = random_matrix(rng, 16, 16)
        for fn in (qr_nopivot, qr_pivoted, qr_prepivoted):
            r = fn(a).r
            np.testing.assert_allclose(np.tril(r, -1), 0.0, atol=1e-13)

    def test_pivoted_diagonal_descending(self, rng):
        a = random_matrix(rng, 30, 30, cond=1e8)
        r = qr_pivoted(a).r
        d = np.abs(np.diag(r))
        assert np.all(d[1:] <= d[:-1] * (1 + 1e-12))

    def test_prepivot_on_graded_matrix_nearly_descending(self, rng):
        """On an already-graded matrix the pre-pivoted R diagonal is
        descending to within the grading — the paper's key structural
        observation."""
        a = graded_matrix(rng, 24, span=10)
        r = qr_prepivoted(a).r
        d = np.abs(np.diag(r))
        # allow local reorderings but require global grading preserved
        assert d[0] / d[-1] > 1e6

    def test_prepivot_with_external_permutation(self, rng):
        a = graded_matrix(rng, 12)
        piv = np.arange(12)[::-1].copy()
        res = qr_prepivoted(a, piv=piv)
        assert np.array_equal(res.piv, piv)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-10)

    def test_prepivot_rejects_bad_permutation_length(self, rng):
        a = random_matrix(rng, 6, 6)
        with pytest.raises(ValueError):
            qr_prepivoted(a, piv=np.arange(5))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            qr_nopivot(np.ones(5))


class TestReferenceHouseholder:
    @pytest.mark.parametrize("shape", [(10, 10), (15, 10), (10, 15)])
    def test_qrp_reconstructs(self, rng, shape):
        a = random_matrix(rng, *shape)
        res = householder_qrp(a)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-11)

    def test_qrp_matches_lapack_pivots_on_generic_matrix(self, rng):
        a = random_matrix(rng, 12, 12, cond=1e6)
        ours = householder_qrp(a)
        lapack = qr_pivoted(a)
        assert np.array_equal(ours.piv, lapack.piv)
        np.testing.assert_allclose(
            np.abs(np.diag(ours.r)), np.abs(np.diag(lapack.r)), rtol=1e-9
        )

    def test_qrp_diagonal_descending(self, rng):
        a = random_matrix(rng, 20, 20, cond=1e10)
        d = np.abs(np.diag(householder_qrp(a).r))
        assert np.all(d[1:] <= d[:-1] * (1 + 1e-12))

    def test_qrp_counts_sync_points(self, rng):
        a = random_matrix(rng, 9, 9)
        assert householder_qrp(a).sync_points == 9

    def test_qrp_handles_rank_deficiency(self, rng):
        a = random_matrix(rng, 10, 4)
        a = np.hstack([a, a @ rng.normal(size=(4, 6))])  # rank 4, 10 cols
        res = householder_qrp(a)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-10)
        d = np.abs(np.diag(res.r))
        assert np.all(d[4:] < 1e-10 * d[0])

    @pytest.mark.parametrize("block", [1, 4, 32, 100])
    def test_blocked_qr_reconstructs(self, rng, block):
        a = random_matrix(rng, 20, 20)
        res = householder_qr_blocked(a, block=block)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-11)
        assert res.sync_points == 0

    def test_blocked_qr_rectangular(self, rng):
        a = random_matrix(rng, 25, 12)
        res = householder_qr_blocked(a, block=5)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-11)

    def test_blocked_matches_lapack_r_up_to_signs(self, rng):
        a = random_matrix(rng, 16, 16)
        r_ours = householder_qr_blocked(a, block=8).r
        r_lapack = qr_nopivot(a).r
        np.testing.assert_allclose(np.abs(r_ours), np.abs(r_lapack), atol=1e-10)

    def test_blocked_rejects_bad_block(self, rng):
        with pytest.raises(ValueError):
            householder_qr_blocked(random_matrix(rng, 4, 4), block=0)

    def test_zero_column_is_handled(self):
        a = np.zeros((6, 6))
        a[0, 0] = 1.0
        res = householder_qrp(a)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-14)


class TestBlockedQP3:
    """The BLAS-3 pivoted QR (paper ref [25]) — DGEQP3's algorithm."""

    @pytest.mark.parametrize("shape,block", [
        ((12, 12), 4), ((20, 20), 8), ((16, 16), 16),
        ((30, 30), 7), ((25, 25), 32), ((24, 15), 6), ((15, 24), 6),
    ])
    def test_reconstructs(self, rng, shape, block):
        a = random_matrix(rng, *shape)
        res = householder_qp3_blocked(a, block=block)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-11)

    def test_matches_lapack_pivots(self, rng):
        a = random_matrix(rng, 24, 24, cond=1e8)
        ours = householder_qp3_blocked(a, block=8)
        lap = qr_pivoted(a)
        assert np.array_equal(ours.piv, lap.piv)
        np.testing.assert_allclose(
            np.abs(np.diag(ours.r)), np.abs(np.diag(lap.r)), rtol=1e-9
        )

    def test_matches_level2_reference(self, rng):
        a = graded_matrix(rng, 18, span=8)
        blocked = householder_qp3_blocked(a, block=5)
        level2 = householder_qrp(a)
        assert np.array_equal(blocked.piv, level2.piv)
        np.testing.assert_allclose(
            np.abs(blocked.r), np.abs(level2.r), atol=1e-11
        )

    def test_diagonal_descending(self, rng):
        a = random_matrix(rng, 20, 20, cond=1e10)
        d = np.abs(np.diag(householder_qp3_blocked(a, block=6).r))
        assert np.all(d[1:] <= d[:-1] * (1 + 1e-12))

    def test_orthogonality(self, rng):
        a = random_matrix(rng, 22, 22)
        q = householder_qp3_blocked(a, block=8).q
        np.testing.assert_allclose(q.T @ q, np.eye(22), atol=1e-12)

    def test_sync_points_still_per_column(self, rng):
        """Blocking cannot remove the per-column pivot serialization —
        the whole point of the paper's pre-pivoting."""
        a = random_matrix(rng, 10, 10)
        assert householder_qp3_blocked(a, block=4).sync_points == 10

    def test_bad_block_rejected(self, rng):
        with pytest.raises(ValueError):
            householder_qp3_blocked(random_matrix(rng, 4, 4), block=0)
