"""Unit tests for dynamic (time-displaced) observables."""

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import displaced_greens
from repro.hamiltonian import free_dispersion_2d
from repro.lattice import momentum_grid
from repro.measure import (
    DynamicMeasurement,
    local_greens_tau,
    momentum_greens_tau,
    spectral_weight_proxy,
)


@pytest.fixture
def free_setup(rng):
    lat = SquareLattice(4, 4)
    model = HubbardModel(lat, u=0.0, beta=4.0, n_slices=40)
    fac = BMatrixFactory(model)
    field = HSField.random(40, 16, rng)
    return lat, model, fac, field


def free_gk_tau(model, lat, tau):
    k = momentum_grid(lat.lx, lat.ly)
    eps = free_dispersion_2d(k[:, 0], k[:, 1])
    f = 1.0 / (1.0 + np.exp(model.beta * eps))
    return np.exp(-tau * eps) * (1.0 - f)


class TestMomentumGreensTau:
    def test_free_analytic(self, free_setup):
        lat, model, fac, field = free_setup
        l = 19  # tau = 2.0
        g_tau = displaced_greens(fac, field, 1, l)
        got = momentum_greens_tau(lat, g_tau)
        expected = free_gk_tau(model, lat, (l + 1) * model.dtau)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_local_is_k_average(self, free_setup):
        lat, model, fac, field = free_setup
        g_tau = displaced_greens(fac, field, 1, 9)
        gk = momentum_greens_tau(lat, g_tau)
        assert local_greens_tau(g_tau) == pytest.approx(gk.mean(), abs=1e-12)

    def test_decay_with_tau_away_from_fermi_surface(self, free_setup):
        """G(k, tau) at a gapped momentum decays in tau; at the Fermi
        surface it stays ~flat around beta/2."""
        lat, model, fac, field = free_setup
        gk = {}
        for l in (9, 19):
            g_tau = displaced_greens(fac, field, 1, l)
            gk[l] = momentum_greens_tau(lat, g_tau)
        gamma = lat.index(0, 0)  # eps = -4: occupied, G ~ e^{+4 tau} f ...
        pi_pi = lat.index(2, 2)  # eps = +4: empty band edge, decays fast
        fs = lat.index(2, 0)  # eps = 0: Fermi surface
        assert gk[19][pi_pi] < gk[9][pi_pi] * 0.1
        assert gk[19][fs] == pytest.approx(gk[9][fs], rel=0.3)
        del gamma


class TestSpectralWeightProxy:
    def test_fermi_surface_marker_u0(self, free_setup):
        """beta G(k, beta/2) is O(1) on the Fermi surface and tiny at the
        band edges — the standard gaplessness diagnostic."""
        lat, model, fac, field = free_setup
        l_half = 19  # tau = 2.0 = beta/2
        g_half = displaced_greens(fac, field, 1, l_half)
        proxy = spectral_weight_proxy(lat, g_half, model.beta)
        assert proxy[lat.index(2, 0)] > 1.0  # (pi, 0): gapless
        assert proxy[lat.index(2, 2)] < 0.01  # (pi, pi): far above E_F
        assert proxy[lat.index(0, 0)] < 0.01  # (0, 0): far below E_F


class TestDynamicMeasurement:
    def test_default_grid(self):
        dm = DynamicMeasurement(SquareLattice(4, 4))
        assert dm.grid(40) == [0, 19, 39]

    def test_measure_shapes_and_spin_average(self, free_setup):
        lat, model, fac, field = free_setup
        dm = DynamicMeasurement(lat, tau_slices=[9])
        out = dm.measure(fac, field)
        assert out["g_k_tau"].shape == (1, 16)
        assert out["tau"][0] == pytest.approx(1.0)
        # U = 0: both spins identical, so the average equals one spin
        expected = free_gk_tau(model, lat, 1.0)
        np.testing.assert_allclose(out["g_k_tau"][0], expected, atol=1e-10)

    def test_interacting_runs_and_is_finite(self, rng):
        lat = SquareLattice(2, 2)
        model = HubbardModel(lat, u=6.0, beta=4.0, n_slices=32)
        fac = BMatrixFactory(model)
        field = HSField.random(32, 4, rng)
        out = DynamicMeasurement(lat).measure(fac, field)
        assert np.all(np.isfinite(out["g_k_tau"]))
        assert out["g_k_tau"].shape == (3, 4)
