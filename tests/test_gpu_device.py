"""Unit tests for the simulated CUDA device."""

import numpy as np
import pytest

from repro.gpu import DeviceError, SimulatedDevice, TESLA_C2050


@pytest.fixture
def dev():
    return SimulatedDevice()


class TestMemory:
    def test_alloc_tracks_bytes(self, dev):
        a = dev.alloc((100, 100))
        assert dev.allocated_bytes == 100 * 100 * 8
        dev.free(a)
        assert dev.allocated_bytes == 0
        assert dev.peak_bytes == 80000

    def test_double_free_rejected(self, dev):
        a = dev.alloc((4,))
        dev.free(a)
        with pytest.raises(DeviceError):
            dev.free(a)

    def test_use_after_free_rejected(self, dev):
        a = dev.alloc((4, 4))
        dev.free(a)
        with pytest.raises(DeviceError):
            dev.get_matrix(a)

    def test_foreign_array_rejected(self, dev):
        other = SimulatedDevice()
        a = other.alloc((2, 2))
        with pytest.raises(DeviceError):
            dev.free(a)
        with pytest.raises(DeviceError):
            dev.get_matrix(a)


class TestTransfers:
    def test_roundtrip_preserves_data(self, dev, rng):
        host = rng.normal(size=(32, 16))
        d = dev.set_matrix(host)
        np.testing.assert_array_equal(dev.get_matrix(d), host)

    def test_counters(self, dev, rng):
        host = rng.normal(size=(8, 8))
        d = dev.set_matrix(host)
        dev.get_matrix(d)
        assert dev.h2d_count == 1 and dev.d2h_count == 1
        assert dev.h2d_bytes == host.nbytes == dev.d2h_bytes

    def test_reuse_destination(self, dev, rng):
        host = rng.normal(size=(4, 4))
        d = dev.alloc((4, 4))
        d2 = dev.set_matrix(host, dest=d)
        assert d2 is d

    def test_shape_mismatch_rejected(self, dev, rng):
        d = dev.alloc((4, 4))
        with pytest.raises(DeviceError):
            dev.set_matrix(rng.normal(size=(5, 5)), dest=d)

    def test_host_side_read_blocked(self, dev, rng):
        """Device arrays must not silently decay to host numpy arrays."""
        d = dev.set_matrix(rng.normal(size=(4, 4)))
        with pytest.raises(DeviceError):
            np.asarray(d)


class TestVirtualClock:
    def test_transfers_advance_clock(self, dev, rng):
        before = dev.elapsed
        dev.set_matrix(rng.normal(size=(512, 512)))
        assert dev.elapsed > before

    def test_transfer_time_scales_with_bytes(self):
        m = TESLA_C2050
        small = m.time_transfer(8_000)
        big = m.time_transfer(8_000_000)
        assert big > small
        # asymptotically bandwidth-limited
        assert m.time_transfer(6e9) == pytest.approx(1.0, rel=0.1)

    def test_clock_cannot_reverse(self, dev):
        with pytest.raises(ValueError):
            dev.tick(-1.0)

    def test_reset_clock(self, dev):
        dev.tick(1.0)
        dev.reset_clock()
        assert dev.elapsed == 0.0

    def test_stats_dict(self, dev):
        s = dev.stats()
        assert {"elapsed", "h2d_bytes", "kernel_launches"} <= set(s)


class TestPerfModel:
    def test_gemm_rate_ramps_with_size(self):
        m = TESLA_C2050
        assert m.gemm_rate(128) < m.gemm_rate(512) < m.gemm_rate(2048)
        assert m.gemm_rate(2048) < m.gemm_rate_inf

    def test_half_performance_size(self):
        m = TESLA_C2050
        assert m.gemm_rate(m.gemm_n_half) == pytest.approx(m.gemm_rate_inf / 2)

    def test_gemm_time_includes_latency(self):
        m = TESLA_C2050
        assert m.time_gemm(1, 1, 1) >= m.kernel_latency
