"""Unit tests for the simulation driver."""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice


def tiny_model(u=4.0, beta=1.0, n_slices=8, lx=2, ly=2):
    return HubbardModel(SquareLattice(lx, ly), u=u, beta=beta, n_slices=n_slices)


class TestDriver:
    def test_run_produces_observables(self):
        sim = Simulation(tiny_model(), seed=1, cluster_size=4)
        res = sim.run(warmup_sweeps=3, measurement_sweeps=6)
        for name in ("density", "double_occupancy", "kinetic_energy", "sign"):
            assert name in res.observables
        assert res.n_warmup == 3 and res.n_measurement == 6

    def test_measurement_count(self):
        sim = Simulation(
            tiny_model(n_slices=8), seed=1, cluster_size=4,
            measurements_per_sweep=2,
        )
        sim.measure_sweeps(5)
        assert sim.collector.n_measurements == 10

    def test_warmup_records_nothing(self):
        sim = Simulation(tiny_model(), seed=1, cluster_size=4)
        sim.warmup(4)
        assert sim.collector.n_measurements == 0

    def test_reproducibility(self):
        r1 = Simulation(tiny_model(), seed=11, cluster_size=4).run(2, 5)
        r2 = Simulation(tiny_model(), seed=11, cluster_size=4).run(2, 5)
        assert r1.observables["density"].mean == pytest.approx(
            r2.observables["density"].mean
        )
        assert r1.observables["spin_zz"].mean == pytest.approx(
            r2.observables["spin_zz"].mean
        )

    def test_summary_renders(self):
        res = Simulation(tiny_model(), seed=0, cluster_size=4).run(1, 3)
        text = res.summary()
        assert "acceptance" in text and "density" in text

    def test_measure_arrays_toggle(self):
        sim = Simulation(
            tiny_model(), seed=0, cluster_size=4, measure_arrays=False
        )
        res = sim.run(1, 3)
        assert "momentum_distribution" not in res.observables
        assert "density" in res.observables

    def test_invalid_measurements_per_sweep(self):
        with pytest.raises(ValueError):
            Simulation(tiny_model(), measurements_per_sweep=0)

    def test_profiler_covers_all_phases(self):
        sim = Simulation(tiny_model(), seed=0, cluster_size=4)
        sim.run(2, 4)
        for phase in (
            "delayed_update", "stratification", "clustering",
            "wrapping", "measurements",
        ):
            assert sim.profiler.seconds.get(phase, 0) > 0, phase


class TestDriverOptions:
    def test_use_gpu_identical_markov_chain(self):
        """The hybrid-GPU driver must walk the same chain as the CPU one
        (Sec. VI: offload changes timing, never physics)."""
        cpu = Simulation(tiny_model(), seed=7, cluster_size=4).run(2, 6)
        gpu_sim = Simulation(tiny_model(), seed=7, cluster_size=4, use_gpu=True)
        gpu = gpu_sim.run(2, 6)
        assert cpu.observables["double_occupancy"].scalar == pytest.approx(
            gpu.observables["double_occupancy"].scalar
        )
        assert gpu_sim.engine.device.elapsed > 0  # GPU clock ran

    def test_threaded_norms_identical_markov_chain(self):
        a = Simulation(tiny_model(), seed=7, cluster_size=4).run(2, 6)
        b = Simulation(
            tiny_model(), seed=7, cluster_size=4, threaded_norms=True
        ).run(2, 6)
        assert a.observables["kinetic_energy"].scalar == pytest.approx(
            b.observables["kinetic_energy"].scalar
        )

    def test_global_flips_engage(self):
        sim = Simulation(
            tiny_model(u=8.0, beta=2.0, n_slices=16), seed=7,
            cluster_size=4, global_flips_per_sweep=2,
        )
        sim.warmup(3)
        # global moves change the trajectory vs no-flip runs
        ref = Simulation(
            tiny_model(u=8.0, beta=2.0, n_slices=16), seed=7, cluster_size=4
        )
        ref.warmup(3)
        assert not np.array_equal(sim.field.h, ref.field.h)
        # and invariants hold
        res = sim.run(0, 5)
        assert res.observables["density"].scalar == pytest.approx(1.0, abs=1e-9)

    def test_global_flips_validation(self):
        with pytest.raises(ValueError):
            Simulation(tiny_model(), global_flips_per_sweep=-1)

    def test_measure_dynamic_u0_exact(self):
        """Driver-level dynamic observables at U = 0 match the analytic
        G(k, tau) = e^{-tau eps}(1 - f) on the cluster-boundary grid."""
        from repro import momentum_grid
        from repro.hamiltonian import free_dispersion_2d

        model = HubbardModel(SquareLattice(4, 4), u=0.0, beta=4.0, n_slices=32)
        sim = Simulation(model, seed=0, cluster_size=8, measure_dynamic=True)
        res = sim.run(1, 2)
        gk = np.asarray(res.observables["g_k_tau"].mean)
        assert gk.shape == (4, 16)
        k = momentum_grid(4, 4)
        eps = free_dispersion_2d(k[:, 0], k[:, 1])
        f = 1.0 / (1.0 + np.exp(4.0 * eps))
        taus = np.arange(1, 5) * 8 * model.dtau
        expected = np.exp(-taus[:, None] * eps[None, :]) * (1 - f)[None, :]
        np.testing.assert_allclose(gk, expected, atol=1e-8)
        # and G_loc is the k-average
        gloc = np.asarray(res.observables["g_loc_tau"].mean)
        np.testing.assert_allclose(gloc, gk.mean(axis=1), atol=1e-10)

    def test_measure_dynamic_interacting_finite(self):
        model = tiny_model(u=6.0, beta=2.0, n_slices=16)
        sim = Simulation(model, seed=1, cluster_size=4, measure_dynamic=True)
        res = sim.run(2, 4)
        gk = np.asarray(res.observables["g_k_tau"].mean)
        assert np.all(np.isfinite(gk))
        assert res.observables["g_k_tau"].n_samples == 4


class TestPhysicsSanity:
    def test_half_filling_density(self):
        res = Simulation(tiny_model(u=4.0), seed=2, cluster_size=4).run(5, 10)
        assert res.observables["density"].scalar == pytest.approx(1.0, abs=1e-9)

    def test_mean_sign_is_one_at_half_filling(self):
        res = Simulation(tiny_model(u=6.0), seed=2, cluster_size=4).run(5, 10)
        assert res.mean_sign == pytest.approx(1.0)

    def test_interaction_suppresses_double_occupancy(self):
        free = Simulation(tiny_model(u=0.0), seed=3, cluster_size=4).run(2, 8)
        interacting = Simulation(
            tiny_model(u=8.0, beta=2.0, n_slices=16), seed=3, cluster_size=4
        ).run(10, 30)
        assert (
            interacting.observables["double_occupancy"].scalar
            < free.observables["double_occupancy"].scalar
        )

    def test_u0_matches_free_fermions(self):
        """U = 0 through the full MC machinery must equal the analytic
        free Green's function result to near machine precision."""
        from repro import free_greens_function
        from repro.measure import total_density, kinetic_energy

        model = tiny_model(u=0.0, beta=3.0, n_slices=24, lx=4, ly=4)
        res = Simulation(model, seed=4, cluster_size=8).run(1, 2)
        g = free_greens_function(model.kinetic_matrix(), model.beta)
        expected_ke = kinetic_energy(model.lattice, g, g)
        assert res.observables["kinetic_energy"].scalar == pytest.approx(
            expected_ke, abs=1e-8
        )
        assert res.observables["density"].scalar == pytest.approx(
            total_density(g, g), abs=1e-9
        )
