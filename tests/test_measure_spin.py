"""Unit tests for spin-spin correlations."""

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.hamiltonian import free_greens_function
from repro.measure import (
    af_structure_factor,
    correlation_grid,
    longest_distance_correlation,
    spin_zz_correlation,
)


@pytest.fixture
def free_case():
    lat = SquareLattice(4, 4)
    model = HubbardModel(lat, u=0.0, beta=3.0)
    g = free_greens_function(model.kinetic_matrix(), 3.0)
    return lat, g


class TestFreeLimit:
    def test_local_moment_free_value(self, free_case):
        """U = 0 local moment: <m_z^2> = 2(<n> - 2<n+ n->)/2... at half
        filling with uncorrelated spins, C_zz(0) = <n> - 2<n+><n-> per
        site = 1 - 2 * 1/4 = 1/2."""
        lat, g = free_case
        czz = spin_zz_correlation(lat, g, g)
        assert czz[0] == pytest.approx(0.5, abs=1e-10)

    def test_wick_vs_brute_force_dimer(self):
        """Check the Wick contraction against a hand-expanded 2-site
        formula with an arbitrary (asymmetric) G."""
        lat = SquareLattice(2, 1)
        rng = np.random.default_rng(0)
        g_up = rng.normal(size=(2, 2))
        g_dn = rng.normal(size=(2, 2))
        czz = spin_zz_correlation(lat, g_up, g_dn)

        def n(g, i):
            return 1.0 - g[i, i]

        def nn_same(g, a, b):
            # <n_a n_b> for one spin: n_a n_b + (delta - G(b,a)) G(a,b)
            d = 1.0 if a == b else 0.0
            return n(g, a) * n(g, b) + (d - g[b, a]) * g[a, b]

        expected = np.zeros(2)
        for r in range(2):
            acc = 0.0
            for b in range(2):
                a = (b + r) % 2
                acc += (
                    nn_same(g_up, a, b)
                    + nn_same(g_dn, a, b)
                    - n(g_up, a) * n(g_dn, b)
                    - n(g_dn, a) * n(g_up, b)
                )
            expected[r] = acc / 2.0
        np.testing.assert_allclose(czz, expected, atol=1e-12)


class TestInteractingPattern:
    @pytest.fixture(scope="class")
    def mc_czz(self):
        model = HubbardModel(SquareLattice(4, 4), u=6.0, beta=3.0, n_slices=24)
        sim = Simulation(model, seed=8, cluster_size=8)
        res = sim.run(warmup_sweeps=15, measurement_sweeps=60)
        return np.asarray(res.observables["spin_zz"].mean)

    def test_antiferromagnetic_chessboard(self, mc_czz):
        """Half-filled repulsive Hubbard: C_zz alternates in sign with
        sublattice parity (paper Fig 7's pattern)."""
        lat = SquareLattice(4, 4)
        for r in range(1, 16):
            x, y = lat.coords(r)
            parity = (-1) ** (x + y)
            assert np.sign(mc_czz[r]) == parity, (r, mc_czz[r])

    def test_af_structure_factor_positive_and_dominant(self, mc_czz):
        lat = SquareLattice(4, 4)
        s_af = af_structure_factor(lat, mc_czz)
        assert s_af > 1.0  # enhanced well above the U=0 value

    def test_longest_distance_extraction(self, mc_czz):
        lat = SquareLattice(4, 4)
        val = longest_distance_correlation(lat, mc_czz)
        assert val == mc_czz[lat.index(2, 2)]
        assert val > 0  # same sublattice at (2, 2)


class TestHelpers:
    def test_structure_factor_requires_even_lattice(self):
        with pytest.raises(ValueError):
            af_structure_factor(SquareLattice(3, 4), np.zeros(12))

    def test_correlation_grid_centers_origin(self):
        lat = SquareLattice(4, 4)
        czz = np.arange(16.0)
        grid = correlation_grid(lat, czz)
        # displacement (0,0) (value 0.0) must sit at index (ly/2-1, lx/2-1)
        assert grid[1, 1] == 0.0

    def test_correlation_grid_shape(self):
        lat = SquareLattice(6, 4)
        grid = correlation_grid(lat, np.zeros(24))
        assert grid.shape == (4, 6)

    def test_structure_factor_of_perfect_neel(self):
        """A perfect (-1)^(x+y) pattern gives S(pi,pi) = N * amplitude."""
        lat = SquareLattice(4, 4)
        czz = np.array(
            [(-1.0) ** sum(lat.coords(r)) for r in range(16)]
        )
        assert af_structure_factor(lat, czz) == pytest.approx(16.0)
