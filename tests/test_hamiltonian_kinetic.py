"""Unit tests for the kinetic propagator and free-fermion references."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import HubbardModel, KineticPropagator, SquareLattice
from repro.hamiltonian import free_dispersion_2d, free_greens_function


@pytest.fixture
def k_matrix():
    return HubbardModel(SquareLattice(4, 4), u=2.0).kinetic_matrix()


class TestKineticPropagator:
    def test_matches_scipy_expm(self, k_matrix):
        prop = KineticPropagator(k_matrix, dtau=0.125)
        np.testing.assert_allclose(
            prop.expk, sla.expm(-0.125 * k_matrix), atol=1e-12
        )
        np.testing.assert_allclose(
            prop.inv_expk, sla.expm(0.125 * k_matrix), atol=1e-12
        )

    def test_inverse_relation(self, k_matrix):
        prop = KineticPropagator(k_matrix, dtau=0.2)
        np.testing.assert_allclose(
            prop.expk @ prop.inv_expk, np.eye(16), atol=1e-12
        )

    def test_expk_symmetric_positive_definite(self, k_matrix):
        prop = KineticPropagator(k_matrix, dtau=0.1)
        np.testing.assert_allclose(prop.expk, prop.expk.T, atol=1e-13)
        assert np.all(np.linalg.eigvalsh(prop.expk) > 0)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            KineticPropagator(np.array([[0.0, 1.0], [0.0, 0.0]]), dtau=0.1)

    def test_rejects_bad_dtau(self, k_matrix):
        with pytest.raises(ValueError):
            KineticPropagator(k_matrix, dtau=0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            KineticPropagator(np.ones((2, 3)), dtau=0.1)

    def test_eigenvalues_exposed(self, k_matrix):
        prop = KineticPropagator(k_matrix, dtau=0.1)
        np.testing.assert_allclose(
            np.sort(prop.eigenvalues), np.sort(np.linalg.eigvalsh(k_matrix)),
            atol=1e-12,
        )


class TestFreeGreens:
    def test_infinite_temperature_limit(self, k_matrix):
        """beta -> 0: every mode half-occupied, G -> I/2."""
        g = free_greens_function(k_matrix, beta=1e-12)
        np.testing.assert_allclose(g, 0.5 * np.eye(16), atol=1e-9)

    def test_zero_temperature_limit(self, k_matrix):
        """beta -> inf: occupied modes (w < 0) contribute 0 to <c c+>."""
        g = free_greens_function(k_matrix, beta=1e4)
        w, v = np.linalg.eigh(k_matrix)
        proj_empty = (v[:, w > 1e-9]) @ (v[:, w > 1e-9]).T
        # half-filled 4x4 at mu=0 has zero modes too; compare projected
        occ = np.diag(v.T @ g @ v)
        np.testing.assert_allclose(occ[w > 1e-9], 1.0, atol=1e-8)
        np.testing.assert_allclose(occ[w < -1e-9], 0.0, atol=1e-8)
        np.testing.assert_allclose(occ[np.abs(w) < 1e-9], 0.5, atol=1e-8)
        del proj_empty

    def test_no_overflow_at_huge_beta(self, k_matrix):
        g = free_greens_function(k_matrix, beta=1e6)
        assert np.all(np.isfinite(g))

    def test_matches_direct_formula_small_beta(self, k_matrix):
        beta = 2.0
        direct = np.linalg.inv(np.eye(16) + sla.expm(-beta * k_matrix))
        np.testing.assert_allclose(
            free_greens_function(k_matrix, beta), direct, atol=1e-11
        )

    def test_half_filling_density(self, k_matrix):
        """mu = 0 on a bipartite lattice: <n> = 1/2 per spin per site."""
        g = free_greens_function(k_matrix, beta=7.3)
        np.testing.assert_allclose(np.trace(g) / 16, 0.5, atol=1e-12)


class TestDispersion:
    def test_band_extrema(self):
        assert free_dispersion_2d(np.array(0.0), np.array(0.0)) == -4.0
        assert free_dispersion_2d(np.array(np.pi), np.array(np.pi)) == pytest.approx(4.0)

    def test_fermi_surface_at_half_filling(self):
        """(pi/2, pi/2) sits exactly on the mu = 0 Fermi surface."""
        assert free_dispersion_2d(
            np.array(np.pi / 2), np.array(np.pi / 2)
        ) == pytest.approx(0.0, abs=1e-14)
