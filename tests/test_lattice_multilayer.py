"""Unit tests for multilayer (interface) lattices."""

import numpy as np
import pytest

from repro import MultilayerLattice, SquareLattice


class TestGeometry:
    def test_site_count(self):
        lat = MultilayerLattice(4, 4, 3)
        assert lat.n_sites == 48
        assert lat.sites_per_layer == 16

    def test_index_coords_roundtrip(self):
        lat = MultilayerLattice(3, 4, 2)
        for i in range(lat.n_sites):
            x, y, z = lat.coords(i)
            assert lat.index(x, y, z) == i

    def test_plane_wraps_layer_does_not(self):
        lat = MultilayerLattice(4, 4, 2)
        assert lat.index(4, 0, 1) == lat.index(0, 0, 1)
        with pytest.raises(IndexError):
            lat.index(0, 0, 2)
        with pytest.raises(IndexError):
            lat.index(0, 0, -1)

    def test_layer_sites_contiguous(self):
        lat = MultilayerLattice(3, 3, 4)
        for z in range(4):
            s = lat.layer_sites(z)
            assert s[0] == z * 9 and len(s) == 9
            assert np.array_equal(s, np.arange(z * 9, (z + 1) * 9))

    def test_validation(self):
        with pytest.raises(ValueError):
            MultilayerLattice(4, 4, 0)
        with pytest.raises(ValueError):
            MultilayerLattice(0, 4, 1)


class TestAdjacency:
    def test_intra_layer_blocks_match_plane(self):
        lat = MultilayerLattice(4, 4, 3)
        plane = SquareLattice(4, 4).adjacency
        a = lat.intra_layer_adjacency
        for z in range(3):
            s = z * 16
            assert np.array_equal(a[s : s + 16, s : s + 16], plane)
        # nothing off the block diagonal
        assert a.sum() == 3 * plane.sum()

    def test_inter_layer_bonds_open_boundaries(self):
        lat = MultilayerLattice(3, 3, 3)
        a = lat.inter_layer_adjacency
        assert np.array_equal(a, a.T)
        # each interior interface carries sites_per_layer bonds
        assert a.sum() / 2.0 == 2 * 9  # 2 interfaces x 9 vertical bonds
        # no bond from top layer back to bottom (open stack)
        top, bottom = lat.layer_sites(2), lat.layer_sites(0)
        assert np.all(a[np.ix_(top, bottom)] == 0.0)

    def test_vertical_bond_alignment(self):
        lat = MultilayerLattice(4, 2, 2)
        a = lat.inter_layer_adjacency
        for p in range(8):
            assert a[p, p + 8] == 1.0

    def test_single_layer_has_no_vertical_bonds(self):
        lat = MultilayerLattice(4, 4, 1)
        assert lat.inter_layer_adjacency.sum() == 0.0


class TestAspectRatio:
    def test_paper_examples(self):
        # "eight 8x8 layers is barely sufficient" (ratio 1.0)...
        assert MultilayerLattice(8, 8, 8).aspect_ratio() == 1.0
        # ...eight 12x12 layers is the goal (ratio 1.5).
        assert MultilayerLattice(12, 12, 8).aspect_ratio() == 1.5
        assert MultilayerLattice(14, 14, 6).aspect_ratio() == pytest.approx(14 / 6)
