"""Integration tests for the structured (checkerboard) kinetic fast path.

The checkerboard propagator's unit behaviour lives in
``test_hamiltonian_checkerboard.py``; this file covers the *pipeline*:
the factory's kinetic modes, the backend ``apply_structured`` protocol,
cross-backend equivalence under the fast path, the Trotter-error
property the mode trades on, and end-to-end observable parity between
the two kinetic modes.
"""

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, Simulation, SquareLattice
from repro.backends import BackendError, get_backend
from repro.hamiltonian import (
    CheckerboardError,
    CheckerboardPropagator,
    KINETIC_MODES,
    bond_groups,
    resolve_kinetic,
)
from repro.lattice import GeneralLattice, MultilayerLattice

STRUCTURED_BACKENDS = ("numpy", "threaded", "gpu-sim")


def model_4x4(beta=2.0, n_slices=16, u=4.0, mu=0.0):
    return HubbardModel(
        SquareLattice(4, 4), u=u, beta=beta, n_slices=n_slices, mu=mu
    )


def factories(model=None):
    model = model if model is not None else model_4x4()
    return (
        BMatrixFactory(model, kinetic="exact"),
        BMatrixFactory(model, kinetic="checkerboard"),
    )


# ---------------------------------------------------------------------------
# mode resolution + typed failures
# ---------------------------------------------------------------------------


class TestKineticModes:
    def test_catalogue(self):
        assert KINETIC_MODES == ("exact", "checkerboard")

    def test_resolve_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KINETIC", raising=False)
        assert resolve_kinetic(None) == "exact"
        monkeypatch.setenv("REPRO_KINETIC", "checkerboard")
        assert resolve_kinetic(None) == "checkerboard"
        assert resolve_kinetic("exact") == "exact"  # explicit beats env

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown kinetic mode"):
            resolve_kinetic("trotterize-harder")

    def test_factory_default_is_exact(self):
        assert BMatrixFactory(model_4x4()).kinetic_mode == "exact"
        assert BMatrixFactory(model_4x4()).structured is None

    def test_multilayer_lattice_raises_typed_error(self):
        lat = MultilayerLattice(4, 4, 2)
        with pytest.raises(CheckerboardError):
            bond_groups(lat)
        model = HubbardModel(lat, u=2.0, beta=1.0, n_slices=8)
        with pytest.raises(CheckerboardError):
            BMatrixFactory(model, kinetic="checkerboard")

    def test_general_lattice_raises_typed_error(self):
        lat = GeneralLattice(4, ((0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)))
        with pytest.raises(CheckerboardError):
            bond_groups(lat)

    def test_checkerboard_error_is_value_error(self):
        # The autotuner's "inapplicable candidate" gate catches
        # ValueError; the typed error must stay inside that net.
        assert issubclass(CheckerboardError, ValueError)


# ---------------------------------------------------------------------------
# group invariants
# ---------------------------------------------------------------------------


class TestGroupInvariants:
    @pytest.mark.parametrize(
        "shape", [(4, 4), (6, 4), (5, 5), (5, 3), (2, 2), (8, 1), (16, 16)]
    )
    def test_groups_disjoint_and_exact_cover(self, shape):
        """Within each group no site appears twice (the rotations
        commute), and across all groups every lattice bond appears
        exactly once (the split loses no hopping)."""
        lat = SquareLattice(*shape)
        seen = {}
        for gi, group in enumerate(bond_groups(lat)):
            sites = [s for bond in group for s in bond]
            assert len(sites) == len(set(sites)), (shape, gi)
            for i, j in group:
                key = frozenset((i, j))
                seen[key] = seen.get(key, 0) + 1
        adj = lat.adjacency
        n = lat.n_sites
        for i in range(n):
            for j in range(i + 1, n):
                if adj[i, j] > 0:
                    assert seen.get(frozenset((i, j))) == 1, (shape, i, j)
        assert len(seen) == sum(
            1
            for i in range(n)
            for j in range(i + 1, n)
            if adj[i, j] > 0
        )


# ---------------------------------------------------------------------------
# Trotter-error property: the constant shrinks 4x when dtau halves
# ---------------------------------------------------------------------------


class TestSplittingErrorScaling:
    @pytest.mark.parametrize("shape", [(6, 6), (6, 4), (5, 5)])
    def test_error_constant_shrinks_4x_per_halving(self, shape):
        """|| B_cb - B_exact || = C * dtau^2 + O(dtau^3): halving dtau
        must shrink the measured error by ~4x (we accept [3, 5] to
        leave room for the cubic term at the coarse end)."""
        lat = SquareLattice(*shape)
        dtaus = (0.2, 0.1, 0.05)
        errs = [
            CheckerboardPropagator(lat, t=1.0, dtau=d).splitting_error()
            for d in dtaus
        ]
        for coarse, fine in zip(errs, errs[1:]):
            ratio = coarse / fine
            assert 3.0 < ratio < 5.0, (shape, errs)

    def test_error_constant_is_dtau_free(self):
        """The same statement as a collapsed constant: C = err / dtau^2
        is flat across dtau to ~25%."""
        lat = SquareLattice(6, 6)
        consts = [
            CheckerboardPropagator(lat, t=1.0, dtau=d).splitting_error() / d**2
            for d in (0.2, 0.1, 0.05)
        ]
        assert max(consts) / min(consts) < 1.25


# ---------------------------------------------------------------------------
# factory routing
# ---------------------------------------------------------------------------


class TestFactoryRouting:
    def test_exact_mode_bit_identical_to_legacy(self, rng):
        """kinetic='exact' must be byte-for-byte the old pipeline."""
        model = model_4x4()
        legacy = BMatrixFactory(model)
        exact = BMatrixFactory(model, kinetic="exact")
        assert np.array_equal(legacy.expk, exact.expk)
        assert np.array_equal(legacy.inv_expk, exact.inv_expk)
        a = rng.standard_normal((model.n_sites, 5))
        assert np.array_equal(
            legacy.apply_expk_left(a), exact.apply_expk_left(a)
        )

    def test_checkerboard_expk_is_structured_product(self):
        exact, cb = factories()
        assert cb.structured is not None
        np.testing.assert_allclose(
            cb.expk, cb.structured.as_matrix(), atol=0.0
        )
        # ... and close to (but not equal to) the dense exponential.
        assert not np.array_equal(cb.expk, exact.expk)
        assert (
            np.linalg.norm(cb.expk - exact.expk)
            / np.linalg.norm(exact.expk)
            < 0.05
        )

    @pytest.mark.parametrize("inverse", [False, True])
    def test_apply_expk_left_matches_dense(self, rng, inverse):
        _, cb = factories()
        a = rng.standard_normal((16, 7))
        dense = cb.inv_expk if inverse else cb.expk
        np.testing.assert_allclose(
            cb.apply_expk_left(a, inverse=inverse), dense @ a, atol=1e-13
        )

    @pytest.mark.parametrize("inverse", [False, True])
    def test_apply_expk_right_matches_dense(self, rng, inverse):
        _, cb = factories()
        a = rng.standard_normal((7, 16))
        dense = cb.inv_expk if inverse else cb.expk
        np.testing.assert_allclose(
            cb.apply_expk_right(a, inverse=inverse), a @ dense, atol=1e-13
        )

    def test_inverse_round_trip(self, rng):
        _, cb = factories()
        a = rng.standard_normal((16, 16))
        out = cb.apply_expk_left(cb.apply_expk_left(a), inverse=True)
        np.testing.assert_allclose(out, a, atol=1e-12)

    def test_b_matrix_definition_under_checkerboard(self, rng):
        """B_l = diag(v) * B_cb exactly, in either mode's own algebra."""
        model = model_4x4()
        cb = BMatrixFactory(model, kinetic="checkerboard")
        field = HSField.random(model.n_slices, model.n_sites, rng)
        b = cb.b_matrix(field, 0, +1)
        v = field.v_diagonal(0, +1, cb.nu)
        np.testing.assert_allclose(
            b, v[:, None] * cb.structured.as_matrix(), atol=1e-13
        )

    def test_mu_enters_structured_propagator(self, rng):
        model = model_4x4(mu=0.3)
        cb = BMatrixFactory(model, kinetic="checkerboard")
        a = rng.standard_normal((16, 3))
        base = CheckerboardPropagator(model.lattice, t=model.t, dtau=model.dtau)
        np.testing.assert_allclose(
            cb.apply_expk_left(a),
            np.exp(model.dtau * 0.3) * base.apply_expk_left(a),
            atol=1e-12,
        )


# ---------------------------------------------------------------------------
# backend protocol
# ---------------------------------------------------------------------------


class TestBackendStructuredOps:
    @pytest.mark.parametrize("name", STRUCTURED_BACKENDS)
    def test_apply_structured_matches_numpy(self, name, rng):
        _, cb = factories()
        ref = get_backend("numpy").bind(cb)
        other = get_backend(name).bind(cb)
        a = rng.standard_normal((16, 16))
        for side in ("left", "right"):
            for inverse in (False, True):
                assert np.array_equal(
                    other.apply_structured(a, side=side, inverse=inverse),
                    ref.apply_structured(a, side=side, inverse=inverse),
                ), (name, side, inverse)

    @pytest.mark.parametrize("name", STRUCTURED_BACKENDS)
    def test_apply_structured_raises_without_structured(self, name):
        exact, _ = factories()
        backend = get_backend(name).bind(exact)
        with pytest.raises(BackendError, match="structured"):
            backend.apply_structured(np.eye(16))

    def test_apply_structured_counts_dispatch(self, rng):
        _, cb = factories()
        backend = get_backend("numpy").bind(cb)
        backend.apply_structured(rng.standard_normal((16, 4)))
        assert backend.stats()["backend.dispatch.apply_structured"] == 1.0

    def test_apply_structured_records_flops(self, rng):
        from repro.linalg import flops

        _, cb = factories()
        backend = get_backend("numpy").bind(cb)
        a = rng.standard_normal((16, 16))
        with flops.tally() as t:
            backend.apply_structured(a, category="structured")
        assert t.flops.get("structured", 0) >= cb.structured.apply_flops(16)

    @pytest.mark.parametrize("name", STRUCTURED_BACKENDS)
    def test_wrap_matches_exact_mode_to_splitting_error(self, name, rng):
        """Under checkerboard the wrap is the same transform with the
        structured propagator; on 4x4 the split is exact (commuting
        groups), so wraps agree to rounding across kinetic modes."""
        exact, cb = factories()
        b_exact = get_backend(name).bind(exact)
        b_cb = get_backend(name).bind(cb)
        g = rng.standard_normal((16, 16))
        v = np.exp(rng.standard_normal(16))
        np.testing.assert_allclose(
            b_cb.wrap(g, v), b_exact.wrap(g, v), atol=1e-11
        )

    @pytest.mark.parametrize("name", STRUCTURED_BACKENDS)
    def test_unwrap_inverts_wrap_under_checkerboard(self, name, rng):
        _, cb = factories()
        backend = get_backend(name).bind(cb)
        g = rng.standard_normal((16, 16))
        v = np.exp(rng.standard_normal(16))
        np.testing.assert_allclose(
            backend.unwrap(backend.wrap(g, v), v), g, atol=1e-11
        )

    @pytest.mark.parametrize("name", STRUCTURED_BACKENDS)
    def test_cluster_product_matches_structured_reference(self, name, rng):
        _, cb = factories()
        backend = get_backend(name).bind(cb)
        vs = [np.exp(rng.standard_normal(16)) for _ in range(4)]
        expect = cb.structured.as_matrix() * vs[0][:, None]
        for v in vs[1:]:
            expect = cb.structured.apply_expk_left(expect) * v[:, None]
        np.testing.assert_allclose(
            backend.cluster_product(vs), expect, atol=1e-12
        )

    @pytest.mark.parametrize("name", STRUCTURED_BACKENDS)
    def test_batched_ops_match_loop(self, name, rng):
        _, cb = factories()
        backend = get_backend(name).bind(cb)
        gs = rng.standard_normal((2, 16, 16))
        vs = np.exp(rng.standard_normal((2, 16)))
        want = np.stack([backend.wrap(g, v) for g, v in zip(gs, vs)])
        assert np.array_equal(backend.wrap_batched(gs, vs), want)
        stack = rng.standard_normal((2, 16, 5))
        want = np.stack([backend.apply_structured(a) for a in stack])
        assert np.array_equal(backend.apply_structured_batched(stack), want)

    def test_gpu_sim_launches_checkerboard_kernels(self, rng):
        _, cb = factories()
        backend = get_backend("gpu-sim").bind(cb)
        before = backend.device.kernel_launches
        clock = backend.device.elapsed
        backend.wrap(rng.standard_normal((16, 16)), np.exp(rng.standard_normal(16)))
        assert backend.device.kernel_launches > before
        assert backend.device.elapsed > clock


# ---------------------------------------------------------------------------
# engine / driver switching
# ---------------------------------------------------------------------------


class TestKineticSwitching:
    def test_set_kinetic_swaps_factory_and_invalidates(self):
        sim = Simulation(model_4x4(n_slices=8), seed=3, cluster_size=4)
        assert sim.kinetic == "exact"
        assert sim.set_kinetic("checkerboard") is True
        assert sim.kinetic == "checkerboard"
        assert sim.factory.structured is not None
        assert sim.engine.backend.structured is sim.factory.structured
        # idempotent: switching to the current mode is a no-op
        assert sim.set_kinetic("checkerboard") is False

    def test_switched_simulation_still_runs(self):
        sim = Simulation(model_4x4(n_slices=8), seed=3, cluster_size=4)
        sim.warmup(1)
        sim.set_kinetic("checkerboard")
        res = sim.run(warmup_sweeps=0, measurement_sweeps=2)
        assert np.isfinite(res.observables["density"].scalar)

    def test_apply_tuning_kinetic_axis(self):
        from repro.autotune import TuningParameters

        sim = Simulation(model_4x4(n_slices=8), seed=3, cluster_size=4)
        sim.apply_tuning(
            TuningParameters.make(4, 8, kinetic="checkerboard")
        )
        assert sim.kinetic == "checkerboard"

    def test_constructor_kinetic(self):
        sim = Simulation(
            model_4x4(n_slices=8), seed=3, cluster_size=4,
            kinetic="checkerboard",
        )
        assert sim.kinetic == "checkerboard"
        assert sim.factory.kinetic_mode == "checkerboard"


# ---------------------------------------------------------------------------
# end-to-end observable parity (same seed, both modes)
# ---------------------------------------------------------------------------


class TestObservableParity:
    def test_4x4_beta2_same_seed_parity(self):
        """On 4x4 the checkerboard split is exact in the one-body
        sector, so a same-seed beta = 2 run must reproduce the exact
        mode's observables within (tight) statistical error — this
        exercises every structured pipeline branch end to end."""
        results = {}
        for mode in KINETIC_MODES:
            sim = Simulation(
                model_4x4(beta=2.0, n_slices=16),
                seed=42,
                cluster_size=4,
                kinetic=mode,
            )
            results[mode] = sim.run(warmup_sweeps=5, measurement_sweeps=15)
        for name in ("density", "double_occupancy", "kinetic_energy"):
            a = results["exact"].observables[name]
            b = results["checkerboard"].observables[name]
            err = max(float(a.error), float(b.error), 1e-12)
            assert abs(float(a.mean) - float(b.mean)) < 5.0 * err, name
