"""Unit tests for result serialization."""

import numpy as np
import pytest

from repro.io import load_observables, save_observables
from repro.measure import BinnedEstimate


def make_obs():
    return {
        "density": BinnedEstimate(
            mean=np.float64(1.0), error=np.float64(0.01), n_bins=8, n_samples=64
        ),
        "spin_zz": BinnedEstimate(
            mean=np.arange(16.0), error=np.full(16, 0.1), n_bins=4, n_samples=32
        ),
    }


class TestRoundTrip:
    def test_values_preserved(self, tmp_path):
        p = tmp_path / "obs.npz"
        save_observables(p, make_obs(), metadata={"u": 2.0, "lattice": "4x4"})
        loaded, meta = load_observables(p)
        assert meta == {"u": 2.0, "lattice": "4x4"}
        assert loaded["density"].mean == pytest.approx(1.0)
        assert loaded["density"].n_bins == 8
        np.testing.assert_array_equal(loaded["spin_zz"].mean, np.arange(16.0))
        assert loaded["spin_zz"].n_samples == 32

    def test_empty_metadata(self, tmp_path):
        p = tmp_path / "obs.npz"
        save_observables(p, make_obs())
        _, meta = load_observables(p)
        assert meta == {}

    def test_illegal_name_rejected(self, tmp_path):
        bad = {"a/b": make_obs()["density"]}
        with pytest.raises(ValueError):
            save_observables(tmp_path / "x.npz", bad)

    def test_simulation_results_roundtrip(self, tmp_path):
        """End-to-end: a real simulation's observables survive the trip."""
        from repro import HubbardModel, Simulation, SquareLattice

        model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.0, n_slices=8)
        res = Simulation(model, seed=0, cluster_size=4).run(1, 4)
        p = tmp_path / "run.npz"
        save_observables(p, res.observables, metadata={"seed": 0})
        loaded, meta = load_observables(p)
        assert set(loaded) == set(res.observables)
        assert loaded["density"].mean == pytest.approx(
            float(res.observables["density"].mean)
        )
