"""Unit tests for the multi-device cluster farm."""

import numpy as np
import pytest

from repro.core import cluster_product, cluster_slices
from repro.gpu import MultiDeviceClusterFarm
from tests.helpers import relerr


def v_lists_for(factory, field, sigma, cluster_size):
    return [
        [field.v_diagonal(l, sigma, factory.nu) for l in r]
        for r in cluster_slices(field.n_slices, cluster_size)
    ]


class TestCorrectness:
    @pytest.mark.parametrize("n_devices", [1, 2, 3])
    def test_products_match_cpu(self, factory4x4, field4x4, n_devices):
        farm = MultiDeviceClusterFarm(
            n_devices, factory4x4.expk, factory4x4.inv_expk
        )
        vls = v_lists_for(factory4x4, field4x4, 1, 5)
        products, _ = farm.build_all(vls)
        for j, r in enumerate(cluster_slices(20, 5)):
            cpu = cluster_product(factory4x4, field4x4, 1, r)
            assert relerr(products[j], cpu) < 1e-12, j

    def test_round_robin_assignment(self, factory4x4):
        farm = MultiDeviceClusterFarm(3, factory4x4.expk, factory4x4.inv_expk)
        assert farm.assignment(7) == [0, 1, 2, 0, 1, 2, 0]

    def test_empty_batch(self, factory4x4):
        farm = MultiDeviceClusterFarm(2, factory4x4.expk, factory4x4.inv_expk)
        products, t = farm.build_all([])
        assert products == [] and t == 0.0

    def test_validation(self, factory4x4):
        with pytest.raises(ValueError):
            MultiDeviceClusterFarm(0, factory4x4.expk, factory4x4.inv_expk)


class TestConcurrency:
    def test_two_devices_nearly_halve_batch_time(self, factory4x4, field4x4):
        """An even batch across 2 identical devices takes ~max = half of
        the single-device serial time."""
        vls = v_lists_for(factory4x4, field4x4, 1, 5)  # 4 clusters
        times = {}
        for nd in (1, 2, 4):
            farm = MultiDeviceClusterFarm(
                nd, factory4x4.expk, factory4x4.inv_expk
            )
            _, t = farm.build_all(vls)
            times[nd] = t
        assert times[2] == pytest.approx(times[1] / 2, rel=0.05)
        assert times[4] == pytest.approx(times[1] / 4, rel=0.10)

    def test_uneven_batch_bounded_by_straggler(self, factory4x4, field4x4):
        """5 clusters on 2 devices: device 0 builds 3 — batch time is
        its serial time, ~60% of the 1-device run."""
        vls = v_lists_for(factory4x4, field4x4, 1, 4)  # 5 clusters
        farm1 = MultiDeviceClusterFarm(1, factory4x4.expk, factory4x4.inv_expk)
        _, t1 = farm1.build_all(vls)
        farm2 = MultiDeviceClusterFarm(2, factory4x4.expk, factory4x4.inv_expk)
        _, t2 = farm2.build_all(vls)
        assert t2 == pytest.approx(t1 * 3 / 5, rel=0.05)

    def test_batch_seconds_accumulates(self, factory4x4, field4x4):
        farm = MultiDeviceClusterFarm(2, factory4x4.expk, factory4x4.inv_expk)
        vls = v_lists_for(factory4x4, field4x4, 1, 10)
        farm.build_all(vls)
        farm.build_all(vls)
        assert farm.batch_seconds > 0
        assert len(farm.stats()) == 2

    def test_propagators_resident_per_device(self, factory4x4):
        """Setup uploads exp(+-dtau K) to each device exactly once."""
        farm = MultiDeviceClusterFarm(3, factory4x4.expk, factory4x4.inv_expk)
        for dev in farm.devices:
            assert dev.h2d_count == 2
            assert dev.h2d_bytes == 2 * 16 * 16 * 8
