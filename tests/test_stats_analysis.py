"""`repro analyze` backend + CLI: reports from every artifact kind."""

import json

import numpy as np
import pytest

from repro import HubbardModel, Simulation, SquareLattice
from repro.cli import main
from repro.dqmc import save_checkpoint
from repro.io import save_observables
from repro.measure import binned_statistics
from repro.stats import (
    RunController,
    analyze_archive,
    analyze_checkpoint,
    analyze_path,
    render_analysis,
)

INPUT = """\
nx = 2
ny = 2
u = 4.0
dtau = 0.125
l = 8
north = 4
nwarm = 2
npass = 200
seed = 5
"""


def make_sim(streaming=False):
    model = HubbardModel(SquareLattice(2, 2), u=4.0, beta=1.0, n_slices=8)
    return Simulation(model, seed=3, cluster_size=4, streaming=streaming)


@pytest.fixture
def checkpoint(tmp_path):
    sim = make_sim()
    sim.warmup(2)
    sim.measure_sweeps(16)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, sim)
    return path


@pytest.fixture
def archive(tmp_path):
    rng = np.random.default_rng(0)
    obs = {
        "density": binned_statistics(1.0 + 0.01 * rng.standard_normal(64)),
        "sign": binned_statistics(np.ones(64)),
    }
    path = tmp_path / "results.npz"
    save_observables(
        path,
        obs,
        metadata={
            "sign_corrected": True,
            "equilibration_cut": 8,
            "control": {
                "target_observable": "density",
                "target_error": 0.01,
                "target_met": True,
                "discarded": 8,
            },
        },
    )
    return path


class TestAnalyzeCheckpoint:
    def test_posthoc_report(self, checkpoint):
        report = analyze_checkpoint(checkpoint)
        assert report["kind"] == "checkpoint"
        assert report["mode"] == "post-hoc"
        assert report["sign_corrected"] is True
        assert report["model"]["n_sites"] == 4
        density = report["observables"]["density"]
        assert density["corrected"] is True
        assert np.isfinite(density["mean"])
        # Full series retained -> fresh equilibration + tau diagnostics.
        assert "equilibration" in report

    def test_streaming_report(self, tmp_path):
        sim = make_sim(streaming=True)
        sim.attach_controller(
            RunController(
                target_error=0.05, check_every=8, min_samples=16,
                equilibrate=False,
            )
        )
        sim.warmup(2)
        sim.measure_until(64)
        path = tmp_path / "stream.npz"
        save_checkpoint(path, sim)
        report = analyze_checkpoint(path)
        assert report["mode"] == "streaming"
        assert report["controller"]["target_error"] == 0.05
        assert report["observables"]["density"]["corrected"] is True

    def test_render(self, checkpoint):
        text = render_analysis(analyze_checkpoint(checkpoint))
        assert "checkpoint" in text
        assert "density" in text
        assert "sign correction: on" in text


class TestAnalyzeArchive:
    def test_report_surfaces_provenance(self, archive):
        report = analyze_archive(archive)
        assert report["kind"] == "archive"
        assert report["sign_corrected"] is True
        assert report["equilibration"]["n_cut"] == 8
        assert report["controller"]["target_met"] is True
        entry = report["observables"]["density"]
        assert entry["corrected"] is True
        assert np.isfinite(entry["relative_error"])

    def test_render_mentions_control(self, archive):
        text = render_analysis(analyze_archive(archive))
        assert "run control" in text
        assert "met" in text


class TestDispatch:
    def test_checkpoint_vs_archive(self, checkpoint, archive):
        assert analyze_path(checkpoint)["kind"] == "checkpoint"
        assert analyze_path(archive)["kind"] == "archive"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            analyze_path(tmp_path / "nope.npz")

    def test_non_campaign_dir(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            analyze_path(tmp_path)

    def test_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, x=np.arange(3))
        with pytest.raises(ValueError, match="neither"):
            analyze_path(path)


class TestAnalyzeCampaign:
    @pytest.fixture
    def campaign_dir(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "ana",
                    "base": {
                        "nx": 2, "ny": 2, "dtau": 0.125, "l": 8,
                        "north": 4, "nwarm": 2, "npass": 8,
                    },
                    "grid": {"u": [4.0]},
                    "replicas": 2,
                    "base_seed": 11,
                }
            )
        )
        cdir = tmp_path / "camp"
        assert (
            main(
                [
                    "campaign", "run", str(spec),
                    "--dir", str(cdir),
                    "--executor", "thread", "--quiet",
                ]
            )
            == 0
        )
        return cdir

    def test_replicas_merged_with_rhat(self, campaign_dir):
        report = analyze_path(campaign_dir)
        assert report["kind"] == "campaign"
        assert report["n_jobs"] == 2
        (group,) = report["merged"]
        density = group["observables"]["density"]
        assert density["n_replicas"] == 2
        assert "rhat" in density
        text = render_analysis(report)
        assert "merged" in text and "2 replicas" in text

    def test_cli_on_campaign_dir(self, campaign_dir, capsys):
        assert main(["analyze", str(campaign_dir)]) == 0
        assert "campaign" in capsys.readouterr().out


class TestAnalyzeCli:
    def test_analyze_checkpoint(self, checkpoint, capsys):
        assert main(["analyze", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "density" in out and "checkpoint" in out

    def test_analyze_json(self, archive, tmp_path):
        out = tmp_path / "report.json"
        assert main(["analyze", str(archive), "--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["kind"] == "archive"

    def test_analyze_bad_path(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.npz")]) != 0


class TestTargetErrorCli:
    @pytest.fixture
    def input_file(self, tmp_path):
        p = tmp_path / "run.in"
        p.write_text(INPUT)
        return p

    def test_adaptive_run_stops_early(self, input_file, tmp_path, capsys):
        out_path = tmp_path / "out.npz"
        ck_path = tmp_path / "ck.npz"
        code = main(
            [
                "run", str(input_file),
                "--target-error", "0.05",
                "--output", str(out_path),
                "--checkpoint", str(ck_path),
                "--quiet",
            ]
        )
        assert code == 0
        obs, meta = __import__(
            "repro.io", fromlist=["load_observables"]
        ).load_observables(out_path)
        assert meta["control"]["target_met"] is True
        # budget was 200; half-filled density converges much sooner
        assert "density.corrected" in obs
        # analyze the archive end to end
        assert main(["analyze", str(out_path)]) == 0
        assert "run control" in capsys.readouterr().out
        # the final checkpoint carries the stopped decision state; its
        # report must say so (state_dict spells the flag "stopped")
        report = analyze_checkpoint(ck_path)
        assert report["controller"]["target_met"] is True
        assert "(met" in render_analysis(report)

    def test_streaming_flag(self, input_file, tmp_path):
        out_path = tmp_path / "out.npz"
        code = main(
            [
                "run", str(input_file),
                "--streaming",
                "--target-error", "0.05",
                "--output", str(out_path),
                "--quiet",
            ]
        )
        assert code == 0

    def test_bad_target_error_rejected(self, input_file, tmp_path):
        assert (
            main(
                [
                    "run", str(input_file),
                    "--target-error", "-1",
                    "--quiet",
                ]
            )
            == 2
        )
