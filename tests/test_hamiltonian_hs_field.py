"""Unit tests for the HS auxiliary field."""

import numpy as np
import pytest

from repro import HSField, hs_coupling


class TestConstruction:
    def test_random_shape_and_values(self):
        f = HSField.random(10, 16, np.random.default_rng(0))
        assert f.n_slices == 10 and f.n_sites == 16
        assert set(np.unique(f.h)) <= {-1.0, 1.0}

    def test_random_is_reproducible(self):
        a = HSField.random(5, 8, np.random.default_rng(42))
        b = HSField.random(5, 8, np.random.default_rng(42))
        assert a == b

    def test_ordered(self):
        f = HSField.ordered(3, 4, value=-1.0)
        assert np.all(f.h == -1.0)
        with pytest.raises(ValueError):
            HSField.ordered(3, 4, value=0.5)

    def test_rejects_invalid_entries(self):
        with pytest.raises(ValueError):
            HSField(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            HSField(np.ones(4))

    def test_copy_is_independent(self):
        f = HSField.ordered(2, 2)
        g = f.copy()
        g.flip(0, 0)
        assert f.h[0, 0] == 1.0 and g.h[0, 0] == -1.0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(HSField.ordered(2, 2))


class TestDqmcHelpers:
    def test_flip_is_involution(self):
        f = HSField.random(4, 4, np.random.default_rng(1))
        before = f.h.copy()
        f.flip(2, 3)
        assert f.h[2, 3] == -before[2, 3]
        f.flip(2, 3)
        assert np.array_equal(f.h, before)

    def test_v_diagonal_values(self):
        nu = hs_coupling(4.0, 0.125)
        f = HSField.ordered(2, 3)
        np.testing.assert_allclose(f.v_diagonal(0, 1, nu), np.exp(nu))
        np.testing.assert_allclose(f.v_diagonal(0, -1, nu), np.exp(-nu))

    def test_v_diagonal_rejects_bad_sigma(self):
        f = HSField.ordered(2, 2)
        with pytest.raises(ValueError):
            f.v_diagonal(0, 0, 0.5)

    def test_alpha_matches_v_ratio(self):
        """alpha must be exactly the multiplicative V change of a flip."""
        rng = np.random.default_rng(2)
        nu = hs_coupling(6.0, 0.1)
        f = HSField.random(3, 5, rng)
        for sigma in (1, -1):
            for (l, i) in [(0, 0), (1, 3), (2, 4)]:
                v_old = f.v_diagonal(l, sigma, nu)[i]
                alpha = f.alpha(l, i, sigma, nu)
                g = f.copy()
                g.flip(l, i)
                v_new = g.v_diagonal(l, sigma, nu)[i]
                assert v_new / v_old == pytest.approx(1.0 + alpha)

    def test_alpha_opposite_spins_product(self):
        """(1+alpha_up)(1+alpha_dn) = 1: the flip preserves V+ V-."""
        f = HSField.random(2, 2, np.random.default_rng(3))
        nu = 0.73
        a_up = f.alpha(0, 1, 1, nu)
        a_dn = f.alpha(0, 1, -1, nu)
        assert (1 + a_up) * (1 + a_dn) == pytest.approx(1.0)

    def test_equality_semantics(self):
        a = HSField.ordered(2, 2)
        b = HSField.ordered(2, 2)
        assert a == b
        b.flip(0, 0)
        assert a != b
        assert a != "not a field"
