"""Smoke tests: every example script must run end to end.

Executed as subprocesses with minimal workloads so the examples stay
green as the library evolves (the single most common way example code
rots).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--size", "2", "--sweeps", "20")
        assert "density" in out and "time profile" in out

    def test_fermi_surface(self):
        out = run_example(
            "fermi_surface.py", "--sizes", "4", "--sweeps", "10"
        )
        assert "Fermi surface" in out

    def test_multilayer_interface(self):
        out = run_example(
            "multilayer_interface.py", "--lx", "2", "--ly", "2",
            "--layers", "2", "--sweeps", "12", "--tperp", "0.0", "1.0",
        )
        assert "interlayer" in out

    def test_gpu_offload(self):
        out = run_example("gpu_offload.py", "--size", "4", "--slices", "20")
        assert "relative difference 0.00e+00" in out
        assert "kernel launches" in out

    def test_input_file_run(self, tmp_path):
        inp = tmp_path / "run.in"
        inp.write_text(
            "nx = 2\nny = 2\nu = 4.0\ndtau = 0.125\nl = 8\nnorth = 4\n"
            "nwarm = 2\nnpass = 6\nseed = 1\n"
        )
        out = run_example("input_file_run.py", str(inp))
        assert "archived observables" in out

    def test_dynamic_response(self):
        out = run_example(
            "dynamic_response.py", "--size", "4", "--samples", "2"
        )
        assert "Fermi surface marker" in out

    def test_strong_coupling(self):
        out = run_example(
            "strong_coupling.py", "--sweeps", "8", "--size", "2",
        )
        assert "global flips" in out and "conditioning" in out

    def test_extrapolation_study(self):
        out = run_example(
            "extrapolation_study.py", "--sizes", "2", "4", "--sweeps", "8",
        )
        assert "bulk limit" in out and "continuum limit" in out
