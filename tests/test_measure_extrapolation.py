"""Unit tests for finite-size and Trotter extrapolation."""

import numpy as np
import pytest

from repro.measure import (
    extrapolate_finite_size,
    extrapolate_trotter,
    weighted_linear_fit,
)


class TestWeightedFit:
    def test_recovers_exact_line(self):
        x = np.array([0.1, 0.2, 0.3, 0.5])
        y = 2.0 + 3.0 * x
        res = weighted_linear_fit(x, y, np.full(4, 0.01))
        assert res.value == pytest.approx(2.0, abs=1e-10)
        assert res.slope == pytest.approx(3.0, abs=1e-10)
        assert res.chi2_per_dof == pytest.approx(0.0, abs=1e-12)

    def test_weights_matter(self):
        # one precise point at the truth, one wild point with huge error
        x = np.array([0.0, 0.0001, 1.0])
        y = np.array([5.0, 5.0, 100.0])
        err = np.array([0.001, 0.001, 1000.0])
        res = weighted_linear_fit(x, y, err)
        assert res.value == pytest.approx(5.0, abs=0.01)

    def test_error_statistically_calibrated(self):
        """Over many noisy realizations, the pull of the intercept must
        be ~N(0,1): check its standard deviation is ~1."""
        rng = np.random.default_rng(0)
        x = np.linspace(0.1, 1.0, 8)
        sigma = 0.05
        pulls = []
        for _ in range(300):
            y = 1.0 + 2.0 * x + rng.normal(scale=sigma, size=8)
            res = weighted_linear_fit(x, y, np.full(8, sigma))
            pulls.append((res.value - 1.0) / res.error)
        assert np.std(pulls) == pytest.approx(1.0, abs=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_linear_fit([1.0], [1.0], [0.1])
        with pytest.raises(ValueError):
            weighted_linear_fit([1, 2], [1, 2], [0.1, -0.1])
        with pytest.raises(ValueError):
            weighted_linear_fit([1, 1], [1, 2], [0.1, 0.1])
        with pytest.raises(ValueError):
            weighted_linear_fit([1, 2], [1, 2, 3], [0.1, 0.1, 0.1])

    def test_two_points_chi2_zero(self):
        res = weighted_linear_fit([1, 2], [3, 5], [0.1, 0.1])
        assert res.chi2_per_dof == 0.0


class TestPhysicsExtrapolations:
    def test_finite_size_model(self):
        """y(L) = y_inf + a/L recovered from synthetic data."""
        sizes = [8, 12, 16, 24, 32]
        y_inf, a = 0.12, 0.8
        y = [y_inf + a / L for L in sizes]
        res = extrapolate_finite_size(sizes, y, [1e-4] * 5)
        assert res.value == pytest.approx(y_inf, abs=1e-6)
        assert res.slope == pytest.approx(a, abs=1e-4)

    def test_trotter_model_against_enumeration(self):
        """Extrapolating the exact Trotterized dimer results in dtau^2
        must land on the continuum ED answer."""
        from repro import HubbardModel, SquareLattice
        from tests.ed_reference import HubbardED
        from tests.enumeration_reference import enumerate_dqmc

        beta, u = 1.0, 4.0
        model = HubbardModel(SquareLattice(2, 1), u=u, beta=beta, n_slices=2)
        exact = HubbardED(model.kinetic_matrix(), u=u).double_occupancy(beta)
        dtaus, values = [], []
        # dtau <= 0.25 so the quadratic term dominates (enumeration cost
        # caps L at 8 for the dimer: 2^(N*L) configurations)
        for nl in (4, 8):
            res = enumerate_dqmc(
                HubbardModel(SquareLattice(2, 1), u=u, beta=beta, n_slices=nl)
            )
            dtaus.append(beta / nl)
            values.append(res.double_occupancy)
        fit = extrapolate_trotter(dtaus, values, [1e-8] * 2)
        # extrapolation must beat the best raw point by a wide margin
        best_raw = abs(values[-1] - exact)
        assert abs(fit.value - exact) < 0.3 * best_raw
