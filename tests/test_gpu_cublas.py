"""Unit tests for the CUBLAS-subset layer."""

import numpy as np
import pytest

from repro.gpu import Cublas, DeviceError, SimulatedDevice


@pytest.fixture
def dev():
    return SimulatedDevice()


@pytest.fixture
def blas(dev):
    return Cublas(dev)


class TestDcopy:
    def test_copies(self, dev, blas, rng):
        a = dev.set_matrix(rng.normal(size=(6, 6)))
        b = dev.alloc((6, 6))
        blas.dcopy(a, b)
        np.testing.assert_array_equal(dev.get_matrix(b), dev.get_matrix(a))

    def test_shape_mismatch(self, dev, blas):
        with pytest.raises(DeviceError):
            blas.dcopy(dev.alloc((2, 2)), dev.alloc((3, 3)))


class TestDscal:
    def test_whole_array(self, dev, blas, rng):
        host = rng.normal(size=(4, 5))
        a = dev.set_matrix(host)
        blas.dscal(2.5, a)
        np.testing.assert_allclose(dev.get_matrix(a), 2.5 * host)

    def test_single_row(self, dev, blas, rng):
        host = rng.normal(size=(4, 5))
        a = dev.set_matrix(host)
        blas.dscal(-3.0, a, row=2)
        expected = host.copy()
        expected[2] *= -3.0
        np.testing.assert_allclose(dev.get_matrix(a), expected)

    def test_row_out_of_range(self, dev, blas):
        with pytest.raises(DeviceError):
            blas.dscal(1.0, dev.alloc((3, 3)), row=3)

    def test_each_call_is_a_launch(self, dev, blas, rng):
        a = dev.set_matrix(rng.normal(size=(8, 8)))
        before = dev.kernel_launches
        for j in range(8):
            blas.dscal(2.0, a, row=j)
        assert dev.kernel_launches - before == 8  # the Algorithm 4 storm


class TestDgemm:
    def test_plain_product(self, dev, blas, rng):
        ha, hb = rng.normal(size=(5, 7)), rng.normal(size=(7, 3))
        a, b = dev.set_matrix(ha), dev.set_matrix(hb)
        c = dev.alloc((5, 3))
        blas.dgemm(a, b, c)
        np.testing.assert_allclose(dev.get_matrix(c), ha @ hb, atol=1e-13)

    def test_transposes(self, dev, blas, rng):
        ha, hb = rng.normal(size=(7, 5)), rng.normal(size=(3, 7))
        a, b = dev.set_matrix(ha), dev.set_matrix(hb)
        c = dev.alloc((5, 3))
        blas.dgemm(a, b, c, transa=True, transb=True)
        np.testing.assert_allclose(dev.get_matrix(c), ha.T @ hb.T, atol=1e-13)

    def test_alpha_beta(self, dev, blas, rng):
        ha, hb, hc = (rng.normal(size=(4, 4)) for _ in range(3))
        a, b, c = dev.set_matrix(ha), dev.set_matrix(hb), dev.set_matrix(hc)
        blas.dgemm(a, b, c, alpha=2.0, beta=0.5)
        np.testing.assert_allclose(
            dev.get_matrix(c), 2.0 * ha @ hb + 0.5 * hc, atol=1e-13
        )

    def test_shape_mismatch(self, dev, blas):
        with pytest.raises(DeviceError):
            blas.dgemm(dev.alloc((2, 3)), dev.alloc((4, 2)), dev.alloc((2, 2)))

    def test_counters_and_clock(self, dev, blas, rng):
        a = dev.set_matrix(rng.normal(size=(64, 64)))
        c = dev.alloc((64, 64))
        t0, g0 = dev.elapsed, dev.gemm_count
        blas.dgemm(a, a, c)
        assert dev.gemm_count == g0 + 1
        assert dev.elapsed > t0

    def test_foreign_device_rejected(self, blas):
        other = SimulatedDevice()
        a = other.alloc((2, 2))
        with pytest.raises(DeviceError):
            blas.dgemm(a, a, a)
