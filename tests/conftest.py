"""Shared fixtures: small models, fields and engines sized for fast tests."""

from __future__ import annotations

import os

# Runtime shape/dtype/finiteness contracts are compiled in at import
# time (see repro.contracts), so the switch must be flipped before any
# repro module is imported. On by default under pytest; export
# REPRO_CONTRACTS=0 to measure the uninstrumented fast path.
os.environ.setdefault("REPRO_CONTRACTS", "1")

import numpy as np
import pytest

from repro import BMatrixFactory, HSField, HubbardModel, SquareLattice
from repro.core import GreensFunctionEngine


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def lattice4x4():
    return SquareLattice(4, 4)


@pytest.fixture
def model4x4(lattice4x4):
    """A moderately interacting model whose chains are well-conditioned
    enough for brute-force cross-checks yet graded enough to be
    non-trivial."""
    return HubbardModel(lattice4x4, u=4.0, beta=2.0, n_slices=20)


@pytest.fixture
def field4x4(model4x4, rng):
    return HSField.random(model4x4.n_slices, model4x4.n_sites, rng)


@pytest.fixture
def factory4x4(model4x4):
    return BMatrixFactory(model4x4)


@pytest.fixture
def engine4x4(factory4x4, field4x4):
    return GreensFunctionEngine(factory4x4, field4x4, cluster_size=10)


