"""Tests for qmclint v2: the whole-program layer (project index, call
graph, dataflow), the QL1xx concurrency/process-safety rules, pragma
meta checks (QL901/QL902), SARIF output, autofixes, and the stale-
baseline workflow.

Fixtures are small multi-file trees written under ``tmp_path`` with a
``src/repro/...`` layout so the module names land in ``repro.*`` — the
scope the QL1xx family polices.
"""

from __future__ import annotations

import ast
import json
import sys
import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from qmclint import __version__ as QMCLINT_VERSION  # noqa: E402
from qmclint.baseline import (  # noqa: E402
    fingerprint,
    load_baseline,
    partition_baseline,
    save_baseline,
)
from qmclint.callgraph import CallGraph  # noqa: E402
from qmclint.cli import main as qmclint_main  # noqa: E402
from qmclint.dataflow import (  # noqa: E402
    ARITHMETIC,
    DERIVED,
    LITERAL,
    NONDERIVED,
    UNKNOWN,
    classify_seed_expr,
    lock_guarded_lines,
    module_lock_names,
    unpicklable_members,
)
from qmclint.engine import FileContext, LintRunner  # noqa: E402
from qmclint.fixes import FIXABLE_CODES, apply_fixes  # noqa: E402
from qmclint.project import Project, module_name_for  # noqa: E402
from qmclint.rules import ALL_RULES  # noqa: E402
from qmclint.sarif import (  # noqa: E402
    SARIF_VERSION,
    to_sarif,
    validate_sarif,
)


def write_tree(tmp_path: Path, files: Dict[str, str]) -> Path:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def lint_tree(tmp_path: Path, files: Dict[str, str], **runner_kwargs):
    """Full whole-program lint over a fixture tree."""
    root = write_tree(tmp_path, files)
    runner = LintRunner(ALL_RULES, root=root, **runner_kwargs)
    return runner.run([root])


def build_project(tmp_path: Path, files: Dict[str, str]) -> Project:
    root = write_tree(tmp_path, files)
    contexts = []
    for rel in sorted(files):
        contexts.append(FileContext.parse(root / rel, root=root))
    return Project.build(contexts)


def codes(violations) -> List[str]:
    return sorted(v.code for v in violations)


# ---------------------------------------------------------------------------
# project index
# ---------------------------------------------------------------------------


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/core/greens.py") == "repro.core.greens"

    def test_tools_prefix_stripped(self):
        assert module_name_for("tools/qmclint/cli.py") == "qmclint.cli"

    def test_nested_prefix_strips_to_last_root(self):
        # tmp trees in tests nest the fixture under an arbitrary prefix
        assert module_name_for("fixture/src/repro/x.py") == "repro.x"

    def test_init_collapses_to_package(self):
        assert module_name_for("src/repro/telemetry/__init__.py") == (
            "repro.telemetry"
        )


class TestProjectResolution:
    FILES = {
        "src/repro/__init__.py": "",
        "src/repro/telemetry/__init__.py": """
            from .core import Registry
        """,
        "src/repro/telemetry/core.py": """
            class Registry:
                def inc(self, name):
                    pass
        """,
        "src/repro/user.py": """
            from repro.telemetry import Registry

            def use():
                return Registry()
        """,
    }

    def test_reexport_chased_to_defining_module(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        resolved = project.resolve("repro.user", "Registry")
        assert resolved == "repro.telemetry.core.Registry"

    def test_unknown_names_resolve_to_none(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        assert project.resolve("repro.user", "np.linalg.inv") is None

    def test_methods_indexed_by_name(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        fids = [m.fid for m in project.methods_by_name["inc"]]
        assert fids == ["repro.telemetry.core.Registry.inc"]


class TestCallGraph:
    FILES = {
        "src/repro/__init__.py": "",
        "src/repro/work.py": """
            from concurrent.futures import ThreadPoolExecutor
            import threading

            def leaf():
                return 1

            def task(i):
                return leaf() + i

            def run_all(items):
                with ThreadPoolExecutor() as pool:
                    list(pool.map(task, items))
                t = threading.Thread(target=leaf)
                t.start()
        """,
    }

    def test_thread_targets_found(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        graph = CallGraph.build(project)
        assert graph.thread_targets == {
            "repro.work.task",
            "repro.work.leaf",
        }

    def test_reachability_is_transitive(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        graph = CallGraph.build(project)
        reach = graph.thread_reachable()
        assert "repro.work.leaf" in reach  # via task -> leaf
        assert "repro.work.run_all" not in reach

    def test_callers_of(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        graph = CallGraph.build(project)
        assert graph.callers_of("repro.work.task") == set()
        assert "repro.work.task" in graph.callers_of("repro.work.leaf")


# ---------------------------------------------------------------------------
# dataflow
# ---------------------------------------------------------------------------


def verdict_of(body: str) -> str:
    """Classify the expression returned by a fixture function whose
    parameters model the three provenance classes: ``cfg`` (carrier of
    ``.seed``), ``seed`` (trusted by name), ``raw`` (unknown)."""
    src = "def f(cfg, seed, raw):\n" + textwrap.indent(
        textwrap.dedent(body), "    "
    )
    fn = ast.parse(src).body[0]
    return classify_seed_expr(fn.body[-1].value, fn)


class TestSeedProvenance:
    def test_literal(self):
        assert verdict_of("return 12345") == LITERAL

    def test_wall_clock_entropy(self):
        assert verdict_of("return time.time()") == NONDERIVED

    def test_int_wrapper_is_transparent(self):
        assert verdict_of("return int(time.time())") == NONDERIVED

    def test_seedy_parameter_trusted(self):
        assert verdict_of("return seed") == DERIVED

    def test_config_attribute_trusted(self):
        assert verdict_of("return cfg.seed") == DERIVED

    def test_spawn_subscript_flows_through(self):
        assert verdict_of("return SeedSequence(raw).spawn(4)[2]") == DERIVED

    def test_seed_arithmetic(self):
        assert verdict_of("return seed + 3") == ARITHMETIC

    def test_unknown_parameter_stays_unknown(self):
        assert verdict_of("return raw") == UNKNOWN

    def test_local_assignment_chased(self):
        assert verdict_of("s = 777\nreturn s") == LITERAL

    def test_self_cycle_terminates_as_unknown(self):
        assert verdict_of("s = s\nreturn s") == UNKNOWN


class TestLockRegions:
    def test_with_lock_lines_guarded(self):
        src = textwrap.dedent(
            """
            def f(self, x):
                with self._lock:
                    self.counts[x] = 1
                self.counts[x] = 2
            """
        )
        fn = ast.parse(src).body[0]
        guarded = lock_guarded_lines(fn)
        inside = fn.body[0].body[0].lineno
        outside = fn.body[1].lineno
        assert inside in guarded
        assert outside not in guarded

    def test_module_lock_names(self):
        tree = ast.parse(
            "import threading\n_LOCK = threading.Lock()\nOTHER = 3\n"
        )
        assigns = {
            t.targets[0].id: t.value
            for t in tree.body
            if isinstance(t, ast.Assign)
        }
        assert module_lock_names(assigns) == {"_LOCK"}


class TestPicklability:
    def test_file_handle_member_reported(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "src/repro/holder.py": """
                    class Holder:
                        def __init__(self, path):
                            self._fh = open(path, "a")
                """,
            },
        )
        members = unpicklable_members(
            project.classes["repro.holder.Holder"], project
        )
        assert members == [("_fh", "an open file handle")]

    def test_getstate_opts_out(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "src/repro/holder.py": """
                    class Holder:
                        def __init__(self, path):
                            self._fh = open(path, "a")

                        def __getstate__(self):
                            state = dict(self.__dict__)
                            state.pop("_fh")
                            return state
                """,
            },
        )
        members = unpicklable_members(
            project.classes["repro.holder.Holder"], project
        )
        assert members == []

    def test_transitive_through_project_class(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "src/repro/holder.py": """
                    import threading

                    class Inner:
                        def __init__(self):
                            self._lock = threading.Lock()

                    class Outer:
                        def __init__(self):
                            self.inner = Inner()
                """,
            },
        )
        members = unpicklable_members(
            project.classes["repro.holder.Outer"], project
        )
        assert len(members) == 1
        assert members[0][0] == "inner"
        assert "threading.Lock" in members[0][1]


# ---------------------------------------------------------------------------
# QL101 — thread-shared mutable state
# ---------------------------------------------------------------------------


class TestQL101SharedState:
    def test_unlocked_global_mutation_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/work.py": """
                    from concurrent.futures import ThreadPoolExecutor

                    _CACHE = {}

                    def task(i):
                        _CACHE[i] = i * i
                        return i

                    def run_all(items):
                        with ThreadPoolExecutor() as pool:
                            return list(pool.map(task, items))
                """,
            },
        )
        assert codes(vs) == ["QL101"]
        assert "_CACHE" in vs[0].message
        assert vs[0].severity == "error"

    def test_lock_guarded_mutation_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/work.py": """
                    import threading
                    from concurrent.futures import ThreadPoolExecutor

                    _CACHE = {}
                    _LOCK = threading.Lock()

                    def task(i):
                        with _LOCK:
                            _CACHE[i] = i * i
                        return i

                    def run_all(items):
                        with ThreadPoolExecutor() as pool:
                            return list(pool.map(task, items))
                """,
            },
        )
        assert vs == []

    def test_mutation_off_thread_path_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/work.py": """
                    _CACHE = {}

                    def warm(i):
                        _CACHE[i] = i * i
                """,
            },
        )
        assert vs == []

    def test_captured_object_method_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/reg.py": """
                    from concurrent.futures import ThreadPoolExecutor

                    class Registry:
                        def __init__(self):
                            self.counters = {}

                        def inc(self, name):
                            self.counters[name] = self.counters.get(name, 0) + 1

                    def run(reg, items):
                        def work(i):
                            reg.inc("n")
                            return i
                        with ThreadPoolExecutor() as pool:
                            return list(pool.map(work, items))
                """,
            },
        )
        assert codes(vs) == ["QL101"]
        assert "Registry.inc" in vs[0].message

    def test_locked_class_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/reg.py": """
                    import threading
                    from concurrent.futures import ThreadPoolExecutor

                    class Registry:
                        def __init__(self):
                            self.counters = {}
                            self._lock = threading.Lock()

                        def inc(self, name):
                            with self._lock:
                                self.counters[name] = (
                                    self.counters.get(name, 0) + 1
                                )

                    def run(reg, items):
                        def work(i):
                            reg.inc("n")
                            return i
                        with ThreadPoolExecutor() as pool:
                            return list(pool.map(work, items))
                """,
            },
        )
        assert vs == []


# ---------------------------------------------------------------------------
# QL102 — pickle boundary
# ---------------------------------------------------------------------------


class TestQL102PickleBoundary:
    def test_file_handle_member_crossing_dump_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/shipper.py": """
                    import pickle

                    class Holder:
                        def __init__(self, path):
                            self._fh = open(path, "a")

                    def ship(sink, fh_path):
                        pickle.dump(Holder(fh_path), sink)
                """,
            },
        )
        assert codes(vs) == ["QL102"]
        assert "Holder" in vs[0].message and "_fh" in vs[0].message

    def test_run_tasks_payload_one_hop_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/shipper.py": """
                    from repro.sched import run_tasks

                    class Holder:
                        def __init__(self, path):
                            self._fh = open(path, "a")

                    def work(payload):
                        return payload

                    def dispatch(paths):
                        payloads = [Holder(p) for p in paths]
                        return run_tasks(work, payloads)
                """,
                "src/repro/sched.py": """
                    def run_tasks(fn, payloads):
                        return [fn(p) for p in payloads]
                """,
            },
        )
        assert "QL102" in codes(vs)

    def test_getstate_optout_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/shipper.py": """
                    import pickle

                    class Holder:
                        def __init__(self, path):
                            self._fh = open(path, "a")

                        def __getstate__(self):
                            state = dict(self.__dict__)
                            state.pop("_fh")
                            return state

                    def ship(sink, fh_path):
                        pickle.dump(Holder(fh_path), sink)
                """,
            },
        )
        assert vs == []


# ---------------------------------------------------------------------------
# QL103 — durable writes
# ---------------------------------------------------------------------------


class TestQL103DurableWrite:
    def test_unfsynced_write_in_scope_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/telemetry/sink.py": """
                    def write_report(path, lines):
                        with open(path, "w") as fh:
                            for line in lines:
                                fh.write(line)
                """,
            },
        )
        assert codes(vs) == ["QL103"]

    def test_path_open_method_form_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/campaign/manifest.py": """
                    def write_manifest(path, payload):
                        with path.open("w") as fh:
                            fh.write(payload)
                """,
            },
        )
        assert codes(vs) == ["QL103"]

    def test_fsync_in_function_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/telemetry/sink.py": """
                    import os

                    def write_report(path, lines):
                        with open(path, "w") as fh:
                            for line in lines:
                                fh.write(line)
                            fh.flush()
                            os.fsync(fh.fileno())
                """,
            },
        )
        assert vs == []

    def test_os_replace_dance_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/campaign/manifest.py": """
                    import os

                    def write_manifest(path, tmp, payload):
                        with open(tmp, "w") as fh:
                            fh.write(payload)
                        os.replace(tmp, path)
                """,
            },
        )
        assert vs == []

    def test_class_held_handle_without_fsync_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/telemetry/sink.py": """
                    class Sink:
                        def _ensure(self, path):
                            self._fh = open(path, "a")

                        def write(self, rec):
                            self._fh.write(rec)
                """,
            },
        )
        assert codes(vs) == ["QL103"]
        assert "Sink" in vs[0].message

    def test_class_with_fsync_on_close_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/telemetry/sink.py": """
                    import os

                    class Sink:
                        def _ensure(self, path):
                            self._fh = open(path, "a")

                        def close(self):
                            self._fh.flush()
                            os.fsync(self._fh.fileno())
                            self._fh.close()
                """,
            },
        )
        assert vs == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/io/results.py": """
                    def export(path, payload):
                        with open(path, "w") as fh:
                            fh.write(payload)
                """,
            },
        )
        assert vs == []


# ---------------------------------------------------------------------------
# QL104 — seed provenance
# ---------------------------------------------------------------------------


class TestQL104SeedProvenance:
    def test_literal_seed_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/seeds.py": """
                    import numpy as np

                    def make_rng():
                        return np.random.default_rng(12345)
                """,
            },
        )
        assert codes(vs) == ["QL104"]
        assert "literal" in vs[0].message

    def test_config_lineage_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/seeds.py": """
                    import numpy as np

                    def make_rng(cfg):
                        return np.random.default_rng(cfg.seed)
                """,
            },
        )
        assert vs == []

    def test_seed_arithmetic_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/seeds.py": """
                    import numpy as np

                    def chain_rng(base_seed, chain):
                        return np.random.default_rng(base_seed + chain)
                """,
            },
        )
        assert codes(vs) == ["QL104"]
        assert "SeedSequence" in vs[0].message

    def test_spawn_lineage_clean(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/seeds.py": """
                    import numpy as np

                    def chain_rng(base_seed, chain, n):
                        streams = np.random.SeedSequence(base_seed).spawn(n)
                        return np.random.default_rng(streams[chain])
                """,
            },
        )
        assert vs == []

    def test_caller_hop_finds_literal_at_call_site(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/seeds.py": """
                    import numpy as np

                    def build(raw):
                        return np.random.default_rng(raw)

                    def outer():
                        return build(42)
                """,
            },
        )
        assert codes(vs) == ["QL104"]
        assert "call into `build`" in vs[0].message

    def test_benchmarks_excluded(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "benchmarks/bench_seed.py": """
                    import numpy as np

                    def bench_rng():
                        return np.random.default_rng(42)
                """,
            },
        )
        assert "QL104" not in codes(vs)


# ---------------------------------------------------------------------------
# QL105 — ledger reachability
# ---------------------------------------------------------------------------


class TestQL105LedgerReachability:
    SWEEP = """
        from repro.linalg import hot

        def do_sweep(a, b):
            return hot.hot_gemm(a, b)
    """
    KERNEL = """
        def hot_gemm(a, b):
            return a @ b
    """

    def test_uncovered_kernel_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/dqmc/__init__.py": "",
                "src/repro/dqmc/sweep.py": self.SWEEP,
                "src/repro/linalg/__init__.py": "",
                "src/repro/linalg/hot.py": self.KERNEL,
            },
            select={"QL105"},  # QL004 (per-file) also sees the kernel
        )
        assert codes(vs) == ["QL105"]
        assert "hot_gemm" in vs[0].message
        assert vs[0].severity == "warning"

    def test_recording_caller_covers_kernel(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/dqmc/__init__.py": "",
                "src/repro/dqmc/sweep.py": """
                    from repro.linalg import hot
                    from repro.linalg import flops

                    def do_sweep(a, b, n):
                        flops.record(2 * n ** 3)
                        return hot.hot_gemm(a, b)
                """,
                "src/repro/linalg/__init__.py": "",
                "src/repro/linalg/flops.py": """
                    def record(count):
                        pass
                """,
                "src/repro/linalg/hot.py": self.KERNEL,
            },
            select={"QL105"},
        )
        assert "QL105" not in codes(vs)

    def test_unreachable_kernel_not_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/linalg/__init__.py": "",
                "src/repro/linalg/hot.py": self.KERNEL,
            },
            select={"QL105"},
        )
        assert vs == []

    # The checkerboard fast path spells its batched products as
    # np.matmul(...) inside repro.hamiltonian — both the call spelling
    # and the directory must be in QL105's net.

    CB_KERNEL = """
        import numpy as np

        def apply_expk_left(bx, a):
            return np.matmul(bx, a)
    """

    def test_uncovered_checkerboard_apply_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/dqmc/__init__.py": "",
                "src/repro/dqmc/sweep.py": """
                    from repro.hamiltonian import checkerboard

                    def do_sweep(bx, a):
                        return checkerboard.apply_expk_left(bx, a)
                """,
                "src/repro/hamiltonian/__init__.py": "",
                "src/repro/hamiltonian/checkerboard.py": self.CB_KERNEL,
            },
            select={"QL105"},
        )
        assert codes(vs) == ["QL105"]
        assert "apply_expk_left" in vs[0].message

    def test_recording_caller_covers_checkerboard_apply(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/dqmc/__init__.py": "",
                "src/repro/dqmc/sweep.py": """
                    from repro.hamiltonian import checkerboard
                    from repro.linalg import flops

                    def do_sweep(bx, a, n):
                        flops.record("structured", 4 * n * n)
                        return checkerboard.apply_expk_left(bx, a)
                """,
                "src/repro/linalg/__init__.py": "",
                "src/repro/linalg/flops.py": """
                    def record(category, count):
                        pass
                """,
                "src/repro/hamiltonian/__init__.py": "",
                "src/repro/hamiltonian/checkerboard.py": self.CB_KERNEL,
            },
            select={"QL105"},
        )
        assert "QL105" not in codes(vs)


# ---------------------------------------------------------------------------
# pragma meta checks (QL901/QL902)
# ---------------------------------------------------------------------------


class TestPragmaMeta:
    def test_pragma_without_reason_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/mod.py": """
                    import numpy as np

                    def f(a):
                        return np.linalg.inv(a)  # qmclint: disable=QL001
                """,
            },
        )
        assert codes(vs) == ["QL901"]

    def test_pragma_with_reason_accepted(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/mod.py": """
                    import numpy as np

                    def f(a):
                        return np.linalg.inv(a)  # qmclint: disable=QL001 -- strawman for the ablation
                """,
            },
        )
        assert vs == []

    def test_unused_pragma_flagged(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/mod.py": """
                    def f(a):
                        return a  # qmclint: disable=QL001 -- stale
                """,
            },
        )
        assert codes(vs) == ["QL902"]
        assert "delete it" in vs[0].message

    def test_unused_not_judged_for_unselected_rules(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "src/repro/mod.py": textwrap.dedent(
                    """
                    def f(a):
                        return a  # qmclint: disable=QL007 -- scoped out
                    """
                ),
            },
        )
        runner = LintRunner(ALL_RULES, select={"QL001"}, root=root)
        assert runner.run([root]) == []


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


class TestSarif:
    def _violations(self, tmp_path):
        return lint_tree(
            tmp_path,
            {
                "src/repro/mod.py": """
                    import numpy as np

                    def f(a):
                        return np.linalg.inv(a)
                """,
            },
        )

    def test_log_validates_and_carries_findings(self, tmp_path):
        vs = self._violations(tmp_path)
        doc = to_sarif(vs, ALL_RULES, QMCLINT_VERSION)
        assert validate_sarif(doc) == []
        assert doc["version"] == SARIF_VERSION
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "qmclint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert set(rule_ids) == {r.code for r in ALL_RULES}
        result = run["results"][0]
        assert result["ruleId"] == "QL001"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/mod.py"
        assert loc["region"]["startLine"] >= 1

    def test_fingerprints_recorded(self, tmp_path):
        vs = self._violations(tmp_path)
        fp = {id(v): f"fp-{i}" for i, v in enumerate(vs)}
        doc = to_sarif(vs, ALL_RULES, QMCLINT_VERSION, fingerprints=fp)
        result = doc["runs"][0]["results"][0]
        assert result["partialFingerprints"] == {
            "qmclintFingerprint/v1": "fp-0"
        }

    def test_empty_run_validates(self):
        doc = to_sarif([], ALL_RULES, QMCLINT_VERSION)
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"] == []

    def test_validator_catches_breakage(self):
        doc = to_sarif([], ALL_RULES, QMCLINT_VERSION)
        doc["version"] = "1.0.0"
        del doc["runs"][0]["tool"]["driver"]["name"]
        problems = validate_sarif(doc)
        assert len(problems) >= 2

    def test_cli_emits_valid_sarif_file(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "proj/src/repro/mod.py": textwrap.dedent(
                    """
                    import numpy as np

                    def f(a):
                        return np.linalg.inv(a)
                    """
                ),
            },
        )
        out = tmp_path / "report.sarif"
        status = qmclint_main(
            [
                str(tmp_path / "proj"),
                "--format",
                "sarif",
                "--output",
                str(out),
                "--no-baseline",
            ]
        )
        assert status == 1  # findings present
        doc = json.loads(out.read_text())
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"][0]["ruleId"] == "QL001"
        # every emitted result carries a trackable fingerprint
        assert all(
            "qmclintFingerprint/v1" in r.get("partialFingerprints", {})
            for r in doc["runs"][0]["results"]
        )


# ---------------------------------------------------------------------------
# autofixes
# ---------------------------------------------------------------------------


class TestFixes:
    def test_fixable_codes(self):
        assert set(FIXABLE_CODES) == {"QL003", "QL902"}

    def test_cli_fix_rewrites_astype(self, tmp_path):
        path = tmp_path / "src" / "repro" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import numpy as np\n"
            "\n"
            "def f(a, b):\n"
            "    return a.astype(int), b.astype(float)\n"
        )
        status = qmclint_main([str(tmp_path), "--fix", "--no-baseline"])
        assert status == 0
        fixed = path.read_text()
        assert "a.astype(np.int64)" in fixed
        assert "b.astype(np.float64)" in fixed

    def test_cli_fix_removes_unused_pragma(self, tmp_path):
        path = tmp_path / "src" / "repro" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def f(a):\n"
            "    return a  # qmclint: disable=QL001 -- stale\n"
        )
        status = qmclint_main([str(tmp_path), "--fix", "--no-baseline"])
        assert status == 0
        assert "qmclint" not in path.read_text()

    def test_astype_without_numpy_alias_untouched(self, tmp_path):
        path = tmp_path / "src" / "repro" / "mod.py"
        path.parent.mkdir(parents=True)
        source = "def f(a):\n    return a.astype(int)\n"
        path.write_text(source)
        runner = LintRunner(ALL_RULES, root=tmp_path)
        vs = runner.run([tmp_path])
        _, count = apply_fixes(vs, runner.contexts)
        assert count == 0
        assert path.read_text() == source


# ---------------------------------------------------------------------------
# baseline: round-trip, partition, stale reporting
# ---------------------------------------------------------------------------


class TestBaselineWorkflow:
    def test_partition_separates_fresh_from_stale(self, tmp_path):
        vs = lint_tree(
            tmp_path,
            {
                "src/repro/mod.py": """
                    import numpy as np

                    def f(a):
                        return np.linalg.inv(a)
                """,
            },
        )
        assert len(vs) == 1
        fp = fingerprint(vs[0], "return np.linalg.inv(a)")
        baseline = {fp: 1, "dead::QL001::cafecafecafe": 1}
        fresh, stale = partition_baseline([(vs[0], fp)], baseline)
        assert fresh == []
        assert stale == ["dead::QL001::cafecafecafe"]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline"
        fps = ["b::QL002::2222", "a::QL001::1111"]
        save_baseline(path, fps)
        assert set(load_baseline(path)) == set(fps)

    def test_cli_reports_stale_entries(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {"proj/src/repro/mod.py": "def f(a):\n    return a\n"},
        )
        baseline = tmp_path / "frozen"
        save_baseline(baseline, ["src/repro/mod.py::QL001::deadbeef0000"])
        status = qmclint_main(
            [str(tmp_path / "proj"), "--baseline", str(baseline)]
        )
        captured = capsys.readouterr()
        assert status == 0  # stale entries warn, they do not fail the run
        assert "stale baseline entry" in captured.err

    def test_baselined_finding_does_not_fail(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "proj/src/repro/mod.py": textwrap.dedent(
                    """
                    import numpy as np

                    def f(a):
                        return np.linalg.inv(a)
                    """
                ),
            },
        )
        baseline = tmp_path / "frozen"
        status = qmclint_main(
            [
                str(tmp_path / "proj"),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        assert status == 0
        status = qmclint_main(
            [str(tmp_path / "proj"), "--baseline", str(baseline)]
        )
        capsys.readouterr()
        assert status == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliSurface:
    def test_version_flag(self, capsys):
        assert qmclint_main(["--version"]) == 0
        out = capsys.readouterr().out
        assert QMCLINT_VERSION in out
        assert str(len(ALL_RULES)) in out

    def test_list_rules_shows_severity_and_kind(self, capsys):
        assert qmclint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("QL001", "QL101", "QL105", "QL901"):
            assert code in out
        assert "warning" in out and "error" in out

    def test_repo_tree_is_clean_whole_program(self, capsys):
        """The shipped tree passes the full v2 pass with no baseline."""
        status = qmclint_main(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tools"),
                str(REPO_ROOT / "benchmarks"),
                "--no-baseline",
            ]
        )
        capsys.readouterr()
        assert status == 0
