"""Exact diagonalization reference for tiny Hubbard clusters.

Full Fock-space ED with Jordan-Wigner fermion signs. Exponential in the
number of spin-orbitals — intended for <= 4 sites (256-dim Fock space),
where it provides continuum-imaginary-time expectation values that DQMC
must approach as dtau -> 0.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["HubbardED"]


class HubbardED:
    """ED of ``H = sum_ij K_ij c^dag_i c_j (per spin)
    + U sum_i (n_i+ - 1/2)(n_i- - 1/2)`` on ``n`` sites.

    Spin-orbital ordering: orbital ``i`` is site ``i`` spin-up for
    ``i < n`` and site ``i - n`` spin-down otherwise. K carries hoppings
    and the chemical potential on its diagonal, exactly like
    :meth:`repro.HubbardModel.kinetic_matrix`.
    """

    def __init__(self, k_matrix: np.ndarray, u: float):
        k = np.asarray(k_matrix, dtype=np.float64)
        n = k.shape[0]
        if k.shape != (n, n) or not np.allclose(k, k.T):
            raise ValueError("K must be square symmetric")
        if n > 4:
            raise ValueError("ED reference limited to 4 sites")
        self.n_sites = n
        self.n_orbitals = 2 * n
        self.dim = 1 << self.n_orbitals
        self.u = u
        self.h = self._build(k)
        self.eigvals, self.eigvecs = np.linalg.eigh(self.h)

    # -- second quantization ----------------------------------------------

    def _jw_sign(self, state: int, orb: int) -> float:
        """(-1)^(number of occupied orbitals below orb)."""
        mask = (1 << orb) - 1
        return -1.0 if bin(state & mask).count("1") % 2 else 1.0

    def _hop(self, state: int, dst: int, src: int) -> Tuple[int, float]:
        """Apply c^dag_dst c_src; returns (new_state, amplitude)."""
        if not state & (1 << src):
            return 0, 0.0
        sign = self._jw_sign(state, src)
        mid = state & ~(1 << src)
        if mid & (1 << dst):
            return 0, 0.0
        sign *= self._jw_sign(mid, dst)
        return mid | (1 << dst), sign

    def _build(self, k: np.ndarray) -> np.ndarray:
        n = self.n_sites
        h = np.zeros((self.dim, self.dim))
        for state in range(self.dim):
            # interaction + diagonal kinetic terms
            diag = 0.0
            for i in range(n):
                n_up = (state >> i) & 1
                n_dn = (state >> (i + n)) & 1
                diag += self.u * (n_up - 0.5) * (n_dn - 0.5)
                diag += k[i, i] * (n_up + n_dn)
            h[state, state] += diag
            # hopping, both spin sectors
            for i in range(n):
                for j in range(n):
                    if i == j or k[i, j] == 0.0:
                        continue
                    for spin_off in (0, n):
                        new, amp = self._hop(
                            state, i + spin_off, j + spin_off
                        )
                        if amp:
                            h[new, state] += k[i, j] * amp
        return h

    # -- thermal expectation values ---------------------------------------------

    def _thermal(self, diag_op: np.ndarray, beta: float) -> float:
        """<O> for an operator diagonal in the occupation basis."""
        w = self.eigvals - self.eigvals.min()
        bw = np.exp(-beta * w)
        z = bw.sum()
        op_eig = np.einsum(
            "ai,a,ai->i", self.eigvecs, diag_op, self.eigvecs
        )
        return float((op_eig * bw).sum() / z)

    def _occupation_vector(self, orb: int) -> np.ndarray:
        states = np.arange(self.dim)
        return ((states >> orb) & 1).astype(np.float64)

    def density(self, beta: float) -> float:
        """Mean electron density (site- and spin-summed, per site)."""
        total = np.zeros(self.dim)
        for orb in range(self.n_orbitals):
            total += self._occupation_vector(orb)
        return self._thermal(total, beta) / self.n_sites

    def double_occupancy(self, beta: float) -> float:
        """Site-averaged <n_up n_dn>."""
        total = np.zeros(self.dim)
        for i in range(self.n_sites):
            total += self._occupation_vector(i) * self._occupation_vector(
                i + self.n_sites
            )
        return self._thermal(total, beta) / self.n_sites

    def spin_zz(self, beta: float, i: int, j: int) -> float:
        """<(n_i+ - n_i-)(n_j+ - n_j-)>."""
        mi = self._occupation_vector(i) - self._occupation_vector(i + self.n_sites)
        mj = self._occupation_vector(j) - self._occupation_vector(j + self.n_sites)
        return self._thermal(mi * mj, beta)
